"""Section 5.2 / 4.3: transfer learning cuts post-update recovery time.

Paper: after a software update, rebuilding a training set takes 3+
months; transfer learning (copy the teacher, fine-tune the top layers)
bootstraps a working model from ONE WEEK of post-update data, and more
than a week brings no significant further improvement.
"""

import numpy as np

from benchmarks.conftest import UPDATE_MONTH, lstm_factory, write_result
from repro.core.grouping import group_vpes
from repro.core.thresholds import sweep_thresholds
from repro.evaluation.metrics import best_operating_point
from repro.evaluation.reporting import format_table
from repro.logs.templates import TemplateStore
from repro.timeutil import DAY, MONTH


def best_f(detector, dataset, vpes, start, end):
    streams = {
        vpe: detector.score(dataset.messages_between(vpe, start, end))
        for vpe in vpes
    }
    tickets = [
        t
        for t in dataset.tickets_for(start=start, end=end)
        if t.vpe in set(vpes)
    ]
    curve = sweep_thresholds(streams, tickets, n_thresholds=15)
    return best_operating_point(curve).f_measure


def test_sec52_transfer_recovery(benchmark, bench_dataset):
    dataset = bench_dataset
    update = dataset.updates[0]
    affected = sorted(update.affected_vpes)
    store = TemplateStore().fit(
        dataset.aggregate_messages(
            start=dataset.start,
            end=dataset.start + MONTH,
            normal_only=True,
        )[:20000]
    )

    # Teacher: trained on the months before the update, on the
    # affected vPEs' aggregated normal logs.
    teacher = lstm_factory(store, 0)
    teacher.fit_streams([
        dataset.normal_messages(vpe, dataset.start, update.time)
        for vpe in affected
    ])

    post_start = update.time
    eval_start = dataset.start + (UPDATE_MONTH + 1) * MONTH
    eval_end = dataset.end

    def fresh_window(days):
        return [
            dataset.normal_messages(
                vpe, post_start, post_start + days * DAY
            )
            for vpe in affected
        ]

    def experiment():
        results = {}
        results["no adaptation"] = best_f(
            teacher, dataset, affected, eval_start, eval_end
        )
        for days in (2, 7, 14):
            student = teacher.adapt_streams(fresh_window(days))
            results[f"transfer, {days} days"] = best_f(
                student, dataset, affected, eval_start, eval_end
            )
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = [[name, f"{f:.2f}"] for name, f in results.items()]
    table = format_table(
        ["adaptation regime", "post-update F-measure"],
        rows,
        title=(
            "Section 5.2 — transfer-learning recovery from a software "
            "update\n(paper: 1 week of data suffices; more brings "
            "little improvement)"
        ),
    )
    write_result("sec52_transfer_recovery", table)

    # Shape: one week of fine-tuning clearly beats no adaptation ...
    assert results["transfer, 7 days"] > results["no adaptation"]
    # ... and doubling the data adds little.
    assert (
        results["transfer, 14 days"]
        - results["transfer, 7 days"]
    ) < 0.15
