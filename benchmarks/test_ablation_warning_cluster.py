"""Ablation: warning-cluster size (section 5.1 design choice).

The paper reports a warning signature upon a small cluster of two or
more anomalies: true anomalies arrive in tight groups (< 1 minute
apart on average), so collapsing them into signatures slashes the raw
alarm volume an operator sees without losing ticket coverage, and
filters isolated noise detections.

This ablation fixes one detection threshold and varies only the
cluster rule, measuring alarm volume, false alarms per day, and
ticket recall.
"""

import numpy as np

from benchmarks.conftest import PRE_UPDATE_MONTHS, write_result
from repro.core.mapping import map_anomalies, warning_clusters
from repro.core.thresholds import sweep_thresholds
from repro.evaluation.metrics import best_operating_point
from repro.evaluation.reporting import format_table
from repro.timeutil import DAY, MONTH


def test_ablation_warning_cluster(benchmark, pipeline_adapt):
    result = pipeline_adapt
    streams = result.pooled_streams(PRE_UPDATE_MONTHS)
    tickets = result.pooled_tickets(PRE_UPDATE_MONTHS)
    span = len(PRE_UPDATE_MONTHS) * MONTH
    # One fixed threshold for every variant: the paper's operating
    # point under the default (pair) rule.
    threshold = best_operating_point(
        sweep_thresholds(streams, tickets, n_thresholds=20)
    ).threshold

    def experiment():
        out = {}
        for min_size in (1, 2, 3):
            detections = {}
            for vpe, stream in streams.items():
                raw = stream.anomalies(threshold)
                detections[vpe] = (
                    warning_clusters(raw, min_size=min_size)
                    if min_size > 1
                    else raw
                )
            mapping = map_anomalies(detections, tickets)
            counts = mapping.counts
            out[min_size] = {
                "alarms": len(mapping.records),
                "fa_per_day": mapping.false_alarms_per_day(span),
                "recall": counts.recall,
            }
        return out

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = [
        [
            size,
            stats["alarms"],
            f"{stats['fa_per_day']:.2f}",
            f"{stats['recall']:.2f}",
        ]
        for size, stats in results.items()
    ]
    table = format_table(
        ["cluster size", "alarms raised", "false alarms/day",
         "recall"],
        rows,
        title=(
            "Ablation — anomalies required per warning signature "
            "(fixed threshold)\n(paper setting: 2; clustering cuts "
            "alarm volume, keeps ticket coverage)"
        ),
    )
    write_result("ablation_warning_cluster", table)

    # Clustering must reduce the operator-facing alarm volume and the
    # false-alarm rate ...
    assert results[2]["alarms"] < results[1]["alarms"]
    assert results[2]["fa_per_day"] <= results[1]["fa_per_day"]
    # ... while keeping almost all ticket coverage.
    assert results[2]["recall"] >= results[1]["recall"] - 0.1
    # Demanding 3+ anomalies cannot increase recall further.
    assert results[3]["recall"] <= results[2]["recall"] + 1e-9
