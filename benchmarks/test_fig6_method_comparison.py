"""Figure 6: anomaly-detection performance of different approaches.

Paper: the two deep approaches (LSTM, autoencoder) largely outperform
the shallow one-class SVM; the LSTM is slightly better than the
autoencoder (precision 0.82 vs 0.77) by capturing sequential patterns.
All three get the same customization and adaptation mechanisms.
"""

from benchmarks.conftest import PRE_UPDATE_MONTHS, write_result
from repro.evaluation.metrics import auc_pr, best_operating_point
from repro.evaluation.reporting import format_table


def test_fig6_method_comparison(
    benchmark, pipeline_adapt, pipeline_autoencoder, pipeline_ocsvm
):
    pipelines = {
        "LSTM": pipeline_adapt,
        "Autoencoder": pipeline_autoencoder,
        "OC-SVM": pipeline_ocsvm,
    }

    def experiment():
        return {
            name: result.prc(
                month_indices=PRE_UPDATE_MONTHS, n_thresholds=20
            )
            for name, result in pipelines.items()
        }

    curves = benchmark.pedantic(experiment, rounds=1, iterations=1)

    stats = {}
    rows = []
    for name, curve in curves.items():
        op = best_operating_point(curve)
        stats[name] = (op, auc_pr(curve))
        rows.append(
            [
                name,
                f"{op.precision:.2f}",
                f"{op.recall:.2f}",
                f"{op.f_measure:.2f}",
                f"{auc_pr(curve):.3f}",
            ]
        )
    table = format_table(
        ["method", "precision", "recall", "F", "AUC-PR"],
        rows,
        title=(
            "Figure 6 — method comparison at the best operating "
            "point\n(paper: LSTM 0.82 > Autoencoder 0.77 >> OC-SVM; "
            "deep beats shallow)"
        ),
    )
    write_result("fig6_method_comparison", table)

    lstm_f = stats["LSTM"][0].f_measure
    ae_f = stats["Autoencoder"][0].f_measure
    svm_f = stats["OC-SVM"][0].f_measure
    # Shape: deep approaches beat the shallow one decisively; the LSTM
    # is at least on par with the autoencoder.
    assert lstm_f > svm_f + 0.1
    assert ae_f > svm_f
    assert lstm_f >= ae_f - 0.05
    assert stats["LSTM"][1] >= stats["OC-SVM"][1] + 0.1
