"""Figure 2: non-maintenance tickets across time and vPEs.

Paper: the ticket pattern is non-periodic and vPE-dependent — a few
vPEs have more tickets than others; occasionally multiple vPEs ticket
in the same interval (core-router issues), but such events are very
rare.
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.evaluation.reporting import format_table
from repro.tickets.analysis import (
    fleet_wide_events,
    non_duplicated,
    ticket_scatter,
    tickets_per_vpe,
)
from repro.tickets.ticket import RootCause


def test_fig2_ticket_scatter(benchmark, ticket_scale_dataset):
    dataset = ticket_scale_dataset

    def experiment():
        cells = ticket_scatter(dataset.tickets)
        events = fleet_wide_events(dataset.tickets, min_vpes=4)
        return cells, events

    cells, events = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )

    relevant = [
        t
        for t in non_duplicated(dataset.tickets)
        if t.root_cause is not RootCause.MAINTENANCE
    ]
    by_vpe = tickets_per_vpe(relevant)
    volumes = sorted(
        (len(group) for group in by_vpe.values()), reverse=True
    )
    rows = [
        ["occupied (time, vPE) cells", len(cells)],
        ["vPEs with tickets", len(by_vpe)],
        ["busiest vPE tickets", volumes[0]],
        ["median vPE tickets", volumes[len(volumes) // 2]],
        ["fleet-wide events (>=4 vPEs in 1 h)", len(events)],
        [
            "largest fleet-wide event span (vPEs)",
            max((n for _, n in events), default=0),
        ],
    ]
    table = format_table(
        ["statistic", "value"],
        rows,
        title=(
            "Figure 2 — ticket scatter across time x vPE\n"
            "(paper: skewed per-vPE volume; fleet-wide events very "
            "rare)"
        ),
    )
    write_result("fig2_ticket_scatter", table)

    # Shape: skew (lemon vPEs), and fleet-wide events exist but rare.
    assert volumes[0] >= 2 * volumes[len(volumes) // 2]
    assert 1 <= len(events) <= 10
    # fleet-wide bursts cover a large slice of the fleet (suppression
    # and jittered onsets keep some hit vPEs out of any single 1-hour
    # bin, so a third of the fleet in one bin is already fleet-wide)
    assert max(n for _, n in events) >= len(dataset.profiles) // 3
