"""Ablation: likelihood-threshold vs top-k detection rule.

The paper thresholds the LSTM log-likelihood; DeepLog (Du et al., CCS
2017) instead flags a log whose template is not among the model's
top-k next-template predictions.  Both rules run on the *same* trained
model here, so the comparison isolates the decision rule.
"""

import numpy as np

from benchmarks.conftest import (
    PRE_UPDATE_MONTHS,
    lstm_factory,
    write_result,
)
from repro.core.thresholds import sweep_thresholds
from repro.evaluation.metrics import auc_pr, best_operating_point
from repro.evaluation.reporting import format_table
from repro.logs.templates import TemplateStore
from repro.timeutil import MONTH


def test_ablation_topk_rule(benchmark, bench_dataset):
    dataset = bench_dataset
    vpes = dataset.vpe_names[:5]
    store = TemplateStore().fit(
        dataset.aggregate_messages(
            start=dataset.start,
            end=dataset.start + MONTH,
            normal_only=True,
        )[:20000]
    )
    detector = lstm_factory(store, 0)
    detector.fit_streams([
        dataset.normal_messages(
            vpe, dataset.start, dataset.start + MONTH
        )
        for vpe in vpes
    ])
    test_start = dataset.start + MONTH
    test_end = dataset.start + 3 * MONTH
    tickets = [
        t
        for t in dataset.tickets_for(start=test_start, end=test_end)
        if t.vpe in set(vpes)
    ]

    def experiment():
        likelihood_streams = {}
        rank_streams = {}
        for vpe in vpes:
            messages = dataset.messages_between(
                vpe, test_start, test_end
            )
            likelihood_streams[vpe] = detector.score(messages)
            rank_streams[vpe] = detector.score_topk(messages)
        likelihood_curve = sweep_thresholds(
            likelihood_streams, tickets, n_thresholds=20
        )
        # top-k rule: sweep k in 1..20 (threshold k - 0.5 on ranks)
        rank_curve = sweep_thresholds(
            rank_streams,
            tickets,
            thresholds=np.arange(1, 21) - 0.5,
        )
        return likelihood_curve, rank_curve

    likelihood_curve, rank_curve = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )

    like_op = best_operating_point(likelihood_curve)
    rank_op = best_operating_point(rank_curve)
    table = format_table(
        ["decision rule", "precision", "recall", "F", "AUC-PR"],
        [
            [
                "likelihood threshold (paper)",
                f"{like_op.precision:.2f}",
                f"{like_op.recall:.2f}",
                f"{like_op.f_measure:.2f}",
                f"{auc_pr(likelihood_curve):.3f}",
            ],
            [
                "top-k rank (DeepLog)",
                f"{rank_op.precision:.2f}",
                f"{rank_op.recall:.2f}",
                f"{rank_op.f_measure:.2f}",
                f"{auc_pr(rank_curve):.3f}",
            ],
        ],
        title=(
            "Ablation — detection rule on the same trained LSTM\n"
            "(both rules detect well; likelihood keeps score "
            "granularity)"
        ),
    )
    write_result("ablation_topk_rule", table)

    # Both rules must be functional detectors on this model.
    assert like_op.f_measure > 0.4
    assert rank_op.f_measure > 0.4
    # The rules should be broadly comparable (sanity bound).
    assert abs(like_op.f_measure - rank_op.f_measure) < 0.35
