"""Ablation: grouping granularity K (section 4.3 design choice).

K = 1 is the universal model; K = N is one model per vPE (maximum
customization, minimum training data per model); the paper's K-means
with modularity-selected K sits between.  At a fixed per-model data
budget, per-vPE models starve while the grouped models pool a month of
group data.
"""

from benchmarks.conftest import (
    PRE_UPDATE_MONTHS,
    bench_dataset,
    lstm_factory,
    write_result,
)
from repro.core.pipeline import PipelineConfig, RollingPipeline
from repro.evaluation.metrics import best_operating_point
from repro.evaluation.reporting import format_table


def test_ablation_grouping_k(
    benchmark, bench_dataset, pipeline_universal, pipeline_noadapt
):
    def experiment():
        config = PipelineConfig(
            grouping="per-vpe", adaptation=False, seed=0
        )
        return RollingPipeline(
            bench_dataset, config, detector_factory=lstm_factory
        ).run()

    per_vpe = benchmark.pedantic(experiment, rounds=1, iterations=1)

    variants = {
        "K=1 (universal)": pipeline_universal,
        "K=3 (k-means groups)": pipeline_noadapt,
        f"K=N (per-vPE)": per_vpe,
    }
    points = {
        name: best_operating_point(
            result.prc(
                month_indices=PRE_UPDATE_MONTHS, n_thresholds=20
            )
        )
        for name, result in variants.items()
    }
    rows = [
        [
            name,
            f"{op.precision:.2f}",
            f"{op.recall:.2f}",
            f"{op.f_measure:.2f}",
        ]
        for name, op in points.items()
    ]
    table = format_table(
        ["grouping", "precision", "recall", "F"],
        rows,
        title=(
            "Ablation — grouping granularity at a fixed data budget\n"
            "(paper: grouped customization beats both extremes)"
        ),
    )
    write_result("ablation_grouping_k", table)

    grouped_f = points["K=3 (k-means groups)"].f_measure
    # The grouped configuration should be the best of the three (small
    # tolerance: the universal model is a strong baseline pre-update).
    assert grouped_f >= points["K=1 (universal)"].f_measure - 0.05
    assert grouped_f >= points["K=N (per-vPE)"].f_measure - 0.05
