"""Section 5.2 "Reducing Training Overhead": vPE clustering.

Paper: clustering cuts the initial training-data requirement from 3
months to 1 month — aggregating the group's logs substitutes for a
longer per-vPE history, so models ship without an extended collection
phase.

This bench reproduces the claim in the data-scarce regime, scaled to
this trace's volumes: a *two-week* per-vPE window is insufficient,
three times as much (six weeks) fixes it, and pooling the group's two
weeks gets there without waiting.  The metric is the model's held-out
quality — mean negative log-likelihood on the target vPE's following
month of normal logs — which measures how well the model knows the
device's normal language (lower = fewer false alarms at any operating
point).
"""

import time

import numpy as np

from benchmarks.conftest import write_result
from repro.core.detector import LSTMAnomalyDetector
from repro.core.grouping import group_vpes
from repro.evaluation.reporting import format_table
from repro.logs.templates import TemplateStore
from repro.timeutil import MONTH, WEEK


def test_sec52_training_overhead(benchmark, bench_dataset):
    dataset = bench_dataset
    store = TemplateStore().fit(
        dataset.aggregate_messages(
            start=dataset.start,
            end=dataset.start + MONTH,
            normal_only=True,
        )[:20000]
    )
    month0 = {
        vpe: dataset.normal_messages(
            vpe, dataset.start, dataset.start + MONTH
        )
        for vpe in dataset.vpe_names
    }
    grouping = group_vpes(month0, store, k=4, seed=0)
    group = max(
        grouping.groups, key=lambda g: len(grouping.groups[g])
    )
    members = grouping.members(group)
    target = members[0]
    holdout = dataset.normal_messages(
        target, dataset.start + 2 * MONTH, dataset.start + 3 * MONTH
    )

    def window(vpe, weeks):
        return dataset.normal_messages(
            vpe, dataset.start, dataset.start + weeks * WEEK
        )

    def train_and_eval(streams, seed=0):
        detector = LSTMAnomalyDetector(
            store,
            vocabulary_capacity=256,
            window=8,
            hidden=(24, 24),
            id_dim=16,
            epochs=2,
            oversample_rounds=0,
            max_train_samples=20000,
            seed=seed,
        )
        started = time.perf_counter()
        detector.fit_streams(streams)
        train_time = time.perf_counter() - started
        nll = float(np.mean(detector.score(holdout).scores))
        return nll, train_time

    def experiment():
        return {
            "per-vPE, 2 weeks": train_and_eval(
                [window(target, 2)]
            ),
            "per-vPE, 6 weeks": train_and_eval(
                [window(target, 6)]
            ),
            "group (clustered), 2 weeks": train_and_eval(
                [window(vpe, 2) for vpe in members]
            ),
        }

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = [
        [name, f"{nll:.3f}", f"{seconds:.1f}s"]
        for name, (nll, seconds) in results.items()
    ]
    table = format_table(
        ["training regime", "held-out NLL", "train time"],
        rows,
        title=(
            "Section 5.2 — clustering reduces initial training data\n"
            "(paper: pooled group data substitutes for a 3x longer "
            "per-vPE history;\nlower held-out NLL = better model of "
            "the device's normal logs)"
        ),
    )
    write_result("sec52_training_overhead", table)

    scarce = results["per-vPE, 2 weeks"][0]
    long_history = results["per-vPE, 6 weeks"][0]
    grouped = results["group (clustered), 2 weeks"][0]
    # Shape: more per-vPE history helps; the group's pooled short
    # window substitutes for the long history.
    assert long_history < scarce
    assert grouped < scarce
    assert grouped <= long_history + 0.15