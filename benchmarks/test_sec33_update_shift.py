"""Section 3.3: impact of system updates on the syslog distribution.

Paper: month-over-month cosine similarity of the syslog distribution
stays above 0.8 in normal operation, but drops below 0.4 when a
software update rolls out — models must be rebuilt quickly.
"""

import numpy as np

from benchmarks.conftest import UPDATE_MONTH, write_result
from repro.evaluation.reporting import format_table
from repro.features.counts import template_distribution
from repro.logs.templates import TemplateStore
from repro.ml.similarity import cosine_similarity
from repro.timeutil import MONTH


def test_sec33_update_shift(benchmark, bench_dataset):
    dataset = bench_dataset
    update = dataset.updates[0]
    affected = sorted(update.affected_vpes)[0]
    unaffected = next(
        v for v in dataset.vpe_names if v not in update.affected_vpes
    )
    store = TemplateStore().fit(
        dataset.aggregate_messages(
            start=dataset.start,
            end=dataset.start + MONTH,
            normal_only=True,
        )[:20000]
    )
    n_months = int(round((dataset.end - dataset.start) / MONTH))

    def month_over_month(vpe):
        sims = []
        for month in range(n_months - 1):
            a = store.transform(
                dataset.normal_messages(
                    vpe,
                    dataset.start + month * MONTH,
                    dataset.start + (month + 1) * MONTH,
                )
            )
            b = store.transform(
                dataset.normal_messages(
                    vpe,
                    dataset.start + (month + 1) * MONTH,
                    dataset.start + (month + 2) * MONTH,
                )
            )
            sims.append(
                cosine_similarity(
                    template_distribution(a, store.vocabulary_size),
                    template_distribution(b, store.vocabulary_size),
                )
            )
        return sims

    def experiment():
        return {
            "affected": month_over_month(affected),
            "unaffected": month_over_month(unaffected),
        }

    sims = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    for month in range(n_months - 1):
        rows.append(
            [
                f"m{month}->m{month + 1}",
                f"{sims['affected'][month]:.3f}",
                f"{sims['unaffected'][month]:.3f}",
            ]
        )
    table = format_table(
        ["months", f"{affected} (updated)", f"{unaffected}"],
        rows,
        title=(
            "Section 3.3 — month-over-month cosine similarity\n"
            "(paper: > 0.8 normally; < 0.4 at a software update)"
        ),
    )
    write_result("sec33_update_shift", table)

    transition = UPDATE_MONTH - 1  # similarity(m3, m4) spans rollout
    affected_sims = sims["affected"]
    # Shape: the update month collapses similarity for updated vPEs...
    assert affected_sims[transition] < 0.5
    # ... while every other month stays high ...
    for month, value in enumerate(affected_sims):
        if month != transition:
            assert value > 0.8, f"month {month}"
    # ... and unaffected vPEs never collapse.
    assert min(sims["unaffected"]) > 0.8
