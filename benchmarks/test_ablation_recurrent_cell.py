"""Ablation: LSTM vs GRU recurrent cell (section 4.2 design choice).

The paper picks the LSTM for its long-term memory; a GRU carries 25%
fewer recurrent parameters.  Both cells train on the same month of
group data and score the same test months, isolating the cell choice.
"""

import time

from benchmarks.conftest import write_result
from repro.core.detector import LSTMAnomalyDetector
from repro.core.thresholds import sweep_thresholds
from repro.evaluation.metrics import auc_pr, best_operating_point
from repro.evaluation.reporting import format_table
from repro.logs.templates import TemplateStore
from repro.timeutil import MONTH


def test_ablation_recurrent_cell(benchmark, bench_dataset):
    dataset = bench_dataset
    vpes = dataset.vpe_names[:5]
    store = TemplateStore().fit(
        dataset.aggregate_messages(
            start=dataset.start,
            end=dataset.start + MONTH,
            normal_only=True,
        )[:20000]
    )
    training = [
        dataset.normal_messages(
            vpe, dataset.start, dataset.start + MONTH
        )
        for vpe in vpes
    ]
    test_start = dataset.start + MONTH
    test_end = dataset.start + 3 * MONTH
    tickets = [
        t
        for t in dataset.tickets_for(start=test_start, end=test_end)
        if t.vpe in set(vpes)
    ]

    def evaluate(cell):
        detector = LSTMAnomalyDetector(
            store,
            vocabulary_capacity=256,
            window=8,
            hidden=(24, 24),
            id_dim=16,
            epochs=2,
            oversample_rounds=0,
            max_train_samples=5000,
            cell=cell,
            seed=0,
        )
        started = time.perf_counter()
        detector.fit_streams(training)
        train_time = time.perf_counter() - started
        streams = {
            vpe: detector.score(
                dataset.messages_between(vpe, test_start, test_end)
            )
            for vpe in vpes
        }
        curve = sweep_thresholds(streams, tickets, n_thresholds=15)
        op = best_operating_point(curve)
        return op, auc_pr(curve), train_time

    def experiment():
        return {cell: evaluate(cell) for cell in ("lstm", "gru")}

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = [
        [
            cell.upper(),
            f"{op.precision:.2f}",
            f"{op.recall:.2f}",
            f"{op.f_measure:.2f}",
            f"{auc:.3f}",
            f"{seconds:.1f}s",
        ]
        for cell, (op, auc, seconds) in results.items()
    ]
    table = format_table(
        ["cell", "precision", "recall", "F", "AUC-PR", "train time"],
        rows,
        title=(
            "Ablation — recurrent cell (LSTM vs GRU), same data and "
            "schedule"
        ),
    )
    write_result("ablation_recurrent_cell", table)

    lstm_f = results["lstm"][0].f_measure
    gru_f = results["gru"][0].f_measure
    # Both cells must be competent; neither should dominate by a wide
    # margin on this task.
    assert lstm_f > 0.5
    assert gru_f > 0.5
    assert abs(lstm_f - gru_f) < 0.2
