"""Ablation: minority-pattern over-sampling (section 4.2).

LSTMs struggle with rare-but-normal syslog patterns, which surface as
false alarms.  The paper's fix trains in multiple rounds, over-sampling
normal patterns the model still mis-scores.  This ablation trains the
same detector with the loop off and on and compares the false-alarm
rate at a matched detection level.
"""

import numpy as np

from benchmarks.conftest import lstm_factory, write_result
from repro.core.detector import LSTMAnomalyDetector
from repro.core.mapping import map_anomalies, warning_clusters
from repro.evaluation.reporting import format_table
from repro.logs.templates import TemplateStore
from repro.timeutil import DAY, MONTH


def false_alarms_at_matched_volume(detector, dataset, vpes,
                                   start, end, volume_quantile=0.995):
    """False alarms/day when flagging the same score quantile."""
    streams = {
        vpe: detector.score(dataset.messages_between(vpe, start, end))
        for vpe in vpes
    }
    pooled = np.concatenate(
        [s.scores for s in streams.values() if len(s)]
    )
    threshold = float(np.quantile(pooled, volume_quantile))
    detections = {
        vpe: warning_clusters(stream.anomalies(threshold))
        for vpe, stream in streams.items()
    }
    tickets = [
        t
        for t in dataset.tickets_for(start=start, end=end)
        if t.vpe in set(vpes)
    ]
    mapping = map_anomalies(detections, tickets)
    counts = mapping.counts
    return (
        mapping.false_alarms_per_day(end - start),
        counts.recall,
    )


def test_ablation_oversampling(benchmark, bench_dataset):
    dataset = bench_dataset
    vpes = dataset.vpe_names[:4]
    store = TemplateStore().fit(
        dataset.aggregate_messages(
            start=dataset.start,
            end=dataset.start + MONTH,
            normal_only=True,
        )[:20000]
    )
    training = [
        dataset.normal_messages(
            vpe, dataset.start, dataset.start + MONTH
        )
        for vpe in vpes
    ]
    test_start = dataset.start + MONTH
    test_end = dataset.start + 2 * MONTH

    def build(rounds, seed=0):
        detector = lstm_factory(store, seed)
        detector.oversample_rounds = rounds
        detector.epochs = 3
        return detector.fit_streams(training)

    def experiment():
        results = {}
        for rounds in (0, 2):
            detector = build(rounds)
            fa, recall = false_alarms_at_matched_volume(
                detector, dataset, vpes, test_start, test_end
            )
            results[rounds] = (fa, recall)
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = [
        [
            f"{rounds} rounds",
            f"{fa:.2f}",
            f"{recall:.2f}",
        ]
        for rounds, (fa, recall) in results.items()
    ]
    table = format_table(
        ["over-sampling", "false alarms/day", "recall"],
        rows,
        title=(
            "Ablation — minority-pattern over-sampling (section 4.2)\n"
            "(paper: over-sampling mis-scored normal patterns cuts "
            "false alarms)"
        ),
    )
    write_result("ablation_oversampling", table)

    fa_off = results[0][0]
    fa_on = results[2][0]
    # The loop must not make false alarms worse, and must keep recall.
    assert fa_on <= fa_off * 1.25 + 0.1
    assert results[2][1] >= results[0][1] - 0.15
