"""Durable-runtime benchmarks: WAL ingest overhead, checkpoint latency.

Two questions, one suite:

* what does journaling cost?  The same fleet stream is drained twice
  through an identical :class:`~repro.core.online.OnlineMonitor` —
  once bare (WAL off) and once with the service's journaling step
  bolted on before each tick (WAL on: arena-encode via
  :class:`~repro.runtime.codec.TickEncoder`, CRC, append).  Holding
  the scoring engine object identical isolates the journal cost; the
  service's remaining per-tick bookkeeping is a handful of integer
  checks.  The acceptance bound pins the overhead fraction under 5%;
* what does a snapshot cost?  ``write_checkpoint``/``read_checkpoint``
  round-trip latency and on-disk size over a monitor carrying the full
  sweep's device state.

``run(scale)`` returns a JSON-ready record; ``run.py runtime`` appends
it to ``BENCH_runtime.json`` at the repo root.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

import streaming
from repro.core.detector import LSTMAnomalyDetector
from repro.core.online import OnlineMonitor
from repro.logs.message import SyslogMessage
from repro.runtime.checkpoint import read_checkpoint, write_checkpoint
from repro.runtime.codec import TickEncoder
from repro.runtime.wal import WriteAheadLog


@dataclass(frozen=True)
class RuntimeScale:
    """One runtime-benchmark operating point."""

    name: str
    devices: int
    timed_messages: int
    repeats: int = 3
    tick_size: int = 1024
    checkpoint_repeats: int = 5


SCALES: Dict[str, RuntimeScale] = {
    # The reference point BENCH_runtime.json records: the paper's
    # 38-vPE fleet on one service.
    "default": RuntimeScale(
        name="default", devices=38, timed_messages=16384
    ),
    # CI / perf-marked pytest smoke.  The timed window must stay wide
    # enough (and the repeats deep enough) that best-of timing beats
    # scheduler jitter: the journaling overhead being pinned is a few
    # percent of a drain that only runs a few hundred milliseconds.
    "reduced": RuntimeScale(
        name="reduced",
        devices=16,
        timed_messages=8192,
        repeats=4,
        checkpoint_repeats=3,
    ),
}


def build_detector(scale: RuntimeScale) -> LSTMAnomalyDetector:
    """A fitted float64 detector on the shared streaming corpus."""
    f64, _ = streaming.build_detectors(
        streaming.SCALES[
            "reduced" if scale.name == "reduced" else "default"
        ]
    )
    return f64


def _ticks(
    messages: List[SyslogMessage], tick_size: int
) -> List[List[SyslogMessage]]:
    return [
        messages[index:index + tick_size]
        for index in range(0, len(messages), tick_size)
    ]


def _time_monitor_drain(
    detector: LSTMAnomalyDetector,
    warm: List[SyslogMessage],
    ticks: List[List[SyslogMessage]],
    repeats: int,
) -> float:
    """Best-of wall time for the WAL-off side (bare monitor)."""
    best = float("inf")
    for _ in range(repeats):
        monitor = OnlineMonitor(
            detector, threshold=float("inf"), strict_order=False
        )
        monitor.observe_batch(warm)
        start = time.perf_counter()
        for tick in ticks:
            monitor.observe_batch(tick)
        best = min(best, time.perf_counter() - start)
    return best


def _time_journaled_drain(
    detector: LSTMAnomalyDetector,
    warm: List[SyslogMessage],
    ticks: List[List[SyslogMessage]],
    repeats: int,
) -> float:
    """Best-of wall time for the WAL-on side (journal, then score).

    Runs the exact journaling step ``MonitorService.process_tick``
    runs — one :class:`TickEncoder` arena encode, CRC, segment append
    — in front of the same ``observe_batch`` the WAL-off side times,
    so the delta between the two sides is the journal alone.
    Checkpointing is cadence-driven and benched separately.
    """
    best = float("inf")
    for _ in range(repeats):
        data_dir = tempfile.mkdtemp(prefix="bench-runtime-")
        try:
            monitor = OnlineMonitor(
                detector, threshold=float("inf"), strict_order=False
            )
            monitor.observe_batch(warm)
            encoder = TickEncoder()
            with WriteAheadLog(data_dir) as wal:
                start = time.perf_counter()
                for sequence, tick in enumerate(ticks, start=1):
                    wal.append(sequence, encoder.encode(tick))
                    monitor.observe_batch(tick)
                best = min(best, time.perf_counter() - start)
        finally:
            shutil.rmtree(data_dir, ignore_errors=True)
    return best


def bench_wal_overhead(
    scale: RuntimeScale, detector: LSTMAnomalyDetector
) -> Dict[str, float]:
    """WAL-on vs WAL-off drain of the same fleet stream."""
    warmup = scale.devices * (detector.windower.window + 2)
    stream = streaming.fleet_stream(
        scale.devices, warmup + scale.timed_messages
    )
    warm, timed = stream[:warmup], stream[warmup:]
    ticks = _ticks(timed, scale.tick_size)
    off_s = wal_s = float("inf")
    # Interleave the sides so slow load drift cancels out instead of
    # being billed to whichever side ran last.
    for _ in range(scale.repeats):
        off_s = min(
            off_s, _time_monitor_drain(detector, warm, ticks, 1)
        )
        wal_s = min(
            wal_s, _time_journaled_drain(detector, warm, ticks, 1)
        )
    return {
        "devices": scale.devices,
        "timed_messages": len(timed),
        "tick_size": scale.tick_size,
        "wal_off_s": off_s,
        "wal_on_s": wal_s,
        "wal_off_msgs_per_s": len(timed) / off_s,
        "wal_on_msgs_per_s": len(timed) / wal_s,
        "overhead_fraction": wal_s / off_s - 1.0,
    }


def bench_checkpoint(
    scale: RuntimeScale, detector: LSTMAnomalyDetector
) -> Dict[str, float]:
    """Snapshot write/restore latency over a fully warmed fleet."""
    warmup = scale.devices * (detector.windower.window + 2)
    stream = streaming.fleet_stream(
        scale.devices, warmup + 4 * scale.tick_size
    )
    monitor = OnlineMonitor(
        detector, threshold=float("inf"), strict_order=False
    )
    monitor.run(stream, tick_size=scale.tick_size)
    data_dir = tempfile.mkdtemp(prefix="bench-checkpoint-")
    write_s = read_s = float("inf")
    try:
        path = f"{data_dir}/checkpoint.npz"
        size = 0
        for _ in range(scale.checkpoint_repeats):
            start = time.perf_counter()
            size = write_checkpoint(path, monitor, cursor=1)
            write_s = min(write_s, time.perf_counter() - start)
        restored = OnlineMonitor(
            detector, threshold=float("inf"), strict_order=False
        )
        for _ in range(scale.checkpoint_repeats):
            start = time.perf_counter()
            read_checkpoint(path).restore(restored)
            read_s = min(read_s, time.perf_counter() - start)
        assert np.array_equal(
            restored.scorer.state_dict()["fill"],
            monitor.scorer.state_dict()["fill"],
        )
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)
    return {
        "devices": scale.devices,
        "checkpoint_bytes": size,
        "write_s": write_s,
        "restore_s": read_s,
    }


def run(scale_name: str = "default") -> Dict:
    """Run the WAL-overhead and checkpoint benches at one scale."""
    scale = SCALES[scale_name]
    detector = build_detector(scale)
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "scale": scale.name,
        "benchmarks": {
            "wal_ingest": bench_wal_overhead(scale, detector),
            "checkpoint": bench_checkpoint(scale, detector),
        },
    }
