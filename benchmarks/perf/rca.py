"""RCA benchmarks: attribution accuracy and per-tick engine overhead.

Two numbers decide whether ``serve --rca`` is deployable:

* ``attribution`` — macro-F1 of cause-kind classification on the
  correlated-outage scenario (streaming engine vs ground-truth
  labels), plus exact-element accuracy and onset-to-attribution
  latency.  The acceptance gate pins macro-F1 at >= 0.8: a root
  causer that miskinds outages is worse than none.
* ``overhead`` — how much longer a service tick takes with the RCA
  engine attached than without it, over identical traffic.  The
  acceptance gate pins the overhead at < 5% of the tick budget:
  attribution must not tax ingest.

``run(scale)`` returns a JSON-ready record; ``run.py rca`` appends
it to ``BENCH_rca.json`` at the repo root.
"""

from __future__ import annotations

import statistics
import tempfile
import time
from dataclasses import dataclass
from typing import Dict

import adapt as adapt_bench
import numpy as np

from repro import telemetry
from repro.core.detector import LSTMAnomalyDetector
from repro.evaluation.rca import evaluate_rca
from repro.logs.templates import TemplateStore
from repro.rca import RcaEngine
from repro.synthesis.fleet import FleetSimulator
from repro.synthesis.outage import correlated_outage_config
from repro.topology import TopologyConfig, generate_topology


@dataclass(frozen=True)
class RcaScale:
    """One RCA-benchmark operating point."""

    name: str
    n_vpes: int
    n_months: int
    n_outages: int
    overhead_ticks: int
    seed: int = 7


SCALES: Dict[str, RcaScale] = {
    # The reference point BENCH_rca.json records.
    "default": RcaScale(
        name="default",
        n_vpes=16,
        n_months=2,
        n_outages=15,
        overhead_ticks=200,
    ),
    # CI / perf-marked pytest smoke.
    "reduced": RcaScale(
        name="reduced",
        n_vpes=16,
        n_months=1,
        n_outages=5,
        overhead_ticks=64,
    ),
}


def bench_attribution(scale: RcaScale) -> Dict[str, float]:
    """Score the streaming engine against ground-truth outages."""
    config = correlated_outage_config(
        n_vpes=scale.n_vpes,
        n_months=scale.n_months,
        seed=scale.seed,
        n_outages=scale.n_outages,
    )
    generate_start = time.perf_counter()
    dataset = FleetSimulator(config).run()
    generate_s = time.perf_counter() - generate_start
    evaluate_start = time.perf_counter()
    evaluation = evaluate_rca(dataset)
    evaluate_s = time.perf_counter() - evaluate_start
    return {
        "n_vpes": scale.n_vpes,
        "n_outages": evaluation.n_truth,
        "n_predicted": evaluation.n_predicted,
        "n_matched": evaluation.n_matched,
        "n_spurious": evaluation.n_spurious,
        "macro_f1": evaluation.macro_f1,
        "element_accuracy": evaluation.element_accuracy,
        "mean_detection_s": evaluation.mean_detection_seconds,
        "mean_attribution_s": evaluation.mean_attribution_seconds,
        "per_kind_f1": {
            kind: score.f1
            for kind, score in sorted(evaluation.per_kind.items())
        },
        "generate_s": generate_s,
        "evaluate_s": evaluate_s,
    }


def _calibrated_detector(adapt_scale):
    """A detector whose normal traffic really scores as normal.

    The adaptation bench trains on a single-device stream and scores
    multi-device ticks — fine for its latency questions, but here the
    resulting ~90% anomaly rate would turn the overhead bench into a
    permanent storm.  Training on the same device-interleaved layout
    the ticks use keeps the steady-state anomaly rate realistic
    (storm cost is measured separately in :func:`bench_storm`).
    """
    normal = adapt_bench.stream(
        adapt_bench.NORMAL_TEXTS,
        adapt_scale.train_messages,
        adapt_bench.START,
        adapt_scale.devices,
    )
    store = TemplateStore().fit(normal)
    detector = LSTMAnomalyDetector(
        store,
        vocabulary_capacity=32,
        window=adapt_scale.window,
        hidden=adapt_scale.hidden,
        id_dim=8,
        epochs=3,
        oversample_rounds=0,
        seed=0,
    ).fit(normal)
    scores = detector.score(normal[: len(normal) // 2]).scores
    threshold = float(np.nanquantile(scores, 0.999)) + 0.5
    return detector, threshold


def bench_overhead(scale: RcaScale) -> Dict[str, float]:
    """Median tick wall time with vs without the engine attached.

    One service, one homogeneous tick stream, the engine attached on
    alternating ticks — interleaving keeps both samples equally warm
    (a sequential A-then-B run hands B every cache A paid for) and
    pairs each bare tick with an adjacent rca tick that saw the same
    ambient conditions.  The overhead is the median of the paired
    differences over the median bare tick: scheduler jitter at the
    millisecond-tick scale swamps a difference-of-medians, but
    cancels inside each pair.
    """
    adapt_scale = adapt_bench.SCALES["reduced"]
    detector, threshold = _calibrated_detector(adapt_scale)
    topology = generate_topology(
        [f"vpe{i:02d}" for i in range(adapt_scale.devices)],
        TopologyConfig(seed=scale.seed),
    )
    ticks = adapt_bench.ticks_of(
        adapt_bench.NORMAL_TEXTS,
        2 * scale.overhead_ticks + 4,
        adapt_bench.START + 6e6,
        adapt_scale,
    )
    engine = RcaEngine(topology=topology)
    anomalies = 0
    with tempfile.TemporaryDirectory() as tmp:
        service = adapt_bench._open_service(tmp, detector, threshold)
        bare: list = []
        timed: list = []
        for index, tick in enumerate(ticks):
            with_rca = index % 2 == 1
            service.rca = engine if with_rca else None
            start = time.perf_counter()
            service.process_tick(tick)
            elapsed = time.perf_counter() - start
            (timed if with_rca else bare).append(elapsed)
            batch = service.monitor.last_batch
            anomalies += int(
                np.sum(
                    batch.kept
                    & (batch.scores > service.monitor.threshold)
                )
            )
        engine.flush()
        service.rca = None
        service.close()
    pairs = list(zip(bare, timed))[2:]  # skip warmup
    diffs = [rca_s - bare_s for bare_s, rca_s in pairs]
    bare_med = statistics.median(b for b, _ in pairs)
    delta_med = statistics.median(diffs)
    return {
        "tick_size": adapt_scale.tick_size,
        "ticks": scale.overhead_ticks,
        "anomaly_rate": anomalies
        / (len(ticks) * adapt_scale.tick_size),
        "bare_tick_s": bare_med,
        "rca_tick_s": bare_med + max(0.0, delta_med),
        "overhead_fraction": max(0.0, delta_med / bare_med),
    }


def bench_storm(scale: RcaScale) -> Dict[str, float]:
    """Engine-only cost when *every* message in a tick is anomalous.

    The worst case the service can hand the engine: a full-tick storm
    folding into one long-lived incident.  Reported per anomaly so
    the number composes with any tick size.
    """
    adapt_scale = adapt_bench.SCALES["reduced"]
    topology = generate_topology(
        [f"vpe{i:02d}" for i in range(adapt_scale.devices)],
        TopologyConfig(seed=scale.seed),
    )
    size = adapt_scale.tick_size
    ticks = adapt_bench.ticks_of(
        adapt_bench.NORMAL_TEXTS,
        scale.overhead_ticks + 2,
        adapt_bench.START + 8e6,
        adapt_scale,
    )
    scores = np.full(size, 9.0)
    kept = np.ones(size, dtype=bool)
    engine = RcaEngine(topology=topology)
    elapsed: list = []
    for index, tick in enumerate(ticks):
        start = time.perf_counter()
        engine.observe_tick(index, tick, scores, kept, 1.0)
        elapsed.append(time.perf_counter() - start)
    engine.flush()
    storm_med = statistics.median(elapsed[2:])
    return {
        "tick_size": size,
        "ticks": scale.overhead_ticks,
        "storm_tick_s": storm_med,
        "per_anomaly_us": storm_med / size * 1e6,
    }


def run(scale_name: str = "default") -> Dict:
    """Run the RCA bench at the named scale."""
    scale = SCALES[scale_name]
    with telemetry.use(telemetry.MetricsRegistry()):
        attribution = bench_attribution(scale)
        overhead = bench_overhead(scale)
        storm = bench_storm(scale)
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "scale": scale.name,
        "benchmarks": {
            "attribution": attribution,
            "overhead": overhead,
            "storm": storm,
        },
    }
