"""Frozen pre-optimization reference implementations ("before").

These are verbatim-semantics copies of the hot-path code as it stood
before the fused/preallocated rewrite: Python-list BPTT caches with a
``np.concatenate`` per backward step, ``np.add.at`` embedding scatter,
per-offset window construction, and uncached template matching (the
live :class:`~repro.logs.templates.TemplateStore` with
``memo_capacity=0``).  The microbenchmarks in :mod:`hotpath` time these
against the live implementations so every ``BENCH_hotpath.json`` run
carries its own before/after pair, and the regression tests assert the
fused float64 forward is bitwise-identical to these loops.

Do not "optimize" this module — its whole value is staying slow.
"""

from __future__ import annotations

import re
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.detector import LSTMAnomalyDetector
from repro.logs.message import SyslogMessage
from repro.logs.sequences import (
    N_GAP_BUCKETS,
    SequenceWindower,
    TemplateEvent,
    gap_bucket,
)
from repro.nn.losses import SoftmaxCrossEntropy
from repro.logs.signature_tree import (
    _VARIABLE_PATTERNS,
    WILDCARD,
    _matches,
)
from repro.logs.templates import TemplateStore
from repro.nn import Dense, Sequential
from repro.nn.activations import tanh
from repro.nn.initializers import glorot_uniform, orthogonal, uniform_scaled
from repro.nn.layers import Layer


def sigmoid(x: np.ndarray) -> np.ndarray:
    """The seed's masked stable sigmoid (slow fancy-index branches)."""
    x = np.asarray(x)
    dtype = x.dtype if x.dtype in (np.float32, np.float64) else np.float64
    out = np.empty_like(x, dtype=dtype)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


class LegacyLSTM(Layer):
    """The seed LSTM: per-step list appends, no fused buffers."""

    def __init__(
        self,
        hidden: int,
        return_sequences: bool = False,
        name: str = "lstm",
    ) -> None:
        super().__init__(name)
        self.hidden = hidden
        self.return_sequences = return_sequences
        self._cache: Optional[dict] = None

    def build(
        self, input_shape: Tuple[int, ...], rng: np.random.Generator
    ) -> Tuple[int, ...]:
        _, features = input_shape
        if not self.built:
            bias = np.zeros(4 * self.hidden)
            bias[self.hidden:2 * self.hidden] = 1.0
            self.params = {
                "W": glorot_uniform((features, 4 * self.hidden), rng),
                "U": np.concatenate(
                    [
                        orthogonal((self.hidden, self.hidden), rng)
                        for _ in range(4)
                    ],
                    axis=1,
                ),
                "b": bias,
            }
            self.zero_grads()
            self.built = True
        if self.return_sequences:
            return (input_shape[0], self.hidden)
        return (self.hidden,)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        batch, steps, _ = x.shape
        hidden = self.hidden
        weight, recurrent, bias = (
            self.params["W"],
            self.params["U"],
            self.params["b"],
        )
        h_prev = np.zeros((batch, hidden))
        c_prev = np.zeros((batch, hidden))
        gates_i: List[np.ndarray] = []
        gates_f: List[np.ndarray] = []
        gates_g: List[np.ndarray] = []
        gates_o: List[np.ndarray] = []
        cells: List[np.ndarray] = []
        hiddens: List[np.ndarray] = []
        prev_hiddens: List[np.ndarray] = []
        prev_cells: List[np.ndarray] = []
        for step in range(steps):
            z = x[:, step, :] @ weight + h_prev @ recurrent + bias
            gate_i = sigmoid(z[:, :hidden])
            gate_f = sigmoid(z[:, hidden:2 * hidden])
            gate_g = tanh(z[:, 2 * hidden:3 * hidden])
            gate_o = sigmoid(z[:, 3 * hidden:])
            prev_hiddens.append(h_prev)
            prev_cells.append(c_prev)
            c_prev = gate_f * c_prev + gate_i * gate_g
            h_prev = gate_o * tanh(c_prev)
            gates_i.append(gate_i)
            gates_f.append(gate_f)
            gates_g.append(gate_g)
            gates_o.append(gate_o)
            cells.append(c_prev)
            hiddens.append(h_prev)
        self._cache = {
            "x": x,
            "i": gates_i,
            "f": gates_f,
            "g": gates_g,
            "o": gates_o,
            "c": cells,
            "h": hiddens,
            "h_prev": prev_hiddens,
            "c_prev": prev_cells,
        }
        if self.return_sequences:
            return np.stack(hiddens, axis=1)
        return hiddens[-1]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        cache = self._cache
        if cache is None:
            raise RuntimeError("backward called before forward")
        x = cache["x"]
        batch, steps, _ = x.shape
        hidden = self.hidden
        weight, recurrent = self.params["W"], self.params["U"]

        if self.return_sequences:
            step_grads = grad
        else:
            step_grads = np.zeros((batch, steps, hidden))
            step_grads[:, -1, :] = grad

        dx = np.zeros_like(x, dtype=np.float64)
        dh_next = np.zeros((batch, hidden))
        dc_next = np.zeros((batch, hidden))
        for step in range(steps - 1, -1, -1):
            gate_i = cache["i"][step]
            gate_f = cache["f"][step]
            gate_g = cache["g"][step]
            gate_o = cache["o"][step]
            cell = cache["c"][step]
            cell_prev = cache["c_prev"][step]
            hidden_prev = cache["h_prev"][step]

            dh = step_grads[:, step, :] + dh_next
            tanh_cell = np.tanh(cell)
            d_o = dh * tanh_cell
            dc = dh * gate_o * (1.0 - tanh_cell * tanh_cell) + dc_next
            d_f = dc * cell_prev
            d_i = dc * gate_g
            d_g = dc * gate_i

            dz = np.concatenate(
                [
                    d_i * gate_i * (1.0 - gate_i),
                    d_f * gate_f * (1.0 - gate_f),
                    d_g * (1.0 - gate_g * gate_g),
                    d_o * gate_o * (1.0 - gate_o),
                ],
                axis=1,
            )
            self.grads["W"] += x[:, step, :].T @ dz
            self.grads["U"] += hidden_prev.T @ dz
            self.grads["b"] += dz.sum(axis=0)
            dx[:, step, :] = dz @ weight.T
            dh_next = dz @ recurrent.T
            dc_next = dc * gate_f
        return dx


class LegacyEmbedding(Layer):
    """The seed embedding: ``np.add.at`` gradient scatter."""

    def __init__(
        self, vocabulary: int, dim: int, name: str = "embedding"
    ) -> None:
        super().__init__(name)
        self.vocabulary = vocabulary
        self.dim = dim
        self._cache_ids: Optional[np.ndarray] = None

    def build(
        self, input_shape: Tuple[int, ...], rng: np.random.Generator
    ) -> Tuple[int, ...]:
        if not self.built:
            self.params = {
                "E": uniform_scaled((self.vocabulary, self.dim), rng)
            }
            self.zero_grads()
            self.built = True
        return (*input_shape, self.dim)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        ids = np.asarray(x, dtype=np.int64)
        self._cache_ids = ids
        return self.params["E"][ids]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        ids = self._cache_ids
        np.add.at(
            self.grads["E"],
            ids.reshape(-1),
            grad.reshape(-1, self.dim),
        )
        return np.zeros(ids.shape, dtype=np.float64)


class LegacyTupleEmbedding(Layer):
    """The seed tuple embedding, backed by :class:`LegacyEmbedding`."""

    def __init__(
        self,
        id_vocabulary: int,
        gap_vocabulary: int,
        id_dim: int = 32,
        gap_dim: int = 4,
        name: str = "tuple_embedding",
    ) -> None:
        super().__init__(name)
        self.id_embedding = LegacyEmbedding(id_vocabulary, id_dim, name="ids")
        self.gap_embedding = LegacyEmbedding(
            gap_vocabulary, gap_dim, name="gaps"
        )

    def build(
        self, input_shape: Tuple[int, ...], rng: np.random.Generator
    ) -> Tuple[int, ...]:
        inner = input_shape[:-1]
        self.id_embedding.build(inner, rng)
        self.gap_embedding.build(inner, rng)
        if not self.built:
            self.params = {
                "ids.E": self.id_embedding.params["E"],
                "gaps.E": self.gap_embedding.params["E"],
            }
            self.zero_grads()
            self.id_embedding.grads["E"] = self.grads["ids.E"]
            self.gap_embedding.grads["E"] = self.grads["gaps.E"]
            self.built = True
        return (*inner, self.id_embedding.dim + self.gap_embedding.dim)

    def zero_grads(self) -> None:
        super().zero_grads()
        if self.built:
            self.id_embedding.grads["E"] = self.grads["ids.E"]
            self.gap_embedding.grads["E"] = self.grads["gaps.E"]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        ids = self.id_embedding.forward(x[..., 0], training)
        gaps = self.gap_embedding.forward(x[..., 1], training)
        return np.concatenate([ids, gaps], axis=-1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        split = self.id_embedding.dim
        self.id_embedding.backward(grad[..., :split])
        self.gap_embedding.backward(grad[..., split:])
        shape = grad.shape[:-1] + (2,)
        return np.zeros(shape, dtype=np.float64)


class LegacyWindower(SequenceWindower):
    """The seed windower: one strided copy per window offset."""

    def windows(
        self, events: Sequence[TemplateEvent]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        n = len(events) - self.window
        if n <= 0:
            empty_ctx = np.empty((0, self.window, 2), dtype=np.int64)
            return (
                empty_ctx,
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
            )
        contexts = np.empty((n, self.window, 2), dtype=np.int64)
        targets = np.empty(n, dtype=np.int64)
        target_times = np.empty(n, dtype=np.float64)
        ids = np.fromiter(
            (event.template_id for event in events),
            dtype=np.int64,
            count=len(events),
        )
        gaps = np.fromiter(
            (event.gap_bucket for event in events),
            dtype=np.int64,
            count=len(events),
        )
        times = np.fromiter(
            (event.timestamp for event in events),
            dtype=np.float64,
            count=len(events),
        )
        for offset in range(self.window):
            contexts[:, offset, 0] = ids[offset:offset + n]
            contexts[:, offset, 1] = gaps[offset:offset + n]
        targets[:] = ids[self.window:]
        target_times[:] = times[self.window:]
        return contexts, targets, target_times


_LEGACY_TOKEN_RE = re.compile(r"\S+")


def _legacy_tokenize(text: str) -> List[str]:
    """Seed tokenizer: regex scan instead of ``str.split``."""
    return _LEGACY_TOKEN_RE.findall(text)


def _legacy_is_variable(token: str) -> bool:
    """Seed token classifier: regex sweep per call, no memo."""
    return any(pattern.match(token) for pattern in _VARIABLE_PATTERNS)


def _legacy_presignature(tokens: Sequence[str]) -> Tuple[Optional[str], ...]:
    return tuple(
        WILDCARD if _legacy_is_variable(token) else token
        for token in tokens
    )


class LegacyTemplateStore(TemplateStore):
    """The seed's ``match``: no memo, per-call double token sweep.

    The seed classified every token twice per lookup — once for the
    level-2 key, once for the presignature — with an unmemoized regex
    sweep each time.
    """

    def match(self, message: SyslogMessage) -> int:
        if not self.fitted:
            raise RuntimeError("TemplateStore.match called before fit")
        tokens = _legacy_tokenize(message.text)
        signature = None
        level1 = self._tree._tree.get(len(tokens))
        if level1 is not None:
            first = next(
                (tok for tok in tokens if not _legacy_is_variable(tok)),
                "",
            )
            leaf = level1.get(f"{message.process}\x00{first}")
            if leaf is not None:
                presig = _legacy_presignature(tokens)
                for candidate in leaf.signatures:
                    if _matches(candidate, presig):
                        signature = candidate
                        break
        if signature is None:
            return 0
        return self._index.get((message.process, signature), 0)


def uncached_store(store: TemplateStore) -> TemplateStore:
    """A view of ``store``'s mined templates with matching uncached.

    Copies the fitted tree/index into a :class:`LegacyTemplateStore`,
    i.e. the pre-optimization ``transform`` path.
    """
    clone = LegacyTemplateStore(
        merge_threshold=store._tree.merge_threshold, memo_capacity=0
    )
    clone._tree = store._tree
    clone._templates = list(store._templates)
    clone._index = dict(store._index)
    clone._fitted = store.fitted
    return clone


class LegacyDetector(LSTMAnomalyDetector):
    """Seed data path: annotated message copies + event objects.

    The seed's ``_windows`` transformed the stream into annotated
    message copies, built one ``TemplateEvent`` object per message,
    and clamped ids on a full copy of the context tensor.
    """

    def _windows(self, messages):
        annotated = self.store.transform(messages)
        contexts, targets, times = self.windower.windows_from_messages(
            annotated
        )
        contexts = contexts.copy()
        context_ids = contexts[..., 0]
        context_ids[context_ids >= self.vocabulary_capacity] = 0
        targets = targets.copy()
        targets[targets >= self.vocabulary_capacity] = 0
        return contexts, targets, times


def legacy_detector(store: TemplateStore, **kwargs) -> LSTMAnomalyDetector:
    """An :class:`LSTMAnomalyDetector` running the pre-refactor stack.

    Builds the standard detector, then swaps in the legacy model
    (list-append LSTM, ``np.add.at`` embeddings), the legacy windower,
    the seed windowing data path and an uncached template store.
    Weight initialization mirrors the live detector draw-for-draw, so
    at a fixed seed the two start from identical parameters.
    """
    detector = LegacyDetector(store, **kwargs)
    layers = detector.model.layers
    embedding, lstm1, lstm2, output = layers
    window = detector.windower.window
    model = Sequential(
        [
            LegacyTupleEmbedding(
                embedding.id_embedding.vocabulary,
                N_GAP_BUCKETS,
                id_dim=embedding.id_embedding.dim,
                gap_dim=embedding.gap_embedding.dim,
                name="embedding",
            ),
            LegacyLSTM(
                lstm1.hidden, return_sequences=True, name="lstm1"
            ),
            LegacyLSTM(lstm2.hidden, name="lstm2"),
            Dense(output.units, name="output"),
        ],
        rng=np.random.default_rng(detector.seed + 1),
    ).build((window, 2))
    detector.model = model
    detector.windower = LegacyWindower(window)
    detector.store = uncached_store(store)
    return detector


class LegacyOnlineScorer:
    """The seed's streaming scorer: one batch-of-1 forward per message.

    Verbatim semantics of the pre-streaming-engine
    ``OnlineMonitor._score``: a per-device ``deque`` of Python tuples,
    a full cache-building ``model.forward(training=False)`` on a
    ``(1, window, 2)`` array for every arrival, and the clamp/gap
    logic inline.  The streaming benchmarks time this against
    :class:`repro.core.stream.StreamScorer` on identical streams.
    """

    def __init__(self, detector: LSTMAnomalyDetector) -> None:
        self.detector = detector
        self._contexts: Dict[str, Deque[Tuple[int, int]]] = {}
        self._last_time: Dict[str, float] = {}

    def observe(self, message: SyslogMessage) -> Optional[float]:
        detector = self.detector
        template_id = detector.store.match(message)
        if template_id >= detector.vocabulary_capacity:
            template_id = 0
        last = self._last_time.get(message.host)
        gap = (
            N_GAP_BUCKETS - 1
            if last is None
            else gap_bucket(message.timestamp - last)
        )
        window = detector.windower.window
        context = self._contexts.setdefault(message.host, deque())
        score: Optional[float] = None
        if len(context) == window:
            array = np.array([context], dtype=np.int64)
            logits = detector.model.forward(array, training=False)
            likelihood = SoftmaxCrossEntropy.log_likelihoods(
                logits, np.array([template_id])
            )
            score = float(-likelihood[0])
        context.append((template_id, gap))
        if len(context) > window:
            context.popleft()
        self._last_time[message.host] = message.timestamp
        return score
