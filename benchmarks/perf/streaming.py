"""Streaming-scoring benchmarks: per-message legacy vs micro-batched.

One suite, one question: what does cross-device micro-batching buy the
online monitor?  For each device count in the sweep we synthesize a
round-robin interleaved fleet stream, warm every device's context ring
(untimed), then time three scorers on the same timed slice:

* ``legacy`` — :class:`legacy.LegacyOnlineScorer`, the seed's
  per-message path: one batch-of-1 cache-building ``model.forward``
  per arrival (float64, the only precision the seed had);
* ``stream_f64`` — :class:`repro.core.stream.StreamScorer` over the
  float64 detector, draining the stream in ticks (bitwise identical
  scores to the legacy path);
* ``stream_f32`` — the same engine over a float32 twin of the model
  (weights cast down), the deployment fast path.

``run(scale)`` returns a JSON-ready record; ``run.py streaming``
appends it to ``BENCH_streaming.json`` at the repo root.  The legacy
side is capped at ``legacy_cap`` timed messages per device count so
the slow side doesn't dominate wall time; throughput is stationary, so
the shorter slice measures the same msgs/s.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

import legacy
from repro import telemetry
from repro.core.detector import LSTMAnomalyDetector
from repro.core.stream import StreamScorer
from repro.logs.message import SyslogMessage
from repro.logs.templates import TemplateStore
from repro.timeutil import TRACE_START

# Distinct alphabetic keywords: digit-bearing tokens would be mined as
# template variables and collapse into fewer templates.
TEXTS = [
    f"{word}: link status nominal for peer {word.lower()}"
    for word in (
        "ALPHA", "BRAVO", "CHARLIE", "DELTA", "ECHO", "FOXTROT",
        "GOLF", "HOTEL", "INDIA", "JULIET", "KILO", "LIMA",
    )
]


@dataclass(frozen=True)
class StreamScale:
    """One streaming-benchmark operating point.

    ``device_counts`` sweeps the fleet size; 38 mirrors the largest
    universal group in the paper's deployment (section 4.3), 512 the
    "full fleet on one scorer" regime.
    """

    name: str
    device_counts: Tuple[int, ...]
    timed_messages: int
    legacy_cap: int
    repeats: int = 3
    tick_size: int = 1024
    window: int = 10
    hidden: int = 24
    vocabulary_capacity: int = 64
    train_messages: int = 4000


SCALES: Dict[str, StreamScale] = {
    # The reference sweep BENCH_streaming.json records.  The 38-device
    # float32 point carries the acceptance number (>= 10x legacy).
    "default": StreamScale(
        name="default",
        device_counts=(1, 38, 512),
        timed_messages=16384,
        legacy_cap=2048,
    ),
    # CI / perf-marked pytest smoke (<60 s including the legacy side).
    "reduced": StreamScale(
        name="reduced",
        device_counts=(1, 8, 32),
        timed_messages=4096,
        legacy_cap=512,
        repeats=2,
        train_messages=2000,
    ),
}


def fleet_stream(
    n_devices: int, n_messages: int, period: float = 0.05
) -> List[SyslogMessage]:
    """A time-sorted round-robin interleave of ``n_devices`` streams.

    Message ``i`` lands on device ``i % n_devices``; each device sees
    the template cycle at its own phase so contexts differ across the
    fleet.
    """
    return [
        SyslogMessage(
            timestamp=TRACE_START + i * period,
            host=f"vpe{i % n_devices:03d}",
            process="rpd",
            text=TEXTS[(i // n_devices + i % n_devices) % len(TEXTS)],
        )
        for i in range(n_messages)
    ]


def build_detectors(
    scale: StreamScale,
) -> Tuple[LSTMAnomalyDetector, LSTMAnomalyDetector]:
    """A fitted float64 detector and its float32 twin (same weights)."""
    train = fleet_stream(1, scale.train_messages)
    store = TemplateStore().fit(train)
    kwargs = dict(
        vocabulary_capacity=scale.vocabulary_capacity,
        window=scale.window,
        hidden=(scale.hidden, scale.hidden),
        id_dim=16,
        epochs=2,
        oversample_rounds=0,
        seed=3,
    )
    f64 = LSTMAnomalyDetector(store, **kwargs).fit(train)
    f32 = LSTMAnomalyDetector(store, dtype=np.float32, **kwargs)
    f32.model.set_weights(f64.model.get_weights())
    f32._fitted = True
    return f64, f32


def _time_legacy(
    detector: LSTMAnomalyDetector,
    warm: List[SyslogMessage],
    timed: List[SyslogMessage],
    repeats: int,
) -> float:
    """Best-of wall time for the per-message seed path."""
    best = float("inf")
    for _ in range(repeats):
        scorer = legacy.LegacyOnlineScorer(detector)
        for message in warm:
            scorer.observe(message)
        start = time.perf_counter()
        for message in timed:
            scorer.observe(message)
        best = min(best, time.perf_counter() - start)
    return best


def _time_stream(
    detector: LSTMAnomalyDetector,
    warm: List[SyslogMessage],
    timed: List[SyslogMessage],
    repeats: int,
    tick_size: int,
) -> float:
    """Best-of wall time for micro-batched ring-buffer scoring."""
    best = float("inf")
    for _ in range(repeats):
        scorer = StreamScorer(detector)
        scorer.observe_batch(warm)
        start = time.perf_counter()
        for index in range(0, len(timed), tick_size):
            scorer.observe_batch(timed[index:index + tick_size])
        best = min(best, time.perf_counter() - start)
    return best


def bench_devices(
    scale: StreamScale,
    n_devices: int,
    f64: LSTMAnomalyDetector,
    f32: LSTMAnomalyDetector,
) -> Dict[str, float]:
    """One sweep point: all three scorers on the same fleet stream."""
    warmup = n_devices * (scale.window + 2)
    stream = fleet_stream(n_devices, warmup + scale.timed_messages)
    warm, timed = stream[:warmup], stream[warmup:]
    legacy_timed = timed[: scale.legacy_cap]

    legacy_s = _time_legacy(f64, warm, legacy_timed, scale.repeats)
    f64_s = _time_stream(
        f64, warm, timed, scale.repeats, scale.tick_size
    )
    f32_s = _time_stream(
        f32, warm, timed, scale.repeats, scale.tick_size
    )
    legacy_rate = len(legacy_timed) / legacy_s
    f64_rate = len(timed) / f64_s
    f32_rate = len(timed) / f32_s
    return {
        "devices": n_devices,
        "timed_messages": len(timed),
        "legacy_timed_messages": len(legacy_timed),
        "legacy_msgs_per_s": legacy_rate,
        "stream_f64_msgs_per_s": f64_rate,
        "stream_f32_msgs_per_s": f32_rate,
        "speedup_f64": f64_rate / legacy_rate,
        "speedup_f32": f32_rate / legacy_rate,
    }


def bench_telemetry_overhead(
    scale: StreamScale, f64: LSTMAnomalyDetector
) -> Dict[str, float]:
    """Streaming cost of live metrics vs the no-op registry.

    Same tick-drain as the sweep, largest device count.  The two
    sides are interleaved (null, live, null, live, ...) and each takes
    its best-of, so slow thermal/load drift over the benchmark's run
    cancels out instead of being billed to whichever side ran last;
    the perf gate pins the overhead fraction at under 3%.
    """
    n_devices = max(scale.device_counts)
    warmup = n_devices * (scale.window + 2)
    stream = fleet_stream(n_devices, warmup + scale.timed_messages)
    warm, timed = stream[:warmup], stream[warmup:]
    repeats = max(scale.repeats, 3)
    null_s = live_s = float("inf")
    for _ in range(repeats):
        with telemetry.use(telemetry.NullRegistry()):
            null_s = min(
                null_s,
                _time_stream(f64, warm, timed, 1, scale.tick_size),
            )
        with telemetry.use(telemetry.MetricsRegistry()):
            live_s = min(
                live_s,
                _time_stream(f64, warm, timed, 1, scale.tick_size),
            )
    return {
        "devices": n_devices,
        "timed_messages": len(timed),
        "null_registry_s": null_s,
        "live_registry_s": live_s,
        "overhead_fraction": live_s / null_s - 1.0,
    }


def run(scale_name: str = "default") -> Dict:
    """Run the device-count sweep at the named scale."""
    scale = SCALES[scale_name]
    f64, f32 = build_detectors(scale)
    sweep = [
        bench_devices(scale, n_devices, f64, f32)
        for n_devices in scale.device_counts
    ]
    overhead = bench_telemetry_overhead(scale, f64)
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "scale": scale.name,
        "benchmarks": {
            "streaming_scoring": {
                "window": scale.window,
                "hidden": scale.hidden,
                "tick_size": scale.tick_size,
                "device_sweep": sweep,
            },
            "telemetry_overhead": overhead,
        },
    }
