#!/usr/bin/env python
"""Run the hot-path microbenchmarks and append to BENCH_hotpath.json.

Usage::

    PYTHONPATH=src python benchmarks/perf/run.py                # default scale
    PYTHONPATH=src python benchmarks/perf/run.py --scale reduced  # <60 s

Each invocation appends one run record — timestamped, with before
(frozen legacy implementations) and after (live code) numbers — to
``BENCH_hotpath.json`` at the repository root, building the
performance trajectory later PRs must beat.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

HERE = pathlib.Path(__file__).resolve().parent
ROOT = HERE.parent.parent

# Make `import legacy/hotpath` and `import repro` work regardless of
# the caller's cwd/PYTHONPATH.
sys.path.insert(0, str(HERE))
sys.path.insert(0, str(ROOT / "src"))

RESULTS_PATH = ROOT / "BENCH_hotpath.json"


def load_payload(path: pathlib.Path) -> dict:
    """Read and validate the trajectory file (before the slow run)."""
    payload = {}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            raise SystemExit(
                f"{path} is not valid JSON ({error}); move it aside "
                "or pass a different --output"
            )
    if not isinstance(payload, dict) or not isinstance(
        payload.get("runs", []), list
    ):
        raise SystemExit(
            f"{path} does not look like a benchmark trajectory "
            '(expected {"runs": [...]}); move it aside or pass a '
            "different --output"
        )
    return payload


def append_record(record: dict, path: pathlib.Path = RESULTS_PATH) -> dict:
    """Append one run record to the JSON trajectory file."""
    payload = load_payload(path)
    payload.setdefault("runs", []).append(record)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        choices=("default", "reduced"),
        default="default",
        help="benchmark operating point (reduced finishes in <60 s)",
    )
    parser.add_argument(
        "--output",
        default=str(RESULTS_PATH),
        help="JSON trajectory file to append to",
    )
    args = parser.parse_args(argv)
    output = pathlib.Path(args.output)
    load_payload(output)  # reject a bad trajectory file up front

    import hotpath

    record = hotpath.run(args.scale)
    append_record(record, output)

    bench = record["benchmarks"]
    lstm = bench["lstm_step_throughput"]
    template = bench["template_transform"]
    fit = bench["detector_fit_score"]
    print(f"scale: {record['scale']}")
    print(
        f"lstm fwd+bwd:  {lstm['before_steps_per_s']:>12.0f} -> "
        f"{lstm['after_steps_per_s']:>12.0f} steps/s "
        f"({lstm['speedup']:.2f}x)"
    )
    print(
        f"transform:     {template['before_msgs_per_s']:>12.0f} -> "
        f"{template['after_msgs_per_s']:>12.0f} msgs/s "
        f"({template['speedup']:.2f}x, "
        f"hit rate {template['hit_rate']:.3f})"
    )
    print(
        f"detector fit:  {fit['before_fit_s']:>11.2f}s -> "
        f"{fit['after_fit_s']:>11.2f}s ({fit['fit_speedup']:.2f}x)"
    )
    print(
        f"detector score:{fit['before_score_s']:>11.2f}s -> "
        f"{fit['after_score_s']:>11.2f}s ({fit['score_speedup']:.2f}x)"
    )
    print(f"appended to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
