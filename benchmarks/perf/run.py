#!/usr/bin/env python
"""Run a named benchmark suite and append to its trajectory file.

Usage::

    PYTHONPATH=src python benchmarks/perf/run.py                  # hotpath
    PYTHONPATH=src python benchmarks/perf/run.py streaming
    PYTHONPATH=src python benchmarks/perf/run.py hotpath --scale reduced

Suites:

* ``hotpath`` — training/scoring microbenchmarks (frozen legacy vs
  live fast path), appended to ``BENCH_hotpath.json``;
* ``streaming`` — online-monitor device-count sweep (per-message
  legacy vs micro-batched :class:`StreamScorer`), appended to
  ``BENCH_streaming.json``;
* ``runtime`` — durable-service costs (WAL-on vs WAL-off ingest,
  checkpoint write/restore latency), appended to
  ``BENCH_runtime.json``;
* ``quant`` — opt-in int8 inference vs the float32 fast path
  (throughput and decision agreement), appended to
  ``BENCH_quant.json``;
* ``fleet`` — sharded fleet runtime: shards x devices aggregate
  throughput sweep plus the kill-one-shard replay drill, appended
  to ``BENCH_fleet.json``;
* ``adapt`` — closed-loop adaptation costs (fine-tune latency, hot
  swap pause, ingest throughput while the background worker trains),
  appended to ``BENCH_adapt.json``;
* ``rca`` — root-cause attribution quality on the correlated-outage
  scenario (macro-F1, element accuracy) plus the per-tick cost of
  the streaming engine, appended to ``BENCH_rca.json``.

Each invocation appends one timestamped run record to the suite's
trajectory file at the repository root, building the performance
history later PRs must beat.  ``--keep N`` (default 20) prunes the
oldest runs past N so trajectory files stay bounded.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import traceback

HERE = pathlib.Path(__file__).resolve().parent
ROOT = HERE.parent.parent

# Make `import legacy/hotpath/streaming` and `import repro` work
# regardless of the caller's cwd/PYTHONPATH.
sys.path.insert(0, str(HERE))
sys.path.insert(0, str(ROOT / "src"))

#: Registered suites: name -> trajectory path / printer / runner.
#: Populate via :func:`register_suite` only — direct dict writes skip
#: the duplicate-name check that keeps one suite from silently
#: shadowing another's trajectory file.
SUITE_OUTPUTS = {}
_PRINTERS = {}
_RUNNERS = {}

#: Default trajectory depth: ``--keep 0`` disables pruning.
DEFAULT_KEEP = 20

# Kept for backwards compatibility with older tooling/tests.
RESULTS_PATH = ROOT / "BENCH_hotpath.json"


def register_suite(name, printer, runner):
    """Register one benchmark suite under a unique name.

    The trajectory file is derived (``BENCH_<name>.json`` at the repo
    root) so the name/printer/output triple can never drift apart.
    Raises ``ValueError`` on a duplicate name instead of silently
    shadowing the earlier registration.
    """
    if name in SUITE_OUTPUTS:
        raise ValueError(
            f"duplicate benchmark suite {name!r}; already writes to "
            f"{SUITE_OUTPUTS[name]}"
        )
    SUITE_OUTPUTS[name] = ROOT / f"BENCH_{name}.json"
    _PRINTERS[name] = printer
    _RUNNERS[name] = runner


def _import_runner(module_name):
    """A runner that imports the suite module lazily (suites are slow
    to import; only the requested one should load)."""

    def runner(scale):
        module = __import__(module_name)
        return module.run(scale)

    return runner


def load_payload(path: pathlib.Path) -> dict:
    """Read and validate the trajectory file (before the slow run)."""
    payload = {}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            raise SystemExit(
                f"{path} is not valid JSON ({error}); move it aside "
                "or pass a different --output"
            ) from error
    if not isinstance(payload, dict) or not isinstance(
        payload.get("runs", []), list
    ):
        raise SystemExit(
            f"{path} does not look like a benchmark trajectory "
            '(expected {"runs": [...]}); move it aside or pass a '
            "different --output"
        )
    return payload


def append_record(
    record: dict,
    path: pathlib.Path = RESULTS_PATH,
    keep: int = 0,
) -> dict:
    """Append one run record to the JSON trajectory file.

    ``keep > 0`` prunes the trajectory to its newest ``keep`` runs
    (including the one just appended); 0 keeps everything.
    """
    if keep < 0:
        raise ValueError(f"keep must be >= 0, got {keep}")
    payload = load_payload(path)
    payload.setdefault("runs", []).append(record)
    if keep:
        payload["runs"] = payload["runs"][-keep:]
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def _print_hotpath(record: dict) -> None:
    bench = record["benchmarks"]
    lstm = bench["lstm_step_throughput"]
    template = bench["template_transform"]
    fit = bench["detector_fit_score"]
    print(f"scale: {record['scale']}")
    print(
        f"lstm fwd+bwd:  {lstm['before_steps_per_s']:>12.0f} -> "
        f"{lstm['after_steps_per_s']:>12.0f} steps/s "
        f"({lstm['speedup']:.2f}x)"
    )
    print(
        f"transform:     {template['before_msgs_per_s']:>12.0f} -> "
        f"{template['after_msgs_per_s']:>12.0f} msgs/s "
        f"({template['speedup']:.2f}x, "
        f"hit rate {template['hit_rate']:.3f})"
    )
    print(
        f"detector fit:  {fit['before_fit_s']:>11.2f}s -> "
        f"{fit['after_fit_s']:>11.2f}s ({fit['fit_speedup']:.2f}x)"
    )
    print(
        f"detector score:{fit['before_score_s']:>11.2f}s -> "
        f"{fit['after_score_s']:>11.2f}s ({fit['score_speedup']:.2f}x)"
    )


def _print_streaming(record: dict) -> None:
    streaming = record["benchmarks"]["streaming_scoring"]
    print(
        f"scale: {record['scale']}  (window {streaming['window']}, "
        f"hidden {streaming['hidden']}, tick {streaming['tick_size']})"
    )
    for point in streaming["device_sweep"]:
        print(
            f"devices {point['devices']:>4d}: "
            f"legacy {point['legacy_msgs_per_s']:>9.0f} msgs/s, "
            f"stream f64 {point['stream_f64_msgs_per_s']:>9.0f} "
            f"({point['speedup_f64']:.2f}x), "
            f"f32 {point['stream_f32_msgs_per_s']:>9.0f} "
            f"({point['speedup_f32']:.2f}x)"
        )


def _print_runtime(record: dict) -> None:
    wal = record["benchmarks"]["wal_ingest"]
    checkpoint = record["benchmarks"]["checkpoint"]
    print(
        f"scale: {record['scale']}  ({wal['devices']} devices, "
        f"tick {wal['tick_size']})"
    )
    print(
        f"ingest: WAL off {wal['wal_off_msgs_per_s']:>9.0f} msgs/s, "
        f"WAL on {wal['wal_on_msgs_per_s']:>9.0f} msgs/s "
        f"(overhead {wal['overhead_fraction']:.2%})"
    )
    print(
        f"checkpoint: {checkpoint['checkpoint_bytes']:,} bytes, "
        f"write {checkpoint['write_s'] * 1e3:.1f} ms, "
        f"restore {checkpoint['restore_s'] * 1e3:.1f} ms"
    )


def _print_quant(record: dict) -> None:
    quant = record["benchmarks"]["quantized_inference"]
    print(
        f"scale: {record['scale']}  ({quant['devices']} devices, "
        f"tick {quant['tick_size']})"
    )
    print(
        f"inference: f32 {quant['f32_msgs_per_s']:>9.0f} msgs/s, "
        f"int8 {quant['int8_msgs_per_s']:>9.0f} msgs/s "
        f"({quant['speedup_vs_f32']:.2f}x)"
    )
    print(
        f"decisions: {quant['decision_agreement']:.4f} agreement "
        f"vs f64 over {quant['n_decisions']} messages "
        f"(threshold p{quant['threshold_quantile'] * 100:.0f})"
    )


def _print_fleet(record: dict) -> None:
    fleet = record["benchmarks"]["fleet_scaling"]
    drill = record["benchmarks"]["kill_drill"]
    print(
        f"scale: {record['scale']}  (tick {fleet['tick_size']}, "
        f"host cores {fleet['host_cores']})"
    )
    for point in fleet["sweep"]:
        print(
            f"devices {point['devices']:>6d} x "
            f"{point['shards']} shard(s): "
            f"{point['msgs_per_s']:>9.0f} msgs/s "
            f"({point['scaling_vs_1shard']:.2f}x vs 1 shard)"
        )
    print(
        f"kill drill: shard {drill['killed_shard']} killed after "
        f"{drill['kill_after_ticks']} ticks, "
        f"{drill['replayed_ticks']} replayed; "
        f"survivors stalled: {drill['survivors_stalled']}, "
        f"score parity: {drill['score_parity']}, "
        f"dropped: {drill['dropped_rows']}, "
        f"double-scored: {drill['double_scored_rows']}"
    )


def _print_adapt(record: dict) -> None:
    tune = record["benchmarks"]["fine_tune"]
    swap = record["benchmarks"]["swap_pause"]
    ingest = record["benchmarks"]["background_ingest"]
    print(f"scale: {record['scale']}")
    print(
        f"fine-tune: {tune['fine_tune_s']:.2f}s over "
        f"{tune['replay_messages']} msgs x {tune['epochs']} epochs, "
        f"publish {tune['publish_s'] * 1e3:.1f} ms"
    )
    print(
        f"swap pause: {swap['pause_s'] * 1e3:.1f} ms "
        f"(swap tick {swap['swap_tick_s'] * 1e3:.1f} ms vs median "
        f"{swap['median_tick_s'] * 1e3:.1f} ms)"
    )
    print(
        f"ingest during training: "
        f"{ingest['tuning_msgs_per_s']:>9.0f} msgs/s vs baseline "
        f"{ingest['baseline_msgs_per_s']:>9.0f} msgs/s "
        f"(dip {ingest['dip_fraction']:.2%} over "
        f"{ingest['tuning_ticks']} ticks)"
    )


def _print_rca(record: dict) -> None:
    attribution = record["benchmarks"]["attribution"]
    overhead = record["benchmarks"]["overhead"]
    print(f"scale: {record['scale']}")
    print(
        f"attribution: macro-F1 {attribution['macro_f1']:.3f} over "
        f"{attribution['n_outages']} outages "
        f"({attribution['n_matched']} matched, "
        f"{attribution['n_spurious']} spurious), element accuracy "
        f"{attribution['element_accuracy']:.2f}, mean attribution "
        f"latency {attribution['mean_attribution_s'] / 3600:.1f} h"
    )
    for kind, f1 in attribution["per_kind_f1"].items():
        print(f"  {kind:>9}: F1 {f1:.3f}")
    print(
        f"overhead: rca tick {overhead['rca_tick_s'] * 1e3:.2f} ms "
        f"vs bare {overhead['bare_tick_s'] * 1e3:.2f} ms "
        f"({overhead['overhead_fraction']:.2%} over "
        f"{overhead['ticks']} ticks, anomaly rate "
        f"{overhead['anomaly_rate']:.2%})"
    )
    storm = record["benchmarks"]["storm"]
    print(
        f"storm: {storm['storm_tick_s'] * 1e3:.2f} ms per "
        f"all-anomalous tick ({storm['per_anomaly_us']:.1f} us "
        f"per anomaly)"
    )


def run_suite(suite: str, scale: str) -> dict:
    """Import and execute one suite, returning its run record."""
    try:
        runner = _RUNNERS[suite]
    except KeyError:
        raise ValueError(f"unknown suite {suite!r}") from None
    return runner(scale)


register_suite("hotpath", _print_hotpath, _import_runner("hotpath"))
register_suite(
    "streaming", _print_streaming, _import_runner("streaming")
)
register_suite("runtime", _print_runtime, _import_runner("runtime"))
register_suite("quant", _print_quant, _import_runner("quant"))
register_suite("fleet", _print_fleet, _import_runner("fleet"))
register_suite("adapt", _print_adapt, _import_runner("adapt"))
register_suite("rca", _print_rca, _import_runner("rca"))


def validate_record(record: object) -> str:
    """Why ``record`` is not an appendable run record ('' if it is).

    Guards the trajectory file: a suite that returns a malformed
    record (or raises mid-run) must not leave a truncated or
    schema-less entry behind for later regression comparisons.
    """
    if not isinstance(record, dict):
        return f"suite returned {type(record).__name__}, expected dict"
    benchmarks = record.get("benchmarks")
    if not isinstance(benchmarks, dict) or not benchmarks:
        return "record['benchmarks'] missing or empty"
    if not isinstance(record.get("scale"), str):
        return "record['scale'] missing"
    return ""


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "suite",
        nargs="?",
        choices=tuple(SUITE_OUTPUTS),
        default="hotpath",
        help="benchmark suite to run, one of: "
        f"{', '.join(SUITE_OUTPUTS)} (default: hotpath)",
    )
    parser.add_argument(
        "--scale",
        choices=("default", "reduced"),
        default="default",
        help="benchmark operating point (reduced finishes in <60 s)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="JSON trajectory file to append to "
        "(default: the suite's BENCH_<suite>.json)",
    )
    parser.add_argument(
        "--keep",
        type=int,
        default=DEFAULT_KEEP,
        help="newest runs to keep in the trajectory "
        f"(default {DEFAULT_KEEP}; 0 keeps everything)",
    )
    args = parser.parse_args(argv)
    if args.keep < 0:
        parser.error("--keep must be >= 0")
    output = pathlib.Path(args.output or SUITE_OUTPUTS[args.suite])
    load_payload(output)  # reject a bad trajectory file up front

    try:
        record = run_suite(args.suite, args.scale)
    except Exception:
        traceback.print_exc()
        print(
            f"suite {args.suite!r} raised; {output} left untouched",
            file=sys.stderr,
        )
        return 1
    problem = validate_record(record)
    if problem:
        print(
            f"suite {args.suite!r} produced a malformed record "
            f"({problem}); {output} left untouched",
            file=sys.stderr,
        )
        return 1
    append_record(record, output, keep=args.keep)
    _PRINTERS[args.suite](record)
    print(f"appended to {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
