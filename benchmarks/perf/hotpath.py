"""Hot-path microbenchmarks: before/after numbers for the fast path.

Three benchmarks, each timing the frozen pre-optimization reference
(:mod:`legacy`) against the live implementation on identical inputs:

* ``lstm`` — LSTM layer forward+backward throughput (timesteps/s);
* ``template`` — ``TemplateStore.transform`` throughput (messages/s),
  uncached signature-tree walk vs. the memoized match;
* ``fit_score`` — end-to-end ``LSTMAnomalyDetector.fit`` + ``score``
  wall time on a simulated syslog stream.

``run(scale)`` executes all three and returns a JSON-ready record;
``run.py`` appends it to ``BENCH_hotpath.json`` at the repo root so
every later optimization PR has a trajectory to beat.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

import legacy
from repro.core.detector import LSTMAnomalyDetector
from repro.logs.templates import TemplateStore
from repro.nn.lstm import LSTM
from repro.synthesis import FleetSimulator, SimulationConfig


@dataclass(frozen=True)
class Scale:
    """One benchmark operating point.

    The default models the paper's deployment shape in miniature: the
    per-detector message volume dwarfs the (capped) training-sample
    count, so end-to-end ``fit`` is a template-matching + windowing +
    training mix rather than a pure training loop.
    """

    name: str
    lstm_batch: int = 64
    lstm_steps: int = 10
    lstm_features: int = 28
    lstm_hidden: int = 32
    lstm_iters: int = 30
    n_vpes: int = 6
    n_months: int = 1
    rate_per_hour: float = 40.0
    store_fit_messages: int = 6000
    transform_messages: int = 30000
    transform_repeats: int = 1
    fit_samples: int = 8000
    fit_epochs: int = 2
    fit_window: int = 10
    fit_hidden: int = 24


SCALES: Dict[str, Scale] = {
    # The reference operating point BENCH_hotpath.json records.
    "default": Scale(name="default"),
    # Small enough for CI / the perf-marked pytest smoke run (<60 s
    # including the slow legacy side).
    "reduced": Scale(
        name="reduced",
        lstm_iters=8,
        n_vpes=2,
        rate_per_hour=12.0,
        store_fit_messages=2000,
        transform_messages=6000,
        fit_samples=1500,
        fit_epochs=1,
        fit_window=8,
        fit_hidden=12,
    ),
}


def _best_of(fn: Callable[[], None], repeats: int = 3) -> float:
    """Wall time of ``fn`` — best of ``repeats`` to damp scheduler noise."""
    times: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def _speedup(before: float, after: float) -> float:
    return before / after if after > 0 else float("inf")


def simulate_messages(scale: Scale):
    """One vPE-merged normal message stream from the fleet simulator."""
    config = SimulationConfig(
        n_vpes=scale.n_vpes,
        n_months=scale.n_months,
        seed=23,
        base_rate_per_hour=scale.rate_per_hour,
        update_month=None,
        n_fleet_events=0,
    )
    dataset = FleetSimulator(config).run()
    messages = dataset.aggregate_messages(normal_only=True)
    streams = [
        dataset.normal_messages(vpe, dataset.start, dataset.end, 0.0)
        for vpe in dataset.vpe_names
    ]
    return messages, streams


def bench_lstm(scale: Scale) -> Dict[str, float]:
    """Forward+backward timestep throughput, legacy vs fused."""
    rng = np.random.default_rng(5)
    x = rng.standard_normal(
        (scale.lstm_batch, scale.lstm_steps, scale.lstm_features)
    )
    grad = rng.standard_normal((scale.lstm_batch, scale.lstm_hidden))
    total_steps = scale.lstm_iters * scale.lstm_batch * scale.lstm_steps

    def make(layer_cls):
        layer = layer_cls(scale.lstm_hidden)
        layer.build(
            (scale.lstm_steps, scale.lstm_features),
            np.random.default_rng(9),
        )
        return layer

    def loop(layer):
        def body():
            for _ in range(scale.lstm_iters):
                layer.zero_grads()
                layer.forward(x)
                layer.backward(grad)
        return body

    before = _best_of(loop(make(legacy.LegacyLSTM)))
    after = _best_of(loop(make(LSTM)))
    return {
        "before_steps_per_s": total_steps / before,
        "after_steps_per_s": total_steps / after,
        "before_s": before,
        "after_s": after,
        "speedup": _speedup(before, after),
    }


def bench_template(scale: Scale, messages) -> Dict[str, float]:
    """``TemplateStore.transform`` throughput, uncached vs memoized."""
    store = TemplateStore()
    store.fit(messages[: scale.store_fit_messages])
    stream = messages[: scale.transform_messages]
    cached = store
    uncached = legacy.uncached_store(store)

    def loop(target):
        def body():
            for _ in range(scale.transform_repeats):
                target.transform(stream)
        return body

    # Warm the memo once so the timed cached pass measures the steady
    # state (hit rates in deployment are ~99%: router logs repeat).
    cached.transform(stream)
    before = _best_of(loop(uncached))
    after = _best_of(loop(cached))
    n = len(stream) * scale.transform_repeats
    hits, misses = cached.memo_stats
    return {
        "before_msgs_per_s": n / before,
        "after_msgs_per_s": n / after,
        "before_s": before,
        "after_s": after,
        "hit_rate": hits / max(hits + misses, 1),
        "speedup": _speedup(before, after),
    }


def bench_fit_score(scale: Scale, messages, streams) -> Dict[str, float]:
    """End-to-end detector ``fit`` + ``score``, legacy stack vs live.

    Three sides: ``before`` is the frozen seed stack (float64, the
    only precision it had); ``after`` is the live fast path (fused
    kernels, memoized matching, ``dtype=float32``); ``after_f64`` is
    the live stack at the bitwise-reproducible float64 default.  The
    headline speedups compare before to the fast path.
    """
    store = TemplateStore()
    store.fit(messages[: scale.store_fit_messages])
    kwargs = dict(
        vocabulary_capacity=256,
        window=scale.fit_window,
        hidden=(scale.fit_hidden, scale.fit_hidden),
        id_dim=16,
        epochs=scale.fit_epochs,
        oversample_rounds=1,
        max_train_samples=scale.fit_samples,
        seed=3,
    )
    score_stream = streams[0]

    results = {}
    sides = (
        ("before", lambda: legacy.legacy_detector(store, **kwargs)),
        (
            "after",
            lambda: LSTMAnomalyDetector(
                store, dtype=np.float32, **kwargs
            ),
        ),
        ("after_f64", lambda: LSTMAnomalyDetector(store, **kwargs)),
    )
    # Interleave the sides across repeats (fresh detector each time)
    # so scheduler/thermal drift hits all of them equally.
    for _ in range(2):
        for side, factory in sides:
            detector = factory()
            start = time.perf_counter()
            detector.fit_streams(streams)
            fit_s = time.perf_counter() - start
            start = time.perf_counter()
            scored = detector.score(score_stream)
            score_s = time.perf_counter() - start
            results[f"{side}_fit_s"] = min(
                results.get(f"{side}_fit_s", fit_s), fit_s
            )
            results[f"{side}_score_s"] = min(
                results.get(f"{side}_score_s", score_s), score_s
            )
            results[f"{side}_scored_messages"] = int(len(scored))
    results["fit_speedup"] = _speedup(
        results["before_fit_s"], results["after_fit_s"]
    )
    results["score_speedup"] = _speedup(
        results["before_score_s"], results["after_score_s"]
    )
    results["fit_speedup_f64"] = _speedup(
        results["before_fit_s"], results["after_f64_fit_s"]
    )
    results["score_speedup_f64"] = _speedup(
        results["before_score_s"], results["after_f64_score_s"]
    )
    return results


def run(scale_name: str = "default") -> Dict:
    """Run every microbenchmark at the named scale."""
    scale = SCALES[scale_name]
    messages, streams = simulate_messages(scale)
    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "scale": scale.name,
        "benchmarks": {
            "lstm_step_throughput": bench_lstm(scale),
            "template_transform": bench_template(scale, messages),
            "detector_fit_score": bench_fit_score(
                scale, messages, streams
            ),
        },
    }
    return record
