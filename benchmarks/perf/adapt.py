"""Closed-loop adaptation benchmarks: fine-tune, swap, ingest dip.

Three costs decide whether ``serve --auto-adapt`` is deployable:

* ``fine_tune`` — wall time of the transfer fine-tune over the replay
  window plus the artifact-store publish (the end-to-end latency from
  trigger to a swappable release);
* ``swap_pause`` — how much longer the boundary tick that applies a
  journaled hot swap takes than an ordinary tick (the only ingest
  pause the swap introduces);
* ``background_ingest`` — tick throughput while a background
  fine-tune worker is actually training, against the same service's
  pre-trigger throughput.  The acceptance gate pins the dip at
  < 20%: adaptation must not stall ingest.

``run(scale)`` returns a JSON-ready record; ``run.py adapt`` appends
it to ``BENCH_adapt.json`` at the repo root.
"""

from __future__ import annotations

import statistics
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Tuple

import numpy as np

from repro import telemetry
from repro.core.adaptation import transfer_adapt
from repro.core.detector import LSTMAnomalyDetector
from repro.logs.message import Severity, SyslogMessage
from repro.logs.templates import TemplateStore
from repro.runtime.adapt import (
    AdaptConfig,
    AdaptationController,
    PHASE_TUNING,
    PHASE_WATCHING,
)
from repro.runtime.service import (
    MonitorService,
    ServiceConfig,
    detector_from_release,
    stage_release,
)
from repro.runtime.store import ArtifactStore

NORMAL_TEXTS = [
    f"{name}: routine phase {i} complete"
    for i, name in enumerate(
        ["ALPHA", "BRAVO", "CHARLIE", "DELTA",
         "EPSILON", "ZETA", "ETA", "THETA"]
    )
]
DRIFT_TEXTS = [
    f"{name}: updated daemon event {i}"
    for i, name in enumerate(
        ["IOTA", "KAPPA", "LAMBDA", "MU",
         "NU", "XI", "OMICRON", "PI"]
    )
]

START = 1_500_000_000.0


@dataclass(frozen=True)
class AdaptScale:
    """One adaptation-benchmark operating point."""

    name: str
    train_messages: int
    tick_size: int
    window: int
    hidden: Tuple[int, int]
    replay_ticks: int
    epochs: int
    devices: int = 8
    baseline_ticks: int = 24


SCALES: Dict[str, AdaptScale] = {
    # The reference point BENCH_adapt.json records.
    "default": AdaptScale(
        name="default",
        train_messages=3000,
        tick_size=256,
        window=8,
        hidden=(16, 16),
        replay_ticks=8,
        epochs=3,
    ),
    # CI / perf-marked pytest smoke.
    "reduced": AdaptScale(
        name="reduced",
        train_messages=1200,
        tick_size=128,
        window=4,
        hidden=(12, 12),
        replay_ticks=6,
        epochs=2,
        baseline_ticks=12,
    ),
}


def stream(
    texts: List[str],
    n: int,
    start: float,
    devices: int,
) -> List[SyslogMessage]:
    return [
        SyslogMessage(
            timestamp=start + i * 2.0,
            host=f"vpe{i % devices:02d}",
            process="rpd",
            text=texts[i % len(texts)],
            severity=Severity.INFO,
        )
        for i in range(n)
    ]


def build_detector(
    scale: AdaptScale,
) -> Tuple[LSTMAnomalyDetector, float]:
    """A detector fitted on both mixes (drift stays count-based)."""
    normal = stream(NORMAL_TEXTS, scale.train_messages, START, 1)
    drifted = stream(
        DRIFT_TEXTS,
        scale.train_messages // 2,
        START + 1e6,
        1,
    )
    store = TemplateStore().fit(normal + drifted)
    detector = LSTMAnomalyDetector(
        store,
        vocabulary_capacity=32,
        window=scale.window,
        hidden=scale.hidden,
        id_dim=8,
        epochs=3,
        oversample_rounds=0,
        seed=0,
    ).fit(normal + drifted)
    scores = detector.score(normal[: scale.train_messages // 2]).scores
    threshold = float(np.nanquantile(scores, 0.999)) + 0.5
    return detector, threshold


def ticks_of(
    texts: List[str],
    n_ticks: int,
    start: float,
    scale: AdaptScale,
) -> List[List[SyslogMessage]]:
    feed = stream(
        texts, n_ticks * scale.tick_size, start, scale.devices
    )
    return [
        feed[i:i + scale.tick_size]
        for i in range(0, len(feed), scale.tick_size)
    ]


def bench_fine_tune(
    scale: AdaptScale,
    detector: LSTMAnomalyDetector,
    threshold: float,
) -> Dict[str, float]:
    """Trigger-to-release latency: fine-tune + publish."""
    replay = stream(
        DRIFT_TEXTS,
        scale.replay_ticks * scale.tick_size,
        START + 2e6,
        scale.devices,
    )
    start = time.perf_counter()
    student = transfer_adapt(detector, replay, epochs=scale.epochs)
    fine_tune_s = time.perf_counter() - start
    with tempfile.TemporaryDirectory() as tmp:
        store = ArtifactStore(Path(tmp), keep_releases=4)
        start = time.perf_counter()
        stage_release(store, student, threshold)
        publish_s = time.perf_counter() - start
    return {
        "replay_messages": len(replay),
        "epochs": scale.epochs,
        "fine_tune_s": fine_tune_s,
        "publish_s": publish_s,
        "total_s": fine_tune_s + publish_s,
        "train_msgs_per_s": len(replay) * scale.epochs / fine_tune_s,
    }


def _open_service(
    tmp: str,
    detector: LSTMAnomalyDetector,
    threshold: float,
) -> MonitorService:
    config = ServiceConfig(
        data_dir=Path(tmp) / "svc", checkpoint_every=1_000_000
    )
    store = ArtifactStore(
        config.store_dir, keep_releases=config.keep_releases
    )
    stage_release(store, detector, threshold)
    service = MonitorService.open(config)
    service.recover()
    return service


def bench_swap_pause(
    scale: AdaptScale,
    detector: LSTMAnomalyDetector,
    threshold: float,
) -> Dict[str, float]:
    """Extra wall time of the tick boundary that applies a hot swap."""
    with tempfile.TemporaryDirectory() as tmp:
        service = _open_service(tmp, detector, threshold)
        ticks = ticks_of(
            NORMAL_TEXTS, scale.baseline_ticks + 1, START + 3e6, scale
        )
        plain: List[float] = []
        for tick in ticks[:-1]:
            start = time.perf_counter()
            service.process_tick(tick)
            plain.append(time.perf_counter() - start)
        variant, _ = detector_from_release(service.store, 1)
        variant.model.set_weights(
            {
                name: w * 1.01
                for name, w in variant.model.get_weights().items()
            }
        )
        release = stage_release(
            service.store, variant, threshold
        )
        service.request_swap(release.release_id)
        start = time.perf_counter()
        result = service.process_tick(ticks[-1])
        swap_tick_s = time.perf_counter() - start
        assert result.swapped_release == release.release_id
        service.close()
    median_tick_s = statistics.median(plain[2:])  # skip warmup
    return {
        "tick_size": scale.tick_size,
        "median_tick_s": median_tick_s,
        "swap_tick_s": swap_tick_s,
        "pause_s": max(0.0, swap_tick_s - median_tick_s),
    }


def bench_background_ingest(
    scale: AdaptScale,
    detector: LSTMAnomalyDetector,
    threshold: float,
) -> Dict[str, float]:
    """Ingest throughput while the fine-tune worker is training.

    One service, one stream: normal traffic establishes the baseline
    tick rate and the drift reference, drifted traffic trips the
    trigger, and every tick served while the controller sits in
    ``tuning`` (worker process alive) is timed separately.
    """
    adapt_config = AdaptConfig(
        drift_threshold=0.5,
        drift_checks=2,
        check_every_ticks=1,
        reference_ticks=4,
        recent_ticks=4,
        replay_ticks=scale.replay_ticks,
        probation_ticks=8,
        epochs=scale.epochs,
        cooldown_ticks=8,
        inline=False,
    )
    with tempfile.TemporaryDirectory() as tmp:
        service = _open_service(tmp, detector, threshold)
        service.controller = AdaptationController(adapt_config)
        controller = service.controller
        normal = ticks_of(
            NORMAL_TEXTS,
            scale.baseline_ticks + adapt_config.reference_ticks
            + adapt_config.recent_ticks,
            START + 4e6,
            scale,
        )
        # enough drifted ticks to trigger and outlast the fine-tune
        drifted = ticks_of(
            DRIFT_TEXTS, 400, START + 5e6, scale
        )
        baseline: List[float] = []
        for tick in normal:
            start = time.perf_counter()
            service.process_tick(tick)
            if controller.phase == PHASE_WATCHING:
                baseline.append(time.perf_counter() - start)
        tuning: List[float] = []
        tuning_ticks = 0
        for tick in drifted:
            was_tuning = controller.phase == PHASE_TUNING
            start = time.perf_counter()
            service.process_tick(tick)
            elapsed = time.perf_counter() - start
            if was_tuning and controller.phase == PHASE_TUNING:
                tuning.append(elapsed)
                tuning_ticks += 1
            if controller.swaps:
                break
        swaps = controller.swaps
        service.close()
    baseline_med = statistics.median(baseline[2:])
    tuning_med = (
        statistics.median(tuning) if tuning else baseline_med
    )
    baseline_rate = scale.tick_size / baseline_med
    tuning_rate = scale.tick_size / tuning_med
    return {
        "tick_size": scale.tick_size,
        "baseline_ticks": len(baseline),
        "tuning_ticks": tuning_ticks,
        "swaps": swaps,
        "baseline_msgs_per_s": baseline_rate,
        "tuning_msgs_per_s": tuning_rate,
        "dip_fraction": max(0.0, 1.0 - tuning_rate / baseline_rate),
    }


def run(scale_name: str = "default") -> Dict:
    """Run the adaptation bench at the named scale."""
    scale = SCALES[scale_name]
    with telemetry.use(telemetry.MetricsRegistry()):
        detector, threshold = build_detector(scale)
        fine_tune = bench_fine_tune(scale, detector, threshold)
        swap = bench_swap_pause(scale, detector, threshold)
        background = bench_background_ingest(
            scale, detector, threshold
        )
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "scale": scale.name,
        "benchmarks": {
            "fine_tune": fine_tune,
            "swap_pause": swap,
            "background_ingest": background,
        },
    }
