"""Sharded-fleet benchmarks: aggregate throughput, kill-shard drill.

Two questions, one suite:

* what does sharding buy?  The same round-robin fleet stream is
  drained through :class:`~repro.runtime.fleet.FleetCoordinator`
  topologies of 1, 2 and 4 shards at each device count, and the
  aggregate acknowledged throughput (messages / wall seconds, spawn
  and bootstrap excluded, coordinator routing included) is recorded
  together with its scaling ratio against the 1-shard fleet at the
  same device count.  Shards are OS processes, so the ratio is
  hardware-dependent: on an N-core host the expected scaling at 4
  shards is ~min(4, N) x, and the record therefore carries
  ``host_cores`` so trajectory points from different machines stay
  comparable (a single-core host pins ~1x by construction — the
  perf gate in ``tests/perf/test_fleet_bench.py`` reads
  ``host_cores`` and asserts the bound the hardware can express);
* does a shard death hurt the rest?  The kill drill crashes the
  busiest shard mid-drain, asserts every surviving shard finished its
  backlog, restarts the dead shard (WAL replay), finishes the feed
  and diffs the per-shard score CSVs against an uninterrupted run's:
  parity must be exact (``repr`` float64 rows), with zero dropped and
  zero double-scored rows.

``run(scale)`` returns a JSON-ready record; ``run.py fleet`` appends
it to ``BENCH_fleet.json`` at the repo root.
"""

from __future__ import annotations

import os
import pathlib
import shutil
import tempfile
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import streaming
from repro import telemetry
from repro.core.detector import LSTMAnomalyDetector
from repro.runtime.fleet import (
    FleetConfig,
    FleetCoordinator,
    bootstrap_fleet,
)


@dataclass(frozen=True)
class FleetScale:
    """One fleet-benchmark operating point."""

    name: str
    shard_counts: Tuple[int, ...]
    device_counts: Tuple[int, ...]
    timed_messages: int
    tick_size: int = 256
    max_inflight: int = 4
    drill_shards: int = 4
    drill_devices: int = 1024
    drill_messages: int = 8192
    drill_kill_after: int = 6
    drill_tick_size: int = 64
    drill_checkpoint_every: int = 5


SCALES: Dict[str, FleetScale] = {
    # The reference sweep BENCH_fleet.json records: up to the 10k+
    # device regime the ROADMAP's million-user target passes through.
    "default": FleetScale(
        name="default",
        shard_counts=(1, 2, 4),
        device_counts=(1024, 4096, 10240),
        timed_messages=49152,
        drill_devices=4096,
    ),
    # CI / perf-marked pytest smoke (<60 s): one sub-4k and one 4k+
    # device point, 1-vs-4 shards.
    "reduced": FleetScale(
        name="reduced",
        shard_counts=(1, 4),
        device_counts=(512, 4096),
        timed_messages=12288,
        drill_devices=512,
        drill_messages=4096,
    ),
}


def host_cores() -> int:
    """CPU cores available to this process (scaling context)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def build_detector(scale: FleetScale) -> LSTMAnomalyDetector:
    """A fitted float64 detector on the shared streaming corpus."""
    f64, _ = streaming.build_detectors(
        streaming.SCALES[
            "reduced" if scale.name == "reduced" else "default"
        ]
    )
    return f64


def _drain_once(
    config: FleetConfig,
    detector: LSTMAnomalyDetector,
    feed,
    tick_size: int,
) -> Tuple[float, float, int]:
    """Bootstrap + spawn a fleet, drain ``feed`` once, tear down.

    Returns ``(wall_seconds, drain_seconds, messages)`` where wall
    time wraps the whole drain call (routing included) and drain time
    is the coordinator's own post-partition clock.
    """
    bootstrap_fleet(config, detector, float("inf"))
    registry = telemetry.MetricsRegistry()
    with telemetry.use(registry):
        coordinator = FleetCoordinator.open(config)
        try:
            start = time.perf_counter()
            report = coordinator.drain(feed, tick_size=tick_size)
            wall = time.perf_counter() - start
        finally:
            coordinator.close()
    if report.dead_shards:
        raise RuntimeError(
            f"shards died during a timing drain: {report.dead_shards}"
        )
    return wall, report.seconds, report.messages


def bench_scaling(scale: FleetScale, root: pathlib.Path) -> Dict:
    """The shards x devices aggregate-throughput sweep."""
    detector = build_detector(scale)
    sweep: List[Dict] = []
    for devices in scale.device_counts:
        feed = streaming.fleet_stream(devices, scale.timed_messages)
        base_rate: Optional[float] = None
        for shards in scale.shard_counts:
            config = FleetConfig(
                data_dir=root / f"sweep-d{devices}-s{shards}",
                shards=shards,
                max_inflight=scale.max_inflight,
            )
            wall, drain_s, messages = _drain_once(
                config, detector, feed, scale.tick_size
            )
            rate = messages / wall
            if shards == scale.shard_counts[0] and shards == 1:
                base_rate = rate
            sweep.append(
                {
                    "devices": devices,
                    "shards": shards,
                    "messages": messages,
                    "wall_s": wall,
                    "drain_s": drain_s,
                    "msgs_per_s": rate,
                    "scaling_vs_1shard": (
                        rate / base_rate if base_rate else 1.0
                    ),
                }
            )
    return {
        "tick_size": scale.tick_size,
        "max_inflight": scale.max_inflight,
        "timed_messages": scale.timed_messages,
        "host_cores": host_cores(),
        "sweep": sweep,
    }


def _read_rows(base: pathlib.Path) -> List[str]:
    """All CSV rows across one run's per-shard score files."""
    rows: List[str] = []
    for path in sorted(base.parent.glob(base.name + ".shard*")):
        rows.extend(path.read_text().splitlines())
    return rows


def bench_kill_drill(scale: FleetScale, root: pathlib.Path) -> Dict:
    """Kill the busiest shard mid-drain; prove replay parity.

    The baseline run and the drill run score the same feed through
    the same topology; after the drill's crash, survivor-completion,
    restart and resumed drain, the union of per-shard CSV rows must
    match the baseline's exactly — replayed ticks re-land byte-for-
    byte (``repr`` float64) and collapse like CI's ``sort -u``.
    """
    detector = build_detector(scale)
    feed = streaming.fleet_stream(
        scale.drill_devices, scale.drill_messages
    )

    baseline_cfg = FleetConfig(
        data_dir=root / "drill-baseline",
        shards=scale.drill_shards,
        checkpoint_every=scale.drill_checkpoint_every,
        scores_out=str(root / "drill-baseline.csv"),
    )
    bootstrap_fleet(baseline_cfg, detector, float("inf"))
    with telemetry.use(telemetry.MetricsRegistry()):
        coordinator = FleetCoordinator.open(baseline_cfg)
        try:
            coordinator.drain(feed, tick_size=scale.drill_tick_size)
        finally:
            coordinator.close()
        # Kill the shard carrying the most devices so the drill always
        # crashes a loaded worker (tiny fleets leave shards empty).
        parts = coordinator.partition(feed)
    victim = max(parts, key=lambda shard: len(parts[shard]))

    drill_cfg = FleetConfig(
        data_dir=root / "drill-crash",
        shards=scale.drill_shards,
        checkpoint_every=scale.drill_checkpoint_every,
        scores_out=str(root / "drill-crash.csv"),
        kill_shard=victim,
        kill_after_ticks=scale.drill_kill_after,
    )
    bootstrap_fleet(drill_cfg, detector, float("inf"))
    with telemetry.use(telemetry.MetricsRegistry()):
        coordinator = FleetCoordinator.open(drill_cfg)
        try:
            crashed = coordinator.drain(
                feed, tick_size=scale.drill_tick_size
            )
            survivors_stalled = any(
                report.backlog > 0
                for shard, report in crashed.per_shard.items()
                if shard != victim
            )
            replayed = coordinator.restart_shard(victim)
            resumed = coordinator.drain(
                feed, tick_size=scale.drill_tick_size
            )
        finally:
            coordinator.close()

    baseline_rows = _read_rows(root / "drill-baseline.csv")
    drill_rows = _read_rows(root / "drill-crash.csv")
    baseline_set: Set[str] = set(baseline_rows)
    drill_set: Set[str] = set(drill_rows)
    return {
        "devices": scale.drill_devices,
        "shards": scale.drill_shards,
        "messages": scale.drill_messages,
        "killed_shard": victim,
        "kill_after_ticks": scale.drill_kill_after,
        "replayed_ticks": replayed,
        "crashed_dead_shards": list(crashed.dead_shards),
        "resumed_dead_shards": list(resumed.dead_shards),
        "survivors_stalled": survivors_stalled,
        "score_parity": baseline_set == drill_set,
        "dropped_rows": len(baseline_set - drill_set),
        "double_scored_rows": len(drill_set - baseline_set),
        "baseline_rows": len(baseline_rows),
        "drill_rows": len(drill_rows),
        "replayed_duplicate_rows": len(drill_rows) - len(drill_set),
    }


def run(scale_name: str = "default") -> Dict:
    """Run the fleet suite at one scale; returns the run record."""
    scale = SCALES[scale_name]
    root = pathlib.Path(tempfile.mkdtemp(prefix="bench-fleet-"))
    try:
        record = {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "scale": scale.name,
            "benchmarks": {
                "fleet_scaling": bench_scaling(scale, root),
                "kill_drill": bench_kill_drill(scale, root),
            },
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return record


if __name__ == "__main__":
    import json

    print(json.dumps(run("reduced"), indent=2))
