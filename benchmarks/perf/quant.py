"""Quantized-inference benchmarks: int8 vs float32 streaming.

One suite, one question: what does the opt-in int8 path
(:mod:`repro.nn.quant`) buy over the float32 deployment fast path,
and what does it cost in decisions?  The same fleet stream is drained
through two :class:`~repro.core.stream.StreamScorer` instances:

* ``f32`` — the float32 twin of the trained detector, today's fast
  path (the ``BENCH_streaming.json`` reference);
* ``int8`` — the float64 detector scored through
  ``StreamScorer(..., quantized=True)``: fused embedding+input
  projection table, per-tensor symmetric int8 weights dequantized to
  float32 operands, tanh-identity sigmoid.

Throughput is best-of wall time.  Fidelity is *decision agreement*:
both sides' scores are thresholded at the float64 reference's 95th
percentile (snapped between adjacent score levels so clustered
synthetic scores don't turn the comparison into a float tie-break) and
the fraction of matching anomaly decisions against the float64 ground
truth is reported.  The acceptance gates pin int8 at
>= 1.5x float32 throughput with >= 99% agreement.

``run(scale)`` returns a JSON-ready record; ``run.py quant`` appends
it to ``BENCH_quant.json`` at the repo root.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

import streaming
from repro.core.detector import LSTMAnomalyDetector
from repro.core.stream import StreamScorer
from repro.logs.message import SyslogMessage


@dataclass(frozen=True)
class QuantScale:
    """One quantized-benchmark operating point."""

    name: str
    devices: int
    timed_messages: int
    repeats: int = 3
    tick_size: int = 1024
    threshold_quantile: float = 0.95


SCALES: Dict[str, QuantScale] = {
    # The reference point BENCH_quant.json records: the full-fleet
    # single-scorer regime where inference dominates.
    "default": QuantScale(
        name="default", devices=512, timed_messages=16384
    ),
    # CI / perf-marked pytest smoke.
    "reduced": QuantScale(
        name="reduced", devices=32, timed_messages=4096, repeats=2
    ),
}


def _drain(
    scorer: StreamScorer,
    warm: List[SyslogMessage],
    ticks: List[List[SyslogMessage]],
) -> Tuple[float, np.ndarray]:
    """Drain warmed ticks; return (wall seconds, concatenated scores)."""
    scorer.observe_batch(warm)
    chunks = []
    start = time.perf_counter()
    for tick in ticks:
        chunks.append(scorer.observe_batch(tick).scores)
    elapsed = time.perf_counter() - start
    return elapsed, np.concatenate(chunks)


def _best_of(
    make_scorer,
    warm: List[SyslogMessage],
    ticks: List[List[SyslogMessage]],
    repeats: int,
) -> Tuple[float, np.ndarray]:
    best = float("inf")
    scores = None
    for _ in range(repeats):
        elapsed, run_scores = _drain(make_scorer(), warm, ticks)
        if elapsed < best:
            best = elapsed
        scores = run_scores  # identical across repeats per scorer
    return best, scores


def _snap_threshold(scores: np.ndarray, quantile: float) -> float:
    """The score quantile, snapped between adjacent score levels.

    The synthetic fleet's scores are heavily clustered, so the raw
    quantile routinely lands *exactly on* a populated score level:
    thresholding then becomes a knife-edge float comparison that a
    float32 twin fails as badly as int8 (the ulp of difference flips
    every message sitting on the atom).  Snapping to the midpoint
    between the two distinct levels straddling the quantile keeps every
    engine's scores safely on one side, so the agreement metric
    measures quantization fidelity instead of tie-breaking luck.
    """
    levels = np.unique(scores)
    if len(levels) == 1:
        return float(levels[0])
    raw = np.quantile(scores, quantile)
    upper = int(np.searchsorted(levels, raw, side="right"))
    if upper == len(levels):
        # Quantile at the top level: snap below it, so the top atom's
        # messages are anomalous under every engine instead of sitting
        # exactly on the threshold.
        upper -= 1
    return float(0.5 * (levels[upper - 1] + levels[upper]))


def _agreement(
    reference: np.ndarray, candidate: np.ndarray, threshold: float
) -> Tuple[float, int]:
    """Fraction of matching anomaly decisions over scored messages."""
    decided = np.isfinite(reference) & np.isfinite(candidate)
    ref_flag = reference[decided] > threshold
    cand_flag = candidate[decided] > threshold
    n = int(decided.sum())
    if n == 0:
        return 1.0, 0
    return float(np.mean(ref_flag == cand_flag)), n


def bench_quantized(scale: QuantScale) -> Dict[str, float]:
    """int8 vs f32 streaming throughput and decision fidelity."""
    stream_scale = streaming.SCALES[
        "reduced" if scale.name == "reduced" else "default"
    ]
    f64, f32 = streaming.build_detectors(stream_scale)
    warmup = scale.devices * (stream_scale.window + 2)
    stream = streaming.fleet_stream(
        scale.devices, warmup + scale.timed_messages
    )
    warm, timed = stream[:warmup], stream[warmup:]
    ticks = [
        timed[index:index + scale.tick_size]
        for index in range(0, len(timed), scale.tick_size)
    ]

    # Float64 ground truth (untimed): the decision reference and the
    # source of the operating threshold.
    _, ref_scores = _drain(StreamScorer(f64), warm, ticks)
    finite = ref_scores[np.isfinite(ref_scores)]
    threshold = _snap_threshold(finite, scale.threshold_quantile)

    f32_s, f32_scores = _best_of(
        lambda: StreamScorer(f32), warm, ticks, scale.repeats
    )
    int8_s, int8_scores = _best_of(
        lambda: StreamScorer(f64, quantized=True),
        warm,
        ticks,
        scale.repeats,
    )
    f32_rate = len(timed) / f32_s
    int8_rate = len(timed) / int8_s
    f32_agree, _ = _agreement(ref_scores, f32_scores, threshold)
    int8_agree, n_decisions = _agreement(
        ref_scores, int8_scores, threshold
    )
    return {
        "devices": scale.devices,
        "timed_messages": len(timed),
        "tick_size": scale.tick_size,
        "window": stream_scale.window,
        "hidden": stream_scale.hidden,
        "f32_msgs_per_s": f32_rate,
        "int8_msgs_per_s": int8_rate,
        "speedup_vs_f32": int8_rate / f32_rate,
        "threshold_quantile": scale.threshold_quantile,
        "threshold": threshold,
        "n_decisions": n_decisions,
        "f32_decision_agreement": f32_agree,
        "decision_agreement": int8_agree,
    }


def run(scale_name: str = "default") -> Dict:
    """Run the quantized-inference bench at the named scale."""
    scale = SCALES[scale_name]
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "scale": scale.name,
        "benchmarks": {
            "quantized_inference": bench_quantized(scale),
        },
    }
