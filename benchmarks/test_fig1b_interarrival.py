"""Figure 1(b): CDF of non-duplicated ticket inter-arrival per vPE.

Paper: non-duplicated tickets arrive more than 40 minutes apart; 80%
of consecutive tickets arrive more than 10 hours apart; 25% arrive
more than 1000 hours apart.
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.evaluation.reporting import format_table
from repro.tickets.analysis import interarrival_cdf


def cdf_at(hours, cdf, value):
    index = np.searchsorted(hours, value, side="right") - 1
    if index < 0:
        return 0.0
    return float(cdf[index])


def test_fig1b_interarrival_cdf(benchmark, ticket_scale_dataset):
    dataset = ticket_scale_dataset

    def experiment():
        return interarrival_cdf(dataset.tickets)

    hours, cdf = benchmark.pedantic(experiment, rounds=1, iterations=1)
    assert hours.size > 100

    probe_points = [0.67, 1, 10, 100, 1000]
    rows = [
        [f"{point:g} h", f"{cdf_at(hours, cdf, point):.3f}"]
        for point in probe_points
    ]
    rows.append(["min gap", f"{hours[0]:.2f} h"])
    table = format_table(
        ["inter-arrival", "CDF"],
        rows,
        title=(
            "Figure 1(b) — non-duplicated ticket inter-arrival CDF\n"
            "(paper: all > 40 min; 80% > 10 h; 25% > 1000 h)"
        ),
    )
    write_result("fig1b_interarrival", table)

    # Shape: no sub-40-minute gaps; heavy tail.
    assert hours[0] > 40.0 / 60.0
    assert cdf_at(hours, cdf, 10.0) < 0.45   # most gaps exceed 10 h
    assert cdf_at(hours, cdf, 1000.0) < 1.0  # a tail beyond 1000 h
    assert hours[-1] > 1000.0
