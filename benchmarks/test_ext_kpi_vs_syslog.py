"""Extension: syslog anomaly detection vs service-level KPI monitoring.

Section 5.3, operational finding 2: a syslog signature storm "can
outperform existing service level monitoring, which normally has a
longer detection time".  This experiment quantifies that: for a set of
circuit faults with early syslog symptoms, compare the first syslog
warning-cluster time against the first KPI z-score alarm.

KPIs degrade only as the fault's traffic impact builds up
(:mod:`repro.synthesis.kpi`), while syslog symptoms start at fault
onset — so the syslog path should win by tens of minutes.
"""

import dataclasses

import numpy as np

from benchmarks.conftest import write_result
from repro.core.detector import LSTMAnomalyDetector
from repro.core.mapping import warning_clusters
from repro.evaluation.reporting import format_table
from repro.logs.templates import TemplateStore
from repro.synthesis.catalog import catalog_by_name
from repro.synthesis.faults import DEFAULT_FAULT_MODELS, FaultInjector
from repro.synthesis.kpi import KpiSimulator, KpiThresholdDetector
from repro.synthesis.markov import MarkovLogGenerator, build_structure
from repro.synthesis.profiles import build_fleet_profiles
from repro.tickets.ticket import RootCause
from repro.timeutil import DAY, HOUR, MINUTE, TRACE_START


def test_ext_kpi_vs_syslog_lead_time(benchmark):
    rng = np.random.default_rng(3)
    profile = build_fleet_profiles(
        n_vpes=1, seed=5, base_rate_per_hour=10.0
    )[0]
    circuit = dataclasses.replace(
        next(
            m for m in DEFAULT_FAULT_MODELS
            if m.root_cause is RootCause.CIRCUIT
        ),
        symptom_emission_probability=1.0,
        pre_symptom_probability=1.0,
    )
    injector = FaultInjector((circuit,))

    # Normal period for training both detectors.
    structure = build_structure(profile.template_weights, rng)
    generator = MarkovLogGenerator(
        catalog_by_name(), structure,
        rate_per_hour=profile.base_rate_per_hour,
    )
    train_end = TRACE_START + 20 * DAY
    normal_logs = generator.generate(
        profile.name, TRACE_START, train_end, rng
    )
    kpi_sim = KpiSimulator()
    normal_kpis = kpi_sim.generate(TRACE_START, train_end, [], rng)

    store = TemplateStore().fit(normal_logs)
    lstm = LSTMAnomalyDetector(
        store,
        vocabulary_capacity=128,
        window=8,
        hidden=(24, 24),
        epochs=2,
        max_train_samples=5000,
        seed=0,
    ).fit(normal_logs)
    kpi = KpiThresholdDetector(z_threshold=6.0).fit(normal_kpis)
    threshold = float(
        np.quantile(lstm.score(normal_logs[:15000]).scores, 0.999)
    ) + 0.5

    # Evaluation period: fortnight with several injected faults.
    def experiment():
        eval_start = train_end
        eval_end = eval_start + 14 * DAY
        onsets = [
            eval_start + DAY + i * 2.5 * DAY for i in range(5)
        ]
        events = []
        for onset in onsets:
            events.append(
                injector._make_event(profile, circuit, onset, rng)
            )
        routine = generator.generate(
            profile.name, eval_start, eval_end, rng
        )
        symptoms = []
        for event in events:
            burst, _ = injector.materialize(event, rng)
            symptoms.extend(burst)
        logs = sorted(
            routine + symptoms, key=lambda m: m.timestamp
        )
        kpis = kpi_sim.generate(eval_start, eval_end, events, rng)

        syslog_hits = warning_clusters(
            lstm.score(logs).anomalies(threshold)
        )
        kpi_hits = kpi.detect(kpis)
        leads = []
        for event in events:
            horizon = event.onset + 4 * HOUR
            syslog_first = next(
                (t for t in syslog_hits
                 if event.onset <= t <= horizon),
                None,
            )
            kpi_first = next(
                (t for t in kpi_hits
                 if event.onset <= t <= horizon),
                None,
            )
            leads.append((event.onset, syslog_first, kpi_first))
        return leads

    leads = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    advantages = []
    for onset, syslog_first, kpi_first in leads:
        syslog_delay = (
            (syslog_first - onset) / MINUTE
            if syslog_first is not None else float("nan")
        )
        kpi_delay = (
            (kpi_first - onset) / MINUTE
            if kpi_first is not None else float("nan")
        )
        if syslog_first is not None and kpi_first is not None:
            advantages.append(kpi_delay - syslog_delay)
        rows.append(
            [
                f"fault @ +{(onset - leads[0][0]) / DAY:.1f}d",
                f"{syslog_delay:.1f} min",
                f"{kpi_delay:.1f} min",
            ]
        )
    table = format_table(
        ["fault", "syslog detection delay", "KPI detection delay"],
        rows,
        title=(
            "Extension — syslog warnings vs service-level KPI "
            "monitoring\n(section 5.3 finding 2: syslog detection "
            "beats service-level monitoring)"
        ),
    )
    write_result("ext_kpi_vs_syslog", table)

    detected_by_syslog = sum(
        1 for _, s, _ in leads if s is not None
    )
    assert detected_by_syslog >= 4
    assert advantages, "need at least one co-detected fault"
    # The syslog path should lead by a meaningful margin on average.
    assert float(np.mean(advantages)) > 5.0
