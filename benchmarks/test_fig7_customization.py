"""Figure 7: effectiveness of customization and adaptation.

Paper: per-vPE(-group) customization significantly improves the
F-measure over a single universal model; the software update causes a
sharp dip (false alarms jump ~14x) from which the adaptation component
recovers using just one week of training data.
"""

import numpy as np

from benchmarks.conftest import (
    POST_UPDATE_MONTHS,
    PRE_UPDATE_MONTHS,
    UPDATE_MONTH,
    write_result,
)
from repro.evaluation.reporting import format_table


def monthly_f(result):
    threshold = result.choose_threshold(
        month_indices=PRE_UPDATE_MONTHS
    )
    counts = result.monthly_counts(threshold)
    return (
        {m.month_index: c.f_measure
         for m, c in zip(result.months, counts)},
        threshold,
    )


def test_fig7_customization_adaptation(
    benchmark, pipeline_universal, pipeline_noadapt, pipeline_adapt
):
    variants = {
        "baseline (universal)": pipeline_universal,
        "vPE cust": pipeline_noadapt,
        "vPE cust + adapt": pipeline_adapt,
    }

    def experiment():
        return {
            name: monthly_f(result)
            for name, result in variants.items()
        }

    series = benchmark.pedantic(experiment, rounds=1, iterations=1)

    months = sorted(series["vPE cust"][0])
    rows = [
        [f"month {m}"]
        + [f"{series[name][0][m]:.2f}" for name in variants]
        for m in months
    ]
    table = format_table(
        ["", *variants.keys()],
        rows,
        title=(
            "Figure 7 — monthly F-measure per system variant\n"
            "(paper: customization lifts F; update dips it; "
            "adaptation recovers within a week)"
        ),
    )

    fa = {
        name: result.monthly_false_alarms_per_day(
            series[name][1]
        )
        for name, result in variants.items()
    }
    fa_rows = [
        [f"month {m}"]
        + [f"{fa[name][i]:.2f}" for name in variants]
        for i, m in enumerate(months)
    ]
    fa_table = format_table(
        ["", *variants.keys()],
        fa_rows,
        title=(
            "False alarms per day (paper: ~14x jump at the update "
            "without adaptation)"
        ),
    )
    write_result("fig7_customization", table + "\n\n" + fa_table)

    def mean_over(name, month_set):
        values = [series[name][0][m] for m in month_set]
        return float(np.mean(values))

    # Shape 1: customization is in the same band as the universal
    # baseline pre-update.  The paper's 38-vPE fleet shows a clear
    # customization win; at 10 vPEs a single model has enough capacity
    # to cover the role mixture, so this reproduction only checks that
    # grouping costs nothing material (see EXPERIMENTS.md for the
    # discussion, and the training-overhead bench for where grouping
    # demonstrably pays: data economy).
    assert mean_over("vPE cust", PRE_UPDATE_MONTHS) >= mean_over(
        "baseline (universal)", PRE_UPDATE_MONTHS
    ) - 0.05
    # Shape 2: the update month dips the non-adaptive variants hard.
    for name in ("baseline (universal)", "vPE cust"):
        assert series[name][0][UPDATE_MONTH] < 0.7 * mean_over(
            name, PRE_UPDATE_MONTHS
        )
    # Shape 3: adaptation rescues the update month itself (the paper's
    # one-week recovery) and stays on par afterwards.
    assert (
        series["vPE cust + adapt"][0][UPDATE_MONTH]
        > series["vPE cust"][0][UPDATE_MONTH] + 0.2
    )
    assert mean_over(
        "vPE cust + adapt", POST_UPDATE_MONTHS
    ) >= mean_over("vPE cust", POST_UPDATE_MONTHS) - 0.1
    # Shape 4: without adaptation, false alarms jump by a large factor
    # in the update month.
    noadapt_fa = fa["vPE cust"]
    pre_fa = max(np.mean(noadapt_fa[: UPDATE_MONTH - 1]), 0.05)
    update_fa = noadapt_fa[UPDATE_MONTH - 1]
    assert update_fa / pre_fa > 5.0
    # ... and adaptation cuts the update-month spike substantially.
    adapt_fa = fa["vPE cust + adapt"][UPDATE_MONTH - 1]
    assert adapt_fa < update_fa
