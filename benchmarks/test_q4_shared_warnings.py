"""Section 5.3 Q4: can one anomaly serve several near-term tickets?

Paper: "Based on our current dataset, this has never happened, mostly
because the tickets are rare and well-separated."  The mapping layer
here explicitly supports crediting one anomaly to several containing
tickets, so this benchmark measures how often that actually occurs —
on the production-shaped trace it should be (nearly) never for
distinct faults; duplicate follow-ups of the same fault are the
expected exception.
"""

import numpy as np

from benchmarks.conftest import PRE_UPDATE_MONTHS, write_result
from repro.core.mapping import map_anomalies, warning_clusters
from repro.evaluation.metrics import best_operating_point
from repro.core.thresholds import sweep_thresholds
from repro.evaluation.reporting import format_table


def test_q4_shared_warnings(benchmark, pipeline_adapt):
    result = pipeline_adapt
    streams = result.pooled_streams(PRE_UPDATE_MONTHS)
    tickets = result.pooled_tickets(PRE_UPDATE_MONTHS)
    threshold = best_operating_point(
        sweep_thresholds(streams, tickets, n_thresholds=20)
    ).threshold

    def experiment():
        detections = {
            vpe: warning_clusters(stream.anomalies(threshold))
            for vpe, stream in streams.items()
        }
        mapping = map_anomalies(detections, tickets)
        # For every warning, count the distinct *original* tickets it
        # falls into (a duplicate shares its original's fault).
        originals = {}
        for ticket in tickets:
            originals[ticket.ticket_id] = (
                ticket.original_ticket_id
                if ticket.is_duplicate
                and ticket.original_ticket_id is not None
                else ticket.ticket_id
            )
        per_time = {}
        for ticket_id, hits in mapping.ticket_hits.items():
            for hit in hits:
                per_time.setdefault(hit.time, set()).add(
                    originals.get(ticket_id, ticket_id)
                )
        shared = sum(
            1 for faults in per_time.values() if len(faults) > 1
        )
        return len(per_time), shared

    total, shared = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )

    table = format_table(
        ["metric", "value"],
        [
            ["ticket-related warnings", total],
            ["warnings spanning >1 distinct fault", shared],
            [
                "fraction",
                f"{shared / total:.3f}" if total else "n/a",
            ],
        ],
        title=(
            "Section 5.3 Q4 — warnings shared across tickets\n"
            "(paper: never observed; tickets are rare and "
            "well-separated)"
        ),
    )
    write_result("q4_shared_warnings", table)

    assert total > 0
    # Matching the paper's answer: sharing across *distinct faults* is
    # (nearly) nonexistent.
    assert shared / total < 0.1
