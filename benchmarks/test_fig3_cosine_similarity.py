"""Figure 3: cosine similarity of per-vPE syslog distribution vs the
fleet aggregate.

Paper: only about one third of vPEs have similarity > 0.8 with the
aggregated distribution, and several fall below 0.5 — syslog patterns
vary across vPEs, motivating per-vPE (grouped) models.
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.evaluation.reporting import format_table
from repro.features.counts import sliding_distributions
from repro.logs.templates import TemplateStore
from repro.ml.similarity import cosine_similarity
from repro.timeutil import MONTH


def test_fig3_cosine_similarity(benchmark, bench_dataset):
    dataset = bench_dataset
    store = TemplateStore().fit(
        dataset.aggregate_messages(
            start=dataset.start,
            end=dataset.start + MONTH,
            normal_only=True,
        )[:20000]
    )

    def experiment():
        aggregate = store.transform(
            dataset.aggregate_messages(normal_only=True)
        )
        fleet_windows = sliding_distributions(
            aggregate,
            store.vocabulary_size,
            start=dataset.start,
            end=dataset.end,
        )
        quantiles = {}
        for vpe in dataset.vpe_names:
            stream = store.transform(dataset.normal_messages(vpe))
            vpe_windows = sliding_distributions(
                stream,
                store.vocabulary_size,
                start=dataset.start,
                end=dataset.end,
            )
            sims = [
                cosine_similarity(a[1], b[1])
                for a, b in zip(vpe_windows, fleet_windows)
                if a[1].any() and b[1].any()
            ]
            quantiles[vpe] = np.quantile(sims, [0, 0.25, 0.5, 0.75, 1])
        return quantiles

    quantiles = benchmark.pedantic(experiment, rounds=1, iterations=1)

    medians = {vpe: q[2] for vpe, q in quantiles.items()}
    ordered = sorted(medians, key=medians.get)
    rows = [
        [vpe] + [f"{v:.3f}" for v in quantiles[vpe]]
        for vpe in ordered
    ]
    table = format_table(
        ["vPE", "min", "q25", "median", "q75", "max"],
        rows,
        title=(
            "Figure 3 — cosine similarity of per-vPE syslog "
            "distribution vs fleet aggregate\n"
            "(paper: ~1/3 of vPEs > 0.8; several < 0.5)"
        ),
    )
    write_result("fig3_cosine_similarity", table)

    values = np.array(list(medians.values()))
    # Shape: similarity varies across the fleet; not all vPEs look
    # like the aggregate.
    assert values.max() - values.min() > 0.1
    assert (values < 0.9).sum() >= len(values) // 3
    assert values.min() < 0.8
