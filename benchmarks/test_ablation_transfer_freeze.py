"""Ablation: what to freeze during post-update adaptation (section 4.3).

The paper fine-tunes the "top layers" of the student.  Variants:
freeze the lower LSTM (this library's default — the embedding stays
trainable so brand-new template ids can be learned), freeze embedding
plus lower LSTM, or retrain everything from the teacher's weights.
All see the same one week of post-update data.
"""

import numpy as np

from benchmarks.conftest import UPDATE_MONTH, lstm_factory, write_result
from repro.core.thresholds import sweep_thresholds
from repro.evaluation.metrics import best_operating_point
from repro.evaluation.reporting import format_table
from repro.logs.templates import TemplateStore
from repro.timeutil import DAY, MONTH


def best_f(detector, dataset, vpes, start, end):
    streams = {
        vpe: detector.score(dataset.messages_between(vpe, start, end))
        for vpe in vpes
    }
    tickets = [
        t
        for t in dataset.tickets_for(start=start, end=end)
        if t.vpe in set(vpes)
    ]
    curve = sweep_thresholds(streams, tickets, n_thresholds=15)
    return best_operating_point(curve).f_measure


def test_ablation_transfer_freeze(benchmark, bench_dataset):
    dataset = bench_dataset
    update = dataset.updates[0]
    affected = sorted(update.affected_vpes)
    store = TemplateStore().fit(
        dataset.aggregate_messages(
            start=dataset.start,
            end=dataset.start + MONTH,
            normal_only=True,
        )[:20000]
    )
    teacher = lstm_factory(store, 0)
    teacher.fit_streams([
        dataset.normal_messages(vpe, dataset.start, update.time)
        for vpe in affected
    ])
    week = [
        dataset.normal_messages(
            vpe, update.time, update.time + 7 * DAY
        )
        for vpe in affected
    ]
    eval_start = dataset.start + (UPDATE_MONTH + 1) * MONTH

    def experiment():
        results = {}
        results["freeze lstm1 (default)"] = best_f(
            teacher.adapt_streams(week, freeze=("lstm1",)),
            dataset, affected, eval_start, dataset.end,
        )
        results["freeze embedding+lstm1"] = best_f(
            teacher.adapt_streams(
                week, freeze=("embedding", "lstm1")
            ),
            dataset, affected, eval_start, dataset.end,
        )
        results["retrain all layers"] = best_f(
            teacher.adapt_streams(week, freeze=()),
            dataset, affected, eval_start, dataset.end,
        )
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = [[name, f"{f:.2f}"] for name, f in results.items()]
    table = format_table(
        ["adaptation variant", "post-update F"],
        rows,
        title=(
            "Ablation — freeze policy during transfer adaptation\n"
            "(default keeps the embedding trainable so new template "
            "ids are learnable)"
        ),
    )
    write_result("ablation_transfer_freeze", table)

    default_f = results["freeze lstm1 (default)"]
    # Freezing the embedding blocks learning the post-update
    # vocabulary: it must not beat the default by a margin.
    assert default_f >= results["freeze embedding+lstm1"] - 0.05
    # With only one week of data, the default should be at least
    # competitive with full retraining.
    assert default_f >= results["retrain all layers"] - 0.1
