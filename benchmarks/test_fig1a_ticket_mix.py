"""Figure 1(a): monthly mix of ticket root causes.

Paper: maintenance is the dominant category; duplicated and circuit
tickets are the next two major contributors; the data is highly
skewed.
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.evaluation.reporting import format_table
from repro.tickets.analysis import monthly_type_mix
from repro.tickets.ticket import RootCause


def test_fig1a_ticket_mix(benchmark, ticket_scale_dataset):
    dataset = ticket_scale_dataset

    def experiment():
        return monthly_type_mix(dataset.tickets, n_months=18)

    mix = benchmark.pedantic(experiment, rounds=1, iterations=1)

    overall = {
        cause: float(np.mean(values)) for cause, values in mix.items()
    }
    rows = [
        [cause.value]
        + [f"{values[m]:.2f}" for m in range(0, 18, 3)]
        + [f"{overall[cause]:.3f}"]
        for cause, values in sorted(
            mix.items(), key=lambda kv: -overall[kv[0]]
        )
    ]
    table = format_table(
        ["cause", "m0", "m3", "m6", "m9", "m12", "m15", "mean"],
        rows,
        title=(
            "Figure 1(a) — monthly ticket root-cause mix "
            "(paper: maintenance dominant; DUP and circuit next)"
        ),
    )
    write_result("fig1a_ticket_mix", table)

    # Shape assertions: maintenance dominates, DUP + circuit are the
    # next two contributors, the mix is skewed.
    ranked = sorted(overall, key=overall.get, reverse=True)
    assert ranked[0] is RootCause.MAINTENANCE
    assert set(ranked[1:3]) == {RootCause.DUPLICATE, RootCause.CIRCUIT}
    assert overall[RootCause.MAINTENANCE] > 2 * overall[
        RootCause.HARDWARE
    ]
    # every month with tickets is fully accounted for
    totals = sum(np.asarray(values) for values in mix.values())
    assert np.all((np.isclose(totals, 1.0)) | (totals == 0.0))
