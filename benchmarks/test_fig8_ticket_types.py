"""Figure 8: anomaly detection for different ticket types at several
time offsets around the ticket report.

Paper answers (section 5.3):
* Q1 — circuit tickets show syslog signs before the report most often
  (74%), then software (55%), cable (40%), hardware (28%);
* Q2 — ~80% of tickets show syslog anomalies within 15 minutes after
  report;
* Q3 — many anomalies lead by 15+ minutes (circuit 36%, cable 39%,
  hardware 38%).
"""

import numpy as np

from benchmarks.conftest import PRE_UPDATE_MONTHS, write_result
from repro.core.mapping import (
    FIGURE8_OFFSETS_MINUTES,
    detection_rate_by_offset,
    map_anomalies,
    warning_clusters,
)
from repro.evaluation.reporting import format_table

PAPER_BEFORE_REPORT = {
    "circuit": 0.74,
    "software": 0.55,
    "cable": 0.40,
    "hardware": 0.28,
}


def test_fig8_ticket_types(benchmark, pipeline_adapt):
    result = pipeline_adapt
    config = result.config
    threshold = result.choose_threshold(
        month_indices=PRE_UPDATE_MONTHS
    )

    def experiment():
        detections = {}
        for vpe, stream in result.pooled_streams().items():
            raw = stream.anomalies(threshold)
            detections[vpe] = warning_clusters(
                raw,
                min_size=config.cluster_min_size,
                max_gap=config.cluster_max_gap,
            )
        mapping = map_anomalies(
            detections,
            result.pooled_tickets(),
            config.predictive_period,
        )
        return detection_rate_by_offset(mapping)

    rates = benchmark.pedantic(experiment, rounds=1, iterations=1)

    causes = ["circuit", "software", "cable", "hardware", "all"]
    rows = []
    for cause in causes:
        if cause not in rates:
            continue
        rows.append(
            [cause]
            + [
                f"{rates[cause][offset]:.2f}"
                for offset in FIGURE8_OFFSETS_MINUTES
            ]
            + [
                f"{PAPER_BEFORE_REPORT.get(cause, float('nan')):.2f}"
            ]
        )
    table = format_table(
        ["ticket type", "-15min", "-5min", "0min", "+5min", "+15min",
         "paper @0min"],
        rows,
        title=(
            "Figure 8 — detection rate per ticket type at each "
            "offset\n(offset = minimum lead before ticket report; "
            "negative = after)"
        ),
    )
    write_result("fig8_ticket_types", table)

    # Q1 shape: before-report visibility ordering matches the paper.
    at_zero = {cause: rates[cause][0.0] for cause in rates}
    assert at_zero["circuit"] > at_zero["software"]
    assert at_zero["software"] > at_zero["hardware"]
    assert at_zero["circuit"] > 0.5
    assert at_zero["hardware"] < 0.6
    # Q2 shape: most tickets show anomalies within +15 minutes.
    assert rates["all"][-15.0] > 0.6
    # Monotonicity: relaxing the offset can only increase the rate.
    for cause in rates:
        values = [
            rates[cause][offset]
            for offset in FIGURE8_OFFSETS_MINUTES
        ]
        assert all(
            a <= b + 1e-12 for a, b in zip(values, values[1:])
        )
    # Q3 shape: a meaningful share of detections lead by 15+ minutes.
    assert rates["circuit"][15.0] > 0.15
