"""Section 2 observation: vPE vs pPE syslog volume and content.

Paper: vPE syslogs have 77% less volume than pPE syslogs with a
similar ticket count, and contain far fewer physical-layer messages —
virtualization reduces visibility into lower layers.
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.evaluation.reporting import format_table
from repro.synthesis.catalog import PHYSICAL_TEMPLATES, catalog_by_name
from repro.synthesis.markov import MarkovLogGenerator, build_structure
from repro.synthesis.profiles import build_fleet_profiles, build_ppe_profile
from repro.timeutil import MONTH, TRACE_START


def generate_month(profile, seed):
    rng = np.random.default_rng(seed)
    structure = build_structure(profile.template_weights, rng)
    generator = MarkovLogGenerator(
        catalog_by_name(),
        structure,
        rate_per_hour=profile.base_rate_per_hour,
    )
    return generator.generate(
        profile.name, TRACE_START, TRACE_START + MONTH, rng
    )


def physical_fraction(messages):
    physical_names = {
        spec.pattern.split(":")[0] for spec in PHYSICAL_TEMPLATES
    }
    count = sum(
        1
        for m in messages
        if m.text.split(":")[0] in physical_names
    )
    return count / max(len(messages), 1)


def test_sec2_vpe_vs_ppe(benchmark):
    vpe = build_fleet_profiles(
        n_vpes=1, seed=3, base_rate_per_hour=40.0
    )[0]
    # The paper pairs a vPE and pPE with similar ticket counts; the
    # pPE's volume is anchored to this vPE's actual (jittered) rate.
    ppe = build_ppe_profile(vpe_rate_per_hour=vpe.base_rate_per_hour)

    def experiment():
        vpe_stream = generate_month(vpe, seed=1)
        ppe_stream = generate_month(ppe, seed=2)
        return vpe_stream, ppe_stream

    vpe_stream, ppe_stream = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )

    reduction = 1.0 - len(vpe_stream) / len(ppe_stream)
    vpe_physical = physical_fraction(vpe_stream)
    ppe_physical = physical_fraction(ppe_stream)
    table = format_table(
        ["metric", "vPE", "pPE"],
        [
            ["messages / month", len(vpe_stream), len(ppe_stream)],
            [
                "physical-layer fraction",
                f"{vpe_physical:.3f}",
                f"{ppe_physical:.3f}",
            ],
            ["volume reduction", f"{reduction:.0%}", "-"],
        ],
        title=(
            "Section 2 — vPE vs pPE syslog volume\n"
            "(paper: vPE has 77% less volume, far fewer physical-"
            "layer messages)"
        ),
    )
    write_result("sec2_vpe_vs_ppe", table)

    # Shape: ~77% volume reduction and physical-layer content near
    # zero on the vPE.
    assert 0.65 < reduction < 0.85
    assert vpe_physical < 0.01
    assert ppe_physical > 0.1
