"""Ablation: LSTM context-window length k (section 4.2).

The model predicts template ``m_{k+1}`` from the previous ``k``
template/gap tuples.  Too short a window starves the model of
sequential context; beyond a point more context stops paying for its
(linear) training cost.
"""

import time

from benchmarks.conftest import write_result
from repro.core.detector import LSTMAnomalyDetector
from repro.core.thresholds import sweep_thresholds
from repro.evaluation.metrics import best_operating_point
from repro.evaluation.reporting import format_table
from repro.logs.templates import TemplateStore
from repro.timeutil import MONTH


def test_ablation_window_length(benchmark, bench_dataset):
    dataset = bench_dataset
    vpes = dataset.vpe_names[:4]
    store = TemplateStore().fit(
        dataset.aggregate_messages(
            start=dataset.start,
            end=dataset.start + MONTH,
            normal_only=True,
        )[:20000]
    )
    training = [
        dataset.normal_messages(
            vpe, dataset.start, dataset.start + MONTH
        )
        for vpe in vpes
    ]
    test_start = dataset.start + MONTH
    test_end = dataset.start + 2 * MONTH

    def evaluate(window):
        detector = LSTMAnomalyDetector(
            store,
            vocabulary_capacity=160,
            window=window,
            hidden=(24, 24),
            id_dim=16,
            epochs=2,
            oversample_rounds=0,
            max_train_samples=5000,
            seed=0,
        )
        started = time.perf_counter()
        detector.fit_streams(training)
        train_time = time.perf_counter() - started
        streams = {
            vpe: detector.score(
                dataset.messages_between(vpe, test_start, test_end)
            )
            for vpe in vpes
        }
        tickets = [
            t
            for t in dataset.tickets_for(
                start=test_start, end=test_end
            )
            if t.vpe in set(vpes)
        ]
        curve = sweep_thresholds(streams, tickets, n_thresholds=15)
        return best_operating_point(curve).f_measure, train_time

    def experiment():
        return {
            window: evaluate(window) for window in (2, 8, 16)
        }

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = [
        [f"k={window}", f"{f:.2f}", f"{seconds:.1f}s"]
        for window, (f, seconds) in results.items()
    ]
    table = format_table(
        ["context window", "F-measure", "train time"],
        rows,
        title=(
            "Ablation — LSTM context-window length k (section 4.2)\n"
            "(training cost grows linearly in k; accuracy saturates)"
        ),
    )
    write_result("ablation_window_length", table)

    # Cost grows with k ...
    assert results[16][1] > results[2][1]
    # ... and the paper-scale window (k=8) performs at least on par
    # with the very short context.
    assert results[8][0] >= results[2][0] - 0.1
