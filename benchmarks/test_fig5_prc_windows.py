"""Figure 5: PRC for different predictive-period lengths.

Paper: detection performance converges at a predictive period of one
day (1 h < 1 day ~= 2 days); the operating point that maximizes the
F-measure sits at precision 0.8 / recall 0.81, with false alarms at
~0.6 per day across all vPEs.
"""

import numpy as np

from benchmarks.conftest import PRE_UPDATE_MONTHS, write_result
from repro.evaluation.metrics import auc_pr, best_operating_point
from repro.evaluation.reporting import format_table
from repro.timeutil import DAY, HOUR


WINDOWS = {
    "1 hour": HOUR,
    "1 day": DAY,
    "2 days": 2 * DAY,
}


def test_fig5_prc_windows(benchmark, pipeline_adapt):
    result = pipeline_adapt

    def experiment():
        return {
            name: result.prc(
                month_indices=PRE_UPDATE_MONTHS,
                predictive_period=window,
                n_thresholds=20,
            )
            for name, window in WINDOWS.items()
        }

    curves = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    best = {}
    for name, curve in curves.items():
        op = best_operating_point(curve)
        best[name] = op
        rows.append(
            [
                name,
                f"{op.precision:.2f}",
                f"{op.recall:.2f}",
                f"{op.f_measure:.2f}",
                f"{auc_pr(curve):.3f}",
            ]
        )
    table = format_table(
        ["predictive period", "precision", "recall", "F", "AUC-PR"],
        rows,
        title=(
            "Figure 5 — PRC vs predictive-period length\n"
            "(paper: converges at 1 day; operating point P=0.80 "
            "R=0.81)"
        ),
    )
    write_result("fig5_prc_windows", table)

    # Shape: 1 day is at least as good as 1 hour, and 2 days adds
    # little beyond 1 day (convergence).
    assert best["1 day"].f_measure >= best["1 hour"].f_measure - 0.02
    assert abs(
        best["2 days"].f_measure - best["1 day"].f_measure
    ) < 0.1
    # The operating point is in the paper's ballpark.
    assert best["1 day"].precision > 0.6
    assert best["1 day"].recall > 0.6
