"""Shared fixtures for the figure/table reproduction benchmarks.

Two dataset scales are used:

* ``ticket_scale_dataset`` — the paper's full fleet shape (38 vPEs,
  18 months) with a *very low* routine log rate.  Ticket analytics
  (Figures 1-2) depend only on the fault/maintenance/ticket processes,
  so starving the message generator keeps the run cheap while the
  ticket statistics stay full-scale.
* ``bench_dataset`` — a reduced deployment (10 vPEs, 6 months, softer
  log rate) for every experiment that trains detectors.  A pure-numpy
  LSTM cannot chew through the paper's multi-billion-token trace, but
  the *shape* of each result is preserved at this scale (see
  EXPERIMENTS.md for scale notes per figure).

Pipeline results are session-scoped: each variant (universal,
customized, customized+adaptive, autoencoder, one-class SVM) is
computed once and shared by all benchmarks that read it.

Each benchmark writes the table/series it reproduces to
``benchmarks/results/<name>.txt`` in addition to asserting the shape.
"""

from __future__ import annotations

import pathlib

import pytest

import dataclasses

from repro.core.baselines import AutoencoderDetector, OneClassSvmDetector
from repro.core.detector import LSTMAnomalyDetector
from repro.core.pipeline import PipelineConfig, RollingPipeline
from repro.synthesis import FleetSimulator, SimulationConfig
from repro.synthesis.faults import DEFAULT_FAULT_MODELS

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Test months of the bench trace (month 0 is training-only).
PRE_UPDATE_MONTHS = (1, 2, 3)
UPDATE_MONTH = 4
POST_UPDATE_MONTHS = (5,)


def write_result(name: str, text: str) -> None:
    """Persist one benchmark's report under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(text)


@pytest.fixture(scope="session")
def ticket_scale_dataset():
    """Full fleet shape for ticket analytics (Figures 1-2)."""
    config = SimulationConfig(
        n_vpes=38,
        n_months=18,
        seed=7,
        base_rate_per_hour=0.6,
        update_month=14,
        n_fleet_events=2,
    )
    return FleetSimulator(config).run()


#: Bench-scale fault rates: balanced across root causes so the
#: per-type Figure 8 rates average over enough tickets at this fleet
#: scale.  Visibility knobs (symptom emission / pre-symptom timing)
#: stay at the production defaults.
_BENCH_RATES = {
    "circuit": 0.40,
    "software": 0.30,
    "cable": 0.25,
    "hardware": 0.25,
}
BENCH_FAULT_MODELS = tuple(
    dataclasses.replace(
        model,
        rate_per_vpe_month=_BENCH_RATES[model.root_cause.value],
    )
    for model in DEFAULT_FAULT_MODELS
)

BENCH_SIM = SimulationConfig(
    n_vpes=10,
    n_months=6,
    seed=11,
    base_rate_per_hour=8.0,
    update_month=UPDATE_MONTH,
    update_fraction=0.5,
    n_fleet_events=1,
    fault_models=BENCH_FAULT_MODELS,
    # No lemon devices and few cascades at bench scale: with elevated
    # fault rates they would pack unrelated faults into each other's
    # 1-day predictive windows and pollute the Figure 8 lead times.
    lemon_fraction=0.0,
    cascade_probability=0.05,
)


@pytest.fixture(scope="session")
def bench_dataset():
    """Reduced deployment for detector experiments."""
    return FleetSimulator(BENCH_SIM).run()


def lstm_factory(store, seed):
    """The bench-scale LSTM detector (2 LSTM layers + 1 dense)."""
    return LSTMAnomalyDetector(
        store,
        vocabulary_capacity=256,
        window=8,
        hidden=(24, 24),
        id_dim=16,
        epochs=2,
        update_epochs=1,
        oversample_rounds=1,
        max_train_samples=5000,
        seed=seed,
    )


def autoencoder_factory(store, seed):
    return AutoencoderDetector(
        store,
        vocabulary_capacity=256,
        window=20,
        stride=5,
        epochs=8,
        update_epochs=2,
        max_train_windows=5000,
        seed=seed,
    )


def ocsvm_factory(store, seed):
    return OneClassSvmDetector(
        store,
        vocabulary_capacity=256,
        window=20,
        stride=5,
        max_train_windows=4000,
        seed=seed,
    )


def _run_pipeline(dataset, grouping, adaptation, factory, k=4):
    config = PipelineConfig(
        grouping=grouping,
        k=k if grouping == "kmeans" else None,
        adaptation=adaptation,
        seed=0,
    )
    return RollingPipeline(
        dataset, config, detector_factory=factory
    ).run()


@pytest.fixture(scope="session")
def pipeline_adapt(bench_dataset):
    """vPE customization + adaptation (the paper's full system)."""
    return _run_pipeline(bench_dataset, "kmeans", True, lstm_factory)


@pytest.fixture(scope="session")
def pipeline_noadapt(bench_dataset):
    """vPE customization without adaptation ("vPE cust")."""
    return _run_pipeline(bench_dataset, "kmeans", False, lstm_factory)


@pytest.fixture(scope="session")
def pipeline_universal(bench_dataset):
    """Single universal model, no adaptation (Figure 7 baseline)."""
    return _run_pipeline(
        bench_dataset, "universal", False, lstm_factory
    )


@pytest.fixture(scope="session")
def pipeline_autoencoder(bench_dataset):
    """Autoencoder with the same customization + adaptation."""
    return _run_pipeline(
        bench_dataset, "kmeans", True, autoencoder_factory
    )


@pytest.fixture(scope="session")
def pipeline_ocsvm(bench_dataset):
    """One-class SVM with the same customization + adaptation."""
    return _run_pipeline(bench_dataset, "kmeans", True, ocsvm_factory)
