"""Fail CI when line coverage drops below the checked-in floor.

Usage::

    python scripts/coverage_gate.py coverage.xml COVERAGE_FLOOR

The first argument is a Cobertura-style ``coverage.xml`` (what
``pytest --cov=repro --cov-report=xml`` writes); the second is a file
holding a single float — the accepted line rate.  The gate tolerates
a one-point dip so unrelated refactors don't flap, and asks for the
floor to be raised when coverage has genuinely grown, keeping the
floor a ratchet instead of a stale lower bound.

Stdlib only: CI installs pytest-cov, but this script itself must run
anywhere the repo does.
"""

import pathlib
import sys
import xml.etree.ElementTree as ET

#: How far below the floor the measured rate may fall before the gate
#: fails.  One point: enough slack for line-count churn in a refactor,
#: small enough that deleting a test file trips it.
TOLERANCE = 0.01

#: Headroom above the floor that triggers the "raise the floor"
#: reminder (non-fatal).
RATCHET_SLACK = 0.03


def read_line_rate(xml_path):
    """The overall ``line-rate`` from a coverage.xml root element."""
    root = ET.parse(str(xml_path)).getroot()
    rate = root.get("line-rate")
    if rate is None:
        raise SystemExit(f"{xml_path}: root element has no line-rate")
    return float(rate)


def read_floor(floor_path):
    """The accepted line rate recorded in the floor file."""
    text = pathlib.Path(str(floor_path)).read_text().strip()
    try:
        floor = float(text)
    except ValueError:
        raise SystemExit(f"{floor_path}: expected a float, got {text!r}")
    if not 0.0 <= floor <= 1.0:
        raise SystemExit(f"{floor_path}: floor {floor} outside [0, 1]")
    return floor


def gate(rate, floor):
    """(exit_code, message) for a measured rate against the floor."""
    if rate < floor - TOLERANCE:
        return 1, (
            f"coverage gate FAILED: line rate {rate:.4f} fell more "
            f"than {TOLERANCE:.2f} below the floor {floor:.4f}"
        )
    if rate > floor + RATCHET_SLACK:
        return 0, (
            f"coverage gate passed: line rate {rate:.4f} vs floor "
            f"{floor:.4f} — raise COVERAGE_FLOOR to lock in the gain"
        )
    return 0, (
        f"coverage gate passed: line rate {rate:.4f} vs floor {floor:.4f}"
    )


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    code, message = gate(read_line_rate(argv[1]), read_floor(argv[2]))
    print(message, file=sys.stderr if code else sys.stdout)
    return code


if __name__ == "__main__":
    sys.exit(main(sys.argv))
