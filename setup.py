from setuptools import setup

# Metadata lives in pyproject.toml; this shim enables legacy editable
# installs on environments without the `wheel` package.
setup()
