"""Feature extraction over template streams.

* :mod:`repro.features.counts` — template-frequency distributions over
  sliding time windows, used by the cosine-similarity analyses
  (Figure 3, section 3.3) and by K-means vPE grouping.
* :mod:`repro.features.tfidf` — TF-IDF vectors over windows of
  template ids, the input representation of the autoencoder and
  one-class SVM baselines (section 5.2).
"""

from repro.features.counts import (
    distribution_matrix,
    sliding_distributions,
    template_distribution,
)
from repro.features.tfidf import TfidfVectorizer

__all__ = [
    "template_distribution",
    "sliding_distributions",
    "distribution_matrix",
    "TfidfVectorizer",
]
