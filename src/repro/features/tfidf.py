"""TF-IDF vectorization over windows of template ids.

The autoencoder baseline (section 5.2) takes "TF-IDF (term-frequency,
inverse document frequency) features" following Zhang et al. (Big Data
2016): each fixed-size window of template ids is a document, each
template id a term.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


class TfidfVectorizer:
    """Fit IDF weights on template-id windows; transform to vectors.

    Documents are integer sequences; the vocabulary is fixed up front
    (template store vocabulary size) so vectors from different months
    stay aligned.
    """

    def __init__(self, vocabulary_size: int, smooth: bool = True) -> None:
        if vocabulary_size < 1:
            raise ValueError("vocabulary_size must be >= 1")
        self.vocabulary_size = vocabulary_size
        self.smooth = smooth
        self.idf_: np.ndarray = None  # type: ignore[assignment]

    @property
    def fitted(self) -> bool:
        """Whether :meth:`fit` has run."""
        return self.idf_ is not None

    def _term_counts(
        self, documents: Sequence[Sequence[int]]
    ) -> np.ndarray:
        counts = np.zeros(
            (len(documents), self.vocabulary_size), dtype=np.float64
        )
        for row, document in enumerate(documents):
            for term in document:
                if not 0 <= term < self.vocabulary_size:
                    raise ValueError(
                        f"term {term} outside vocabulary of size "
                        f"{self.vocabulary_size}"
                    )
                counts[row, term] += 1
        return counts

    def fit(
        self, documents: Sequence[Sequence[int]]
    ) -> "TfidfVectorizer":
        """Learn IDF weights from a document collection."""
        if not documents:
            raise ValueError("cannot fit on an empty document collection")
        counts = self._term_counts(documents)
        document_frequency = (counts > 0).sum(axis=0).astype(np.float64)
        n_documents = float(len(documents))
        if self.smooth:
            self.idf_ = (
                np.log((1.0 + n_documents) / (1.0 + document_frequency))
                + 1.0
            )
        else:
            self.idf_ = (
                np.log(n_documents / np.maximum(document_frequency, 1.0))
                + 1.0
            )
        return self

    def transform(
        self, documents: Sequence[Sequence[int]]
    ) -> np.ndarray:
        """Map documents to L2-normalized TF-IDF vectors."""
        if not self.fitted:
            raise RuntimeError("TfidfVectorizer.transform before fit")
        counts = self._term_counts(documents)
        lengths = counts.sum(axis=1, keepdims=True)
        term_frequency = counts / np.maximum(lengths, 1.0)
        vectors = term_frequency * self.idf_
        norms = np.linalg.norm(vectors, axis=1, keepdims=True)
        return vectors / np.maximum(norms, 1e-12)

    def fit_transform(
        self, documents: Sequence[Sequence[int]]
    ) -> np.ndarray:
        """Fit the IDF weights and transform ``documents`` in one pass."""
        return self.fit(documents).transform(documents)


def window_documents(
    template_ids: Sequence[int], window: int, stride: int = None
) -> List[List[int]]:
    """Chop a template-id stream into fixed-size documents."""
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if stride is None:
        stride = window
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")
    ids = list(template_ids)
    return [
        ids[start:start + window]
        for start in range(0, max(len(ids) - window + 1, 0), stride)
    ]
