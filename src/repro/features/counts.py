"""Template-frequency distributions over time windows.

Section 3.3 computes, per vPE, the "normalized frequency distribution"
of syslog templates inside sliding one-month windows, then compares
distributions with cosine similarity.  These helpers produce exactly
those vectors.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.logs.message import SyslogMessage
from repro.timeutil import MONTH


def template_distribution(
    messages: Iterable[SyslogMessage], vocabulary_size: int
) -> np.ndarray:
    """Normalized template-frequency vector of a message set.

    Messages must carry template ids.  Returns a vector of length
    ``vocabulary_size`` summing to 1 (or all zeros for an empty set).
    """
    counts = np.zeros(vocabulary_size, dtype=np.float64)
    total = 0
    for message in messages:
        if message.template_id is None:
            raise ValueError("message lacks a template id")
        if not 0 <= message.template_id < vocabulary_size:
            raise ValueError(
                f"template id {message.template_id} outside vocabulary "
                f"of size {vocabulary_size}"
            )
        counts[message.template_id] += 1
        total += 1
    if total:
        counts /= total
    return counts


def sliding_distributions(
    messages: Sequence[SyslogMessage],
    vocabulary_size: int,
    window: float = MONTH,
    step: float = MONTH,
    start: float = None,
    end: float = None,
) -> List[Tuple[float, np.ndarray]]:
    """Distribution per sliding window — ``(window_start, vector)``.

    Messages must be sorted by timestamp.  Windows are ``[t, t+window)``
    advancing by ``step``; ``start``/``end`` default to the message
    span.  Empty windows yield zero vectors, preserving alignment
    across vPEs.
    """
    if not messages:
        return []
    if start is None:
        start = messages[0].timestamp
    if end is None:
        end = messages[-1].timestamp
    times = np.fromiter(
        (message.timestamp for message in messages),
        dtype=np.float64,
        count=len(messages),
    )
    out: List[Tuple[float, np.ndarray]] = []
    window_start = start
    while window_start < end:
        lo = int(np.searchsorted(times, window_start, side="left"))
        hi = int(
            np.searchsorted(times, window_start + window, side="left")
        )
        out.append(
            (
                window_start,
                template_distribution(
                    messages[lo:hi], vocabulary_size
                ),
            )
        )
        window_start += step
    return out


def distribution_matrix(
    per_entity_messages: Sequence[Sequence[SyslogMessage]],
    vocabulary_size: int,
) -> np.ndarray:
    """Stack one whole-trace distribution per entity into a matrix.

    Rows are entities (vPEs), columns template ids; the K-means vPE
    grouping clusters these rows.
    """
    return np.stack(
        [
            template_distribution(messages, vocabulary_size)
            for messages in per_entity_messages
        ]
    )
