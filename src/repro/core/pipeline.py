"""The rolling monthly train/detect pipeline (section 5.1).

Training and testing follow the paper's protocol:

* month 0 trains the initial models (template store, vPE grouping, one
  LSTM per group);
* at the end of each month the models absorb that month's fresh normal
  data (incremental learning);
* each month's *detections* come from the model as it existed at the
  start of that month — no look-ahead;
* when a month opens with a distribution shift (software update), the
  adaptation variant fine-tunes a student model on the first week of
  new data (transfer learning) before scoring the rest.

Three variants reproduce Figure 7:

* ``universal`` grouping, no adaptation — the baseline curve;
* ``kmeans`` grouping, no adaptation — "vPE cust";
* ``kmeans`` grouping + adaptation — "vPE cust + adapt".
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.core.adaptation import update_detected
from repro.core.base import AnomalyDetector, ScoredStream
from repro.core.detector import LSTMAnomalyDetector
from repro.core.grouping import (
    VpeGrouping,
    fully_custom_grouping,
    group_vpes,
    universal_grouping,
)
from repro.core.mapping import MappingResult, map_anomalies, warning_clusters
from repro.core.thresholds import sweep_thresholds
from repro.evaluation.metrics import (
    DetectionCounts,
    PrecisionRecallPoint,
    best_operating_point,
)
from repro.logs.templates import TemplateStore
from repro.synthesis.dataset import FleetDataset
from repro.tickets.ticket import TroubleTicket
from repro.timeutil import DAY, MINUTE, MONTH

DetectorFactory = Callable[[TemplateStore, int], AnomalyDetector]


class _DefaultLstmFactory:
    """Picklable default detector factory.

    A plain class (not a bound method or closure) so worker processes
    can receive it without dragging the whole pipeline — dataset
    included — through pickle.
    """

    def __init__(self, max_templates: int) -> None:
        self.max_templates = max_templates

    def __call__(
        self, store: TemplateStore, seed: int
    ) -> AnomalyDetector:
        return LSTMAnomalyDetector(
            store,
            vocabulary_capacity=self.max_templates,
            seed=seed,
        )


def _strip_caches(detector: AnomalyDetector) -> None:
    """Drop forward-pass caches before pickling a trained detector."""
    model = getattr(detector, "model", None)
    if model is not None and hasattr(model, "clear_caches"):
        model.clear_caches()


def _fit_group(
    factory: DetectorFactory,
    store: TemplateStore,
    seed: int,
    streams: Sequence[Sequence],
) -> AnomalyDetector:
    """Worker entry: build and fit one group's detector."""
    detector = factory(store, seed)
    detector.fit_streams(streams)
    _strip_caches(detector)
    return detector


def _update_group(
    detector: AnomalyDetector, streams: Sequence[Sequence]
) -> AnomalyDetector:
    """Worker entry: one group's monthly incremental update."""
    detector.update_streams(streams)
    _strip_caches(detector)
    return detector


@dataclass(frozen=True)
class PipelineConfig:
    """Pipeline knobs.

    Attributes:
        grouping: ``"universal"`` (K=1), ``"kmeans"`` (the paper's
            customization) or ``"per-vpe"`` (K=N ablation).
        k: fixed group count for kmeans; ``None`` chooses by
            modularity.
        adaptation: enable drift-triggered transfer adaptation.
        adaptation_days: how much post-shift data the student
            fine-tunes on (the paper needs one week).
        drift_threshold: month-over-month cosine similarity below this
            triggers adaptation.
        predictive_period: early-warning window for ticket mapping.
        cluster_min_size: anomalies per warning signature (2 = paper).
        cluster_max_gap: max spacing inside a warning cluster.
        scrub_margin: normal-data scrub around tickets (3 days).
        store_fit_messages: cap on messages used to fit the template
            store initially.
        max_templates: model vocabulary capacity.
        workers: process-pool size for per-group training.  The K
            per-group detectors are independent, so initial fits and
            monthly updates parallelize across groups; ``workers=1``
            (the default) is the serial fallback, bit-identical to the
            historical behavior and what tests should use.  Each group
            keeps its own seed either way, so results are
            deterministic for a fixed ``workers`` setting.
        seed: base seed for grouping and detectors.
    """

    grouping: str = "kmeans"
    k: Optional[int] = None
    adaptation: bool = True
    adaptation_days: float = 7.0
    drift_threshold: float = 0.5
    predictive_period: float = DAY
    cluster_min_size: int = 2
    cluster_max_gap: float = 5 * MINUTE
    scrub_margin: float = 3 * DAY
    store_fit_messages: int = 30000
    max_templates: int = 256
    workers: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.grouping not in ("universal", "kmeans", "per-vpe"):
            raise ValueError(
                f"unknown grouping mode {self.grouping!r}"
            )
        if self.adaptation_days <= 0:
            raise ValueError("adaptation_days must be positive")
        if self.workers < 1:
            raise ValueError(
                f"workers must be >= 1, got {self.workers}"
            )


@dataclass
class MonthResult:
    """Everything detected and measured in one test month."""

    month_index: int
    start: float
    end: float
    streams: Dict[str, ScoredStream]
    tickets: List[TroubleTicket]
    adapted_groups: List[int] = field(default_factory=list)


@dataclass
class PipelineResult:
    """Detections for every test month plus evaluation helpers."""

    months: List[MonthResult]
    grouping: VpeGrouping
    config: PipelineConfig

    def pooled_streams(
        self, month_indices: Optional[Sequence[int]] = None
    ) -> Dict[str, ScoredStream]:
        """Concatenate per-vPE streams across the chosen months."""
        chosen = [
            month
            for month in self.months
            if month_indices is None or month.month_index in month_indices
        ]
        vpes = {vpe for month in chosen for vpe in month.streams}
        return {
            vpe: ScoredStream.concatenate(
                [
                    month.streams[vpe]
                    for month in chosen
                    if vpe in month.streams
                ]
            )
            for vpe in vpes
        }

    def pooled_tickets(
        self, month_indices: Optional[Sequence[int]] = None
    ) -> List[TroubleTicket]:
        """Tickets pooled across the selected months (all by default)."""
        return [
            ticket
            for month in self.months
            if month_indices is None or month.month_index in month_indices
            for ticket in month.tickets
        ]

    def prc(
        self,
        month_indices: Optional[Sequence[int]] = None,
        predictive_period: Optional[float] = None,
        n_thresholds: int = 25,
    ) -> List[PrecisionRecallPoint]:
        """PRC over the chosen months (default: all test months)."""
        period = (
            self.config.predictive_period
            if predictive_period is None
            else predictive_period
        )
        return sweep_thresholds(
            self.pooled_streams(month_indices),
            self.pooled_tickets(month_indices),
            predictive_period=period,
            n_thresholds=n_thresholds,
            cluster_min_size=self.config.cluster_min_size,
            cluster_max_gap=self.config.cluster_max_gap,
        )

    def choose_threshold(
        self, month_indices: Optional[Sequence[int]] = None
    ) -> float:
        """Operating threshold maximizing pooled F-measure."""
        return best_operating_point(self.prc(month_indices)).threshold

    def month_mapping(
        self, month: MonthResult, threshold: float
    ) -> MappingResult:
        """Map one month's detections at a threshold."""
        detections = {}
        for vpe, stream in month.streams.items():
            raw = stream.anomalies(threshold)
            if self.config.cluster_min_size > 1:
                raw = warning_clusters(
                    raw,
                    min_size=self.config.cluster_min_size,
                    max_gap=self.config.cluster_max_gap,
                )
            detections[vpe] = raw
        return map_anomalies(
            detections, month.tickets, self.config.predictive_period
        )

    def monthly_counts(self, threshold: float) -> List[DetectionCounts]:
        """Per-month detection counts at a fixed threshold (Figure 7)."""
        return [
            self.month_mapping(month, threshold).counts
            for month in self.months
        ]

    def monthly_false_alarms_per_day(
        self, threshold: float
    ) -> List[float]:
        """Per-month fleet false-alarm rate (the 14x-jump metric)."""
        out = []
        for month in self.months:
            mapping = self.month_mapping(month, threshold)
            out.append(
                mapping.false_alarms_per_day(month.end - month.start)
            )
        return out


class RollingPipeline:
    """Drive detectors through a :class:`FleetDataset` month by month.

    Args:
        dataset: the (synthetic) deployment trace.
        config: pipeline knobs.
        detector_factory: builds a detector given the shared template
            store and a per-group seed; defaults to the paper's LSTM
            with modest training caps.
    """

    def __init__(
        self,
        dataset: FleetDataset,
        config: Optional[PipelineConfig] = None,
        detector_factory: Optional[DetectorFactory] = None,
    ) -> None:
        self.dataset = dataset
        self.config = config or PipelineConfig()
        self.detector_factory = detector_factory or _DefaultLstmFactory(
            self.config.max_templates
        )

    # -- setup -------------------------------------------------------------

    def _n_months(self) -> int:
        span = self.dataset.end - self.dataset.start
        return int(round(span / MONTH))

    def _month_bounds(self, index: int) -> Tuple[float, float]:
        start = self.dataset.start + index * MONTH
        return start, start + MONTH

    def _build_grouping(
        self, store: TemplateStore, month0: Tuple[float, float]
    ) -> VpeGrouping:
        names = self.dataset.vpe_names
        if self.config.grouping == "universal":
            return universal_grouping(names)
        if self.config.grouping == "per-vpe":
            return fully_custom_grouping(names)
        per_vpe = {
            vpe: self.dataset.normal_messages(
                vpe, month0[0], month0[1], self.config.scrub_margin
            )
            for vpe in names
        }
        return group_vpes(
            per_vpe, store, k=self.config.k, seed=self.config.seed
        )

    def _group_normal_streams(
        self, grouping: VpeGrouping, group: int, start: float, end: float
    ) -> List[List]:
        """Per-member normal streams (windows must not span devices)."""
        return [
            self.dataset.normal_messages(
                vpe, start, end, self.config.scrub_margin
            )
            for vpe in grouping.members(group)
        ]

    # -- parallel per-group training -----------------------------------

    def _run_pool(self, jobs: Dict[int, Tuple]) -> Dict[int, AnomalyDetector]:
        """Run ``{group: (fn, *args)}`` jobs in a process pool.

        Workers return fully trained detectors (weights, optimizer and
        rng state intact); the parent re-binds the shared template
        store afterwards so later ``store.extend`` calls stay visible
        to every detector.
        """
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(self.config.workers, len(jobs))
        ) as pool:
            futures = {
                group: pool.submit(job[0], *job[1:])
                for group, job in jobs.items()
            }
            return {
                group: future.result()
                for group, future in futures.items()
            }

    def _rebind_store(
        self, detectors: Dict[int, AnomalyDetector], store: TemplateStore
    ) -> None:
        for detector in detectors.values():
            if hasattr(detector, "store"):
                detector.store = store

    def _fit_detectors(
        self,
        store: TemplateStore,
        grouping: VpeGrouping,
        bounds: Tuple[float, float],
    ) -> Dict[int, AnomalyDetector]:
        """Initial training of the K per-group detectors.

        Groups are independent (own seed, own member streams), so with
        ``workers > 1`` they train concurrently in a process pool.
        """
        config = self.config
        seeds = {
            group: config.seed + 17 * group for group in grouping.groups
        }
        streams = {
            group: self._group_normal_streams(
                grouping, group, bounds[0], bounds[1]
            )
            for group in grouping.groups
        }
        if config.workers > 1 and len(grouping.groups) > 1:
            detectors = self._run_pool(
                {
                    group: (
                        _fit_group,
                        self.detector_factory,
                        store,
                        seeds[group],
                        streams[group],
                    )
                    for group in grouping.groups
                }
            )
            self._rebind_store(detectors, store)
            telemetry.counter("train.groups_fitted").inc(
                len(detectors)
            )
            return detectors
        detectors = {}
        registry = telemetry.default_registry()
        for group in grouping.groups:
            detector = self.detector_factory(store, seeds[group])
            # Per-group loop: a whole-group fit is the batch boundary.
            with registry.timed("train.group_fit_seconds"):  # repro: noqa[RPR301]
                detector.fit_streams(streams[group])
            registry.counter("train.groups_fitted").inc()  # repro: noqa[RPR301]
            detectors[group] = detector
        return detectors

    def _update_detectors(
        self,
        detectors: Dict[int, AnomalyDetector],
        grouping: VpeGrouping,
        store: TemplateStore,
        bounds: Tuple[float, float],
    ) -> None:
        """End-of-month incremental update, parallel across groups."""
        config = self.config
        streams = {
            group: self._group_normal_streams(
                grouping, group, bounds[0], bounds[1]
            )
            for group in detectors
        }
        if config.workers > 1 and len(detectors) > 1:
            updated = self._run_pool(
                {
                    group: (_update_group, detector, streams[group])
                    for group, detector in detectors.items()
                }
            )
            self._rebind_store(updated, store)
            detectors.update(updated)
            telemetry.counter("train.groups_updated").inc(
                len(updated)
            )
            return
        registry = telemetry.default_registry()
        for group, detector in detectors.items():
            # Per-group loop: a whole-group update is the batch boundary.
            with registry.timed("train.group_update_seconds"):  # repro: noqa[RPR301]
                detector.update_streams(streams[group])
            registry.counter("train.groups_updated").inc()  # repro: noqa[RPR301]

    # -- main loop ----------------------------------------------------------

    def run(self) -> PipelineResult:
        """Execute the full monthly mine/train/score/update pipeline."""
        config = self.config
        month0 = self._month_bounds(0)
        store = TemplateStore()
        store.fit(
            self.dataset.aggregate_messages(
                start=month0[0], end=month0[1], normal_only=True
            )[: config.store_fit_messages]
        )
        grouping = self._build_grouping(store, month0)
        detectors = self._fit_detectors(store, grouping, month0)

        months: List[MonthResult] = []
        for index in range(1, self._n_months()):
            start, end = self._month_bounds(index)
            previous_start, previous_end = self._month_bounds(index - 1)
            adapted: List[int] = []
            if config.adaptation:
                adapted = self._maybe_adapt(
                    detectors,
                    grouping,
                    store,
                    (previous_start, previous_end),
                    (start, end),
                )
            streams: Dict[str, ScoredStream] = {}
            for group, detector in detectors.items():
                for vpe in grouping.members(group):
                    streams[vpe] = detector.score(
                        self.dataset.messages_between(vpe, start, end)
                    )
            months.append(
                MonthResult(
                    month_index=index,
                    start=start,
                    end=end,
                    streams=streams,
                    tickets=self.dataset.tickets_for(
                        start=start, end=end
                    ),
                    adapted_groups=adapted,
                )
            )
            # End-of-month incremental update with fresh normal data.
            # The store mines the month first so templates introduced
            # by updates get their own ids instead of all colliding on
            # the unknown id (which would mask real fault symptoms).
            store.extend(
                self.dataset.aggregate_messages(
                    start=start, end=end, normal_only=True
                )[: config.store_fit_messages]
            )
            self._update_detectors(
                detectors, grouping, store, (start, end)
            )
        return PipelineResult(
            months=months, grouping=grouping, config=config
        )

    def _maybe_adapt(
        self,
        detectors: Dict[int, AnomalyDetector],
        grouping: VpeGrouping,
        store: TemplateStore,
        previous_bounds: Tuple[float, float],
        current_bounds: Tuple[float, float],
    ) -> List[int]:
        """Fine-tune any group whose distribution shifted this month.

        Drift is measured *per member vPE* between last month's normal
        logs and the first ``adaptation_days`` of this month: software
        updates roll out to subsets of the fleet (section 3.3), so a
        group-aggregated distribution would dilute the shift of the
        updated members below the trigger.  Any drifting member makes
        the group's model adapt on the group's fresh week of data.
        """
        config = self.config
        adapted: List[int] = []
        probe_end = min(
            current_bounds[0] + config.adaptation_days * DAY,
            current_bounds[1],
        )
        for group in list(detectors):
            detector = detectors[group]
            drifted = False
            for vpe in grouping.members(group):
                previous = store.transform(
                    self.dataset.normal_messages(
                        vpe,
                        previous_bounds[0],
                        previous_bounds[1],
                        config.scrub_margin,
                    )
                )
                fresh = store.transform(
                    self.dataset.normal_messages(
                        vpe,
                        current_bounds[0],
                        probe_end,
                        config.scrub_margin,
                    )
                )
                if update_detected(
                    previous,
                    fresh,
                    store.vocabulary_size,
                    threshold=config.drift_threshold,
                ):
                    drifted = True
                    break
            if not drifted:
                continue
            raw_fresh = self._group_normal_streams(
                grouping, group, current_bounds[0], probe_end
            )
            if not any(raw_fresh):
                continue
            detectors[group] = detector.adapt_streams(raw_fresh)
            adapted.append(group)
        return adapted
