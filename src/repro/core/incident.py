"""Shared incident bookkeeping for anomaly clustering.

Three layers of the runtime accumulate "a burst of anomalies" state:
the per-device warning clusters of
:class:`~repro.core.online.OnlineMonitor`, the post-swap probation
accounting of
:class:`~repro.runtime.adapt.AdaptationController`, and the fleet
incidents of :class:`~repro.rca.RcaEngine`.  Each used to keep its
own ad-hoc tuples and counters; :class:`Incident` is the one
structure they all share — a device set, the anomaly tick/time span,
per-device peak scores, plain observation counters, and (for RCA) an
attached :class:`CauseHypothesis`.

Everything in an :class:`Incident` is plain JSON-serializable data
(:meth:`Incident.to_state` / :meth:`Incident.from_state`), so it can
ride service checkpoints unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["CauseHypothesis", "Incident"]


@dataclass(frozen=True)
class CauseHypothesis:
    """One ranked root-cause attribution for an incident.

    Attributes:
        kind: cause taxonomy label (one of the
            :class:`~repro.tickets.RootCause` values, e.g.
            ``"circuit"``).
        element: identifier of the blamed topology element (or the
            device itself for per-device attribution).
        confidence: attribution confidence in ``[0, 1]``.
    """

    kind: str
    element: str
    confidence: float

    def to_state(self) -> Dict[str, object]:
        """JSON-safe snapshot (checkpoints, journals)."""
        return {
            "kind": self.kind,
            "element": self.element,
            "confidence": float(self.confidence),
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "CauseHypothesis":
        """Rebuild from a :meth:`to_state` snapshot."""
        return cls(
            kind=str(state["kind"]),
            element=str(state["element"]),
            confidence=float(state["confidence"]),
        )


@dataclass
class Incident:
    """A burst of anomalies with its span, scores and attribution.

    The structure is deliberately permissive: the monitor uses one
    per device (``devices`` stays a singleton, ``times`` is the
    prunable cluster), the adapt controller uses one as a plain
    counter bundle (``n_anomalies``/``n_observed``/``n_ticks``), and
    the RCA engine uses the full shape — multi-device span plus a
    :class:`CauseHypothesis`.

    Attributes:
        devices: devices touched, in first-anomaly order.
        times: anomaly timestamps retained for clustering (callers
            may prune; counters below are never pruned).
        scores: per-device peak anomaly score.
        first_time: timestamp of the first recorded anomaly.
        last_time: timestamp of the newest recorded anomaly.
        first_tick: service tick of the first recorded anomaly.
        last_tick: service tick of the newest recorded anomaly.
        n_anomalies: total anomalies recorded (monotonic).
        n_observed: total scored observations folded in (probation
            keeps kept-message counts here; monotonic).
        n_ticks: ticks folded in via :meth:`observe_tick`.
        cause: the attributed root cause, once assigned.
    """

    devices: List[str] = field(default_factory=list)
    times: List[float] = field(default_factory=list)
    scores: Dict[str, float] = field(default_factory=dict)
    first_time: Optional[float] = None
    last_time: Optional[float] = None
    first_tick: Optional[int] = None
    last_tick: Optional[int] = None
    n_anomalies: int = 0
    n_observed: int = 0
    n_ticks: int = 0
    cause: Optional[CauseHypothesis] = None

    @property
    def peak_score(self) -> float:
        """Highest per-device peak, ``0.0`` while empty."""
        if not self.scores:
            return 0.0
        return max(self.scores.values())

    def record(
        self,
        device: str,
        time: float,
        score: float,
        tick: Optional[int] = None,
    ) -> None:
        """Fold one anomaly into the incident."""
        if device not in self.scores:
            self.devices.append(device)
            self.scores[device] = float(score)
        elif score > self.scores[device]:
            self.scores[device] = float(score)
        self.times.append(float(time))
        if self.first_time is None:
            self.first_time = float(time)
        self.last_time = float(time)
        if tick is not None:
            if self.first_tick is None:
                self.first_tick = int(tick)
            self.last_tick = int(tick)
        self.n_anomalies += 1

    def prune(self, now: float, max_gap: float) -> None:
        """Drop retained times that no longer chain to ``now``.

        Implements the warning-cluster rule: an anomaly further than
        ``max_gap`` behind the newest arrival leaves the cluster.
        When the whole cluster expires the per-device peaks reset
        too — a stale peak must not inflate the next cluster.
        """
        kept = [t for t in self.times if now - t <= max_gap]
        if not kept:
            self.scores = {key: 0.0 for key in self.scores}
        self.times = kept

    def observe_tick(self, anomalies: int, observed: int) -> None:
        """Fold one tick's aggregate counts (probation bookkeeping)."""
        self.n_anomalies += int(anomalies)
        self.n_observed += int(observed)
        self.n_ticks += 1

    def anomaly_rate(self) -> float:
        """Anomalies per kept observation (``n_observed`` floor 1)."""
        return self.n_anomalies / max(1, self.n_observed)

    def reset(self) -> None:
        """Clear everything back to a fresh incident."""
        self.devices = []
        self.times = []
        self.scores = {}
        self.first_time = None
        self.last_time = None
        self.first_tick = None
        self.last_tick = None
        self.n_anomalies = 0
        self.n_observed = 0
        self.n_ticks = 0
        self.cause = None

    def to_state(self) -> Dict[str, object]:
        """JSON-safe snapshot for checkpoints."""
        return {
            "devices": list(self.devices),
            "times": [float(t) for t in self.times],
            "scores": {
                key: float(value) for key, value in self.scores.items()
            },
            "first_time": self.first_time,
            "last_time": self.last_time,
            "first_tick": self.first_tick,
            "last_tick": self.last_tick,
            "n_anomalies": int(self.n_anomalies),
            "n_observed": int(self.n_observed),
            "n_ticks": int(self.n_ticks),
            "cause": (
                None if self.cause is None else self.cause.to_state()
            ),
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "Incident":
        """Rebuild from a :meth:`to_state` snapshot."""
        cause = state.get("cause")
        return cls(
            devices=[str(d) for d in state["devices"]],
            times=[float(t) for t in state["times"]],
            scores={
                str(key): float(value)
                for key, value in state["scores"].items()
            },
            first_time=(
                None
                if state["first_time"] is None
                else float(state["first_time"])
            ),
            last_time=(
                None
                if state["last_time"] is None
                else float(state["last_time"])
            ),
            first_tick=(
                None
                if state["first_tick"] is None
                else int(state["first_tick"])
            ),
            last_tick=(
                None
                if state["last_tick"] is None
                else int(state["last_tick"])
            ),
            n_anomalies=int(state["n_anomalies"]),
            n_observed=int(state["n_observed"]),
            n_ticks=int(state["n_ticks"]),
            cause=(
                None
                if cause is None
                else CauseHypothesis.from_state(cause)
            ),
        )
