"""The LSTM anomaly detector (section 4.2).

The detector treats syslogs as a language over the mined template set:
given the previous ``k`` ``(template_id, gap_bucket)`` tuples, a
2-LSTM-layer + 1-dense network (the paper's final architecture)
predicts a distribution over the next template.  At detection time the
negative log-likelihood of the template that actually arrived is the
anomaly score; thresholding it yields anomalies.

Training uses only "normal" (ticket-scrubbed) messages, with the
paper's multi-round *minority over-sampling*: after each round, normal
training patterns the model still mis-scores are over-sampled and the
model is refined, until the training false-positive rate stops
improving.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.core.base import (
    AnomalyDetector,
    ScoredStream,
    clamp_template_ids,
)
from repro.logs.message import SyslogMessage
from repro.logs.sequences import N_GAP_BUCKETS, SequenceWindower
from repro.logs.templates import TemplateStore
from repro.nn import (
    GRU,
    LSTM,
    Adam,
    Dense,
    Sequential,
    SoftmaxCrossEntropy,
    TupleEmbedding,
)

#: Names of the model's layers, bottom to top.  The transfer-learning
#: adaptation (section 4.3) freezes the lower recurrent layer and
#: fine-tunes the rest.  The embedding stays trainable because software
#: updates introduce *new* template ids whose embeddings start
#: untrained — freezing them would make the new vocabulary unlearnable.
LAYER_NAMES: Tuple[str, ...] = ("embedding", "lstm1", "lstm2", "output")
LOWER_LAYERS: Tuple[str, ...] = ("lstm1",)
TOP_LAYERS: Tuple[str, ...] = ("embedding", "lstm2", "output")


class LSTMAnomalyDetector(AnomalyDetector):
    """LSTM template-language-model detector.

    Args:
        store: the (shared) template store mapping messages to ids.
            The store may keep growing via ``extend``; the model
            allocates ``vocabulary_capacity`` output classes up front
            so it survives vocabulary growth.
        vocabulary_capacity: maximum template ids the model supports.
        window: context length ``k``.
        hidden: hidden sizes of the two LSTM layers.
        id_dim / gap_dim: embedding dimensions.
        epochs: initial-training epochs per over-sampling round.
        update_epochs: epochs for monthly incremental updates.
        batch_size / learning_rate: optimizer schedule.
        max_train_samples: cap on training windows per fit/update call
            (windows are subsampled uniformly beyond it) to bound the
            numpy training cost.
        oversample_rounds: maximum over-sampling refinement rounds.
        oversample_quantile: training samples below this likelihood
            quantile count as "misclassified normal patterns".
        cell: recurrent cell type, ``"lstm"`` (the paper) or ``"gru"``
            (the lighter alternative, for the cell ablation).
        dtype: model precision — ``np.float64`` (default, bitwise
            reproducible against the reference implementation) or
            ``np.float32`` (the opt-in fast path).
        seed: reproducibility seed.
    """

    def __init__(
        self,
        store: TemplateStore,
        vocabulary_capacity: int = 256,
        window: int = 10,
        hidden: Tuple[int, int] = (32, 32),
        id_dim: int = 24,
        gap_dim: int = 4,
        epochs: int = 3,
        update_epochs: int = 1,
        batch_size: int = 64,
        learning_rate: float = 0.003,
        max_train_samples: int = 12000,
        oversample_rounds: int = 2,
        oversample_quantile: float = 0.02,
        cell: str = "lstm",
        dtype: "np.dtype" = np.float64,
        seed: int = 0,
    ) -> None:
        if cell not in ("lstm", "gru"):
            raise ValueError(
                f"cell must be 'lstm' or 'gru', got {cell!r}"
            )
        if vocabulary_capacity < store.vocabulary_size:
            raise ValueError(
                "vocabulary_capacity smaller than the store's current "
                f"vocabulary ({store.vocabulary_size})"
            )
        self.store = store
        self.vocabulary_capacity = vocabulary_capacity
        self.windower = SequenceWindower(window)
        self.epochs = epochs
        self.update_epochs = update_epochs
        self.batch_size = batch_size
        self.max_train_samples = max_train_samples
        self.oversample_rounds = oversample_rounds
        self.oversample_quantile = oversample_quantile
        self.cell = cell
        self.dtype = np.dtype(dtype)
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.loss = SoftmaxCrossEntropy()
        self.optimizer = Adam(learning_rate)
        recurrent = LSTM if cell == "lstm" else GRU
        # Layer names stay "lstm1"/"lstm2" for both cells so the
        # freeze policy and saved weights are cell-agnostic.
        self.model = Sequential(
            [
                TupleEmbedding(
                    vocabulary_capacity,
                    N_GAP_BUCKETS,
                    id_dim=id_dim,
                    gap_dim=gap_dim,
                    name="embedding",
                    dtype=self.dtype,
                ),
                recurrent(
                    hidden[0],
                    return_sequences=True,
                    name="lstm1",
                    dtype=self.dtype,
                ),
                recurrent(hidden[1], name="lstm2", dtype=self.dtype),
                Dense(
                    vocabulary_capacity, name="output", dtype=self.dtype
                ),
            ],
            rng=np.random.default_rng(seed + 1),
        ).build((window, 2))
        self._fitted = False

    # -- data preparation ------------------------------------------------

    def _windows(
        self, messages: Sequence[SyslogMessage]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Annotate, window and clip a message stream.

        Uses the array-first path: template ids and timestamps go
        straight into the windower without building annotated message
        copies or per-message event objects.
        """
        ids = self.store.match_ids(messages)
        times = np.fromiter(
            (message.timestamp for message in messages),
            dtype=np.float64,
            count=len(messages),
        )
        contexts, targets, times = self.windower.windows_from_arrays(
            ids, times
        )
        # Ids beyond capacity fold onto the unknown id (0).  The
        # windower returns freshly built arrays, so clamp in place
        # instead of copying the whole context tensor.
        clamp_template_ids(contexts[..., 0], self.vocabulary_capacity)
        clamp_template_ids(targets, self.vocabulary_capacity)
        return contexts, targets, times

    def _subsample(
        self, contexts: np.ndarray, targets: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        n = contexts.shape[0]
        if n <= self.max_train_samples:
            return contexts, targets
        index = self.rng.choice(
            n, size=self.max_train_samples, replace=False
        )
        index.sort()
        return contexts[index], targets[index]

    def _windows_multi(
        self, streams: Sequence[Sequence[SyslogMessage]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Window each stream separately and pool the samples.

        Grouped models train on several devices' logs; windowing the
        time-merged union would interleave devices and destroy the
        per-device sequential structure the LSTM is meant to learn.
        """
        context_parts: List[np.ndarray] = []
        target_parts: List[np.ndarray] = []
        for stream in streams:
            contexts, targets, _ = self._windows(stream)
            if contexts.shape[0]:
                context_parts.append(contexts)
                target_parts.append(targets)
        if not context_parts:
            window = self.windower.window
            return (
                np.empty((0, window, 2), dtype=np.int64),
                np.empty(0, dtype=np.int64),
            )
        return (
            np.concatenate(context_parts),
            np.concatenate(target_parts),
        )

    # -- training ----------------------------------------------------------

    def fit(
        self, messages: Sequence[SyslogMessage]
    ) -> "LSTMAnomalyDetector":
        """Initial training on normal messages with over-sampling."""
        return self.fit_streams([messages])

    def fit_streams(
        self, streams: Sequence[Sequence[SyslogMessage]]
    ) -> "LSTMAnomalyDetector":
        """Initial training on several per-device normal streams."""
        contexts, targets = self._windows_multi(streams)
        contexts, targets = self._subsample(contexts, targets)
        if contexts.shape[0] == 0:
            raise ValueError(
                "not enough messages to form a single training window"
            )
        self.model.fit(
            contexts,
            targets,
            self.loss,
            self.optimizer,
            epochs=self.epochs,
            batch_size=self.batch_size,
        )
        self._fitted = True
        self._oversample_minority(contexts, targets)
        return self

    def _oversample_minority(
        self, contexts: np.ndarray, targets: np.ndarray
    ) -> None:
        """Multi-round over-sampling of mis-scored normal patterns.

        Section 4.2: test the model on its own training data, find
        normal patterns misclassified as anomalies (lowest
        log-likelihoods), over-sample them plus a random sample of the
        rest, and refine; exit when the false-positive rate stops
        improving.
        """
        if self.oversample_rounds == 0 or contexts.shape[0] < 10:
            return
        previous_rate = np.inf
        for _ in range(self.oversample_rounds):
            likelihoods = self._log_likelihoods(contexts, targets)
            cutoff = np.quantile(likelihoods, self.oversample_quantile)
            # Only *known* rare templates are minority patterns worth
            # boosting.  Windows whose target is the unknown id are
            # one-off novelty: duplicating them would teach the model
            # that unknown templates are normal — exactly the signal
            # fault symptoms produce.
            misclassified = (likelihoods <= cutoff) & (targets != 0)
            rate = float(misclassified.mean())
            if rate >= previous_rate or not misclassified.any():
                break
            previous_rate = rate
            minority_index = np.flatnonzero(misclassified)
            majority_index = np.flatnonzero(~misclassified)
            sample_size = min(
                majority_index.size, 4 * minority_index.size
            )
            sampled_majority = self.rng.choice(
                majority_index, size=sample_size, replace=False
            )
            boosted = np.concatenate(
                [np.repeat(minority_index, 4), sampled_majority]
            )
            self.rng.shuffle(boosted)
            self.model.fit(
                contexts[boosted],
                targets[boosted],
                self.loss,
                self.optimizer,
                epochs=1,
                batch_size=self.batch_size,
            )

    def update(
        self, messages: Sequence[SyslogMessage]
    ) -> "LSTMAnomalyDetector":
        """Monthly incremental (online) training on fresh normal data."""
        return self.update_streams([messages])

    def update_streams(
        self, streams: Sequence[Sequence[SyslogMessage]]
    ) -> "LSTMAnomalyDetector":
        """Incremental training on several per-device streams."""
        if not self._fitted:
            return self.fit_streams(streams)
        contexts, targets = self._windows_multi(streams)
        contexts, targets = self._subsample(contexts, targets)
        if contexts.shape[0] == 0:
            return self
        self.model.fit(
            contexts,
            targets,
            self.loss,
            self.optimizer,
            epochs=self.update_epochs,
            batch_size=self.batch_size,
        )
        return self

    # -- scoring -------------------------------------------------------------

    def _log_likelihoods(
        self, contexts: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        logits = self.model.predict(contexts)
        return SoftmaxCrossEntropy.log_likelihoods(logits, targets)

    def score(self, messages: Sequence[SyslogMessage]) -> ScoredStream:
        """Negative log-likelihood per message (higher = more anomalous).

        The first ``window`` messages of the stream have no full
        context and are not scored, mirroring the paper's setup where
        a model is always warm by detection time.
        """
        if not self._fitted:
            raise RuntimeError("detector not fitted")
        contexts, targets, times = self._windows(messages)
        if contexts.shape[0] == 0:
            return ScoredStream(np.empty(0), np.empty(0))
        likelihoods = self._log_likelihoods(contexts, targets)
        return ScoredStream(times, -likelihoods)

    def score_topk(
        self, messages: Sequence[SyslogMessage]
    ) -> ScoredStream:
        """Prediction-rank score (the DeepLog detection rule).

        Instead of thresholding the log-likelihood, DeepLog (Du et
        al., CCS 2017) flags a log when it is not among the model's
        top-k next-template predictions.  The returned score is the
        observed template's rank in the predicted distribution
        (0 = most probable); thresholding at ``k - 0.5`` realizes the
        "not in top k" rule, and sweeping the threshold traces the
        rank-based PRC for comparison against the paper's
        likelihood rule.
        """
        if not self._fitted:
            raise RuntimeError("detector not fitted")
        contexts, targets, times = self._windows(messages)
        if contexts.shape[0] == 0:
            return ScoredStream(np.empty(0), np.empty(0))
        logits = self.model.predict(contexts)
        # rank of the target: number of classes scored strictly higher
        target_logits = logits[
            np.arange(logits.shape[0]), targets
        ]
        ranks = (
            logits > target_logits[:, None]
        ).sum(axis=1).astype(np.float64)
        return ScoredStream(times, ranks)

    # -- adaptation --------------------------------------------------------

    def adapt(
        self,
        messages: Sequence[SyslogMessage],
        freeze: Tuple[str, ...] = LOWER_LAYERS,
        epochs: int = 3,
    ) -> "LSTMAnomalyDetector":
        """Transfer-learning adaptation (section 4.3).

        Mines the new messages into the shared template store, clones
        this (teacher) detector into a student, freezes the ``freeze``
        layers and fine-tunes the remaining layers on the new data —
        one week of which suffices in the paper.  The teacher is left
        untouched; the adapted student is returned.
        """
        return self.adapt_streams(
            [messages], freeze=freeze, epochs=epochs
        )

    def adapt_streams(
        self,
        streams: Sequence[Sequence[SyslogMessage]],
        freeze: Tuple[str, ...] = LOWER_LAYERS,
        epochs: int = 3,
    ) -> "LSTMAnomalyDetector":
        """Per-device-stream counterpart of :meth:`adapt`."""
        telemetry.counter("adapt.fine_tune_events").inc()
        for stream in streams:
            self.store.extend(list(stream))
        student = self.clone()
        student.model.freeze(list(freeze))
        saved_epochs = student.epochs
        saved_rounds = student.oversample_rounds
        student.epochs = epochs
        # Over-sampling needs a stable model; skip it while fine-tuning.
        student.oversample_rounds = 0
        try:
            with telemetry.timed("adapt.fine_tune_seconds"):
                student.fit_streams(streams)
        finally:
            student.epochs = saved_epochs
            student.oversample_rounds = saved_rounds
            student.model.unfreeze(list(freeze))
        return student

    # -- persistence ---------------------------------------------------------

    def save_weights(self, path: str) -> None:
        """Persist the model weights (``.npz``); pair with a
        serialized template store for full persistence."""
        self.model.save(path)

    def restore_weights(self, path: str) -> None:
        """Load weights saved by :meth:`save_weights` and mark the
        detector ready for scoring."""
        self.model.load(path)
        self._fitted = True

    # -- cloning (used by transfer adaptation) ---------------------------

    def clone(self) -> "LSTMAnomalyDetector":
        """Copy the detector (model weights included, optimizer fresh)."""
        twin = LSTMAnomalyDetector.__new__(LSTMAnomalyDetector)
        twin.__dict__.update(self.__dict__)
        twin.model = self.model.clone()
        twin.optimizer = Adam(self.optimizer.learning_rate)
        twin.rng = np.random.default_rng(self.rng.integers(2**63))
        return twin
