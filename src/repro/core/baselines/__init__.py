"""Comparison methods of section 5.2.

* :class:`AutoencoderDetector` — deep but non-sequential: a
  feed-forward autoencoder over TF-IDF window features; the
  reconstruction error is the anomaly score.
* :class:`OneClassSvmDetector` — shallow: a one-class SVM over the
  same TF-IDF features.
* :class:`PcaDetector` — the PCA residual method of Xu et al. (2009),
  an extra reference point beyond the paper's two baselines.

* :class:`IsolationForestDetector` — the industrial-default tabular
  anomaly detector (Liu et al., 2008), another extra reference.

All baselines share the windowed TF-IDF front end so the comparison
isolates the modelling approach, and all implement the common
:class:`~repro.core.base.AnomalyDetector` protocol.
"""

from repro.core.baselines.windowed import WindowedFeatureDetector
from repro.core.baselines.autoencoder import AutoencoderDetector
from repro.core.baselines.iforest import IsolationForestDetector
from repro.core.baselines.ocsvm import OneClassSvmDetector
from repro.core.baselines.pca import PcaDetector

__all__ = [
    "WindowedFeatureDetector",
    "AutoencoderDetector",
    "OneClassSvmDetector",
    "IsolationForestDetector",
    "PcaDetector",
]
