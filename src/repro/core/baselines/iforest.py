"""Isolation-forest baseline detector over TF-IDF window features.

Not in the paper; included as the "industrial default" reference for
the method-comparison bench (see :mod:`repro.ml.isolation_forest`).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.baselines.windowed import WindowedFeatureDetector
from repro.logs.templates import TemplateStore
from repro.ml.isolation_forest import IsolationForest


class IsolationForestDetector(WindowedFeatureDetector):
    """Isolation forest over TF-IDF window features.

    Like the OC-SVM baseline, incremental updates refit on a sliding
    buffer of recent training vectors.
    """

    def __init__(
        self,
        store: TemplateStore,
        vocabulary_capacity: int = 256,
        window: int = 20,
        stride: int = 5,
        n_trees: int = 100,
        sample_size: int = 256,
        buffer_windows: int = 12000,
        max_train_windows: int = 8000,
        seed: int = 0,
    ) -> None:
        super().__init__(
            store,
            vocabulary_capacity=vocabulary_capacity,
            window=window,
            stride=stride,
            max_train_windows=max_train_windows,
            seed=seed,
        )
        self.n_trees = n_trees
        self.sample_size = sample_size
        self.buffer_windows = buffer_windows
        self._buffer: Optional[np.ndarray] = None
        self._forest: Optional[IsolationForest] = None

    def _fit_vectors(self, vectors: np.ndarray, initial: bool) -> None:
        if initial or self._buffer is None:
            self._buffer = vectors
        else:
            self._buffer = np.concatenate([self._buffer, vectors])
            if self._buffer.shape[0] > self.buffer_windows:
                self._buffer = self._buffer[-self.buffer_windows:]
        self._forest = IsolationForest(
            n_trees=self.n_trees,
            sample_size=self.sample_size,
            rng=np.random.default_rng(self.rng.integers(2**63)),
        ).fit(self._buffer)

    def _score_vectors(self, vectors: np.ndarray) -> np.ndarray:
        if self._forest is None:
            raise RuntimeError("forest not fitted")
        return self._forest.score_samples(vectors)
