"""Shared TF-IDF window front end for the baseline detectors.

Both baselines consume fixed-size sliding windows of template ids
turned into TF-IDF vectors (Zhang et al., Big Data 2016).  This base
class handles annotation, windowing, vector building and the score
stream plumbing; subclasses implement ``_fit_vectors`` and
``_score_vectors``.
"""

from __future__ import annotations

import abc
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.base import AnomalyDetector, ScoredStream
from repro.features.tfidf import TfidfVectorizer
from repro.logs.message import SyslogMessage
from repro.logs.templates import TemplateStore


class WindowedFeatureDetector(AnomalyDetector):
    """Base for detectors over TF-IDF window features.

    Args:
        store: shared template store.
        vocabulary_capacity: fixed feature dimension (ids beyond it
            fold onto the unknown id so the store may keep growing).
        window: messages per feature window.
        stride: windows advance by this many messages.
        max_train_windows: cap on training windows per fit call.
        seed: reproducibility seed.
    """

    def __init__(
        self,
        store: TemplateStore,
        vocabulary_capacity: int = 256,
        window: int = 20,
        stride: int = 5,
        max_train_windows: int = 8000,
        seed: int = 0,
    ) -> None:
        if window < 1 or stride < 1:
            raise ValueError("window and stride must be >= 1")
        self.store = store
        self.vocabulary_capacity = vocabulary_capacity
        self.window = window
        self.stride = stride
        self.max_train_windows = max_train_windows
        self.rng = np.random.default_rng(seed)
        self.vectorizer = TfidfVectorizer(vocabulary_capacity)
        self._fitted = False

    # -- windowing ---------------------------------------------------------

    def _documents(
        self, messages: Sequence[SyslogMessage]
    ) -> Tuple[List[List[int]], np.ndarray]:
        """Sliding windows of template ids plus window-end timestamps."""
        annotated = self.store.transform(list(messages))
        ids = [
            message.template_id
            if (message.template_id or 0) < self.vocabulary_capacity
            else 0
            for message in annotated
        ]
        times = [message.timestamp for message in annotated]
        documents: List[List[int]] = []
        ends: List[float] = []
        for start in range(
            0, max(len(ids) - self.window + 1, 0), self.stride
        ):
            documents.append(ids[start:start + self.window])
            ends.append(times[start + self.window - 1])
        return documents, np.asarray(ends, dtype=np.float64)

    def _train_vectors(
        self,
        streams: Sequence[Sequence[SyslogMessage]],
        refit_idf: bool,
    ) -> np.ndarray:
        # Windows never span devices: documents are built per stream
        # and pooled, mirroring the LSTM detector's grouped training.
        documents: List[List[int]] = []
        for stream in streams:
            stream_documents, _ = self._documents(stream)
            documents.extend(stream_documents)
        if not documents:
            raise ValueError(
                "not enough messages to form a feature window"
            )
        if len(documents) > self.max_train_windows:
            index = self.rng.choice(
                len(documents),
                size=self.max_train_windows,
                replace=False,
            )
            documents = [documents[i] for i in sorted(index)]
        if refit_idf or not self.vectorizer.fitted:
            return self.vectorizer.fit_transform(documents)
        return self.vectorizer.transform(documents)

    # -- protocol -----------------------------------------------------------

    def fit(
        self, messages: Sequence[SyslogMessage]
    ) -> "WindowedFeatureDetector":
        """Fit feature statistics on one normal-period stream."""
        return self.fit_streams([messages])

    def fit_streams(
        self, streams: Sequence[Sequence[SyslogMessage]]
    ) -> "WindowedFeatureDetector":
        """Fit on several per-vPE streams at once."""
        vectors = self._train_vectors(streams, refit_idf=True)
        self._fit_vectors(vectors, initial=True)
        self._fitted = True
        return self

    def update(
        self, messages: Sequence[SyslogMessage]
    ) -> "WindowedFeatureDetector":
        """Incrementally refit on newly observed normal messages."""
        return self.update_streams([messages])

    def update_streams(
        self, streams: Sequence[Sequence[SyslogMessage]]
    ) -> "WindowedFeatureDetector":
        """Incremental update over several per-vPE streams."""
        if not self._fitted:
            return self.fit_streams(streams)
        try:
            vectors = self._train_vectors(streams, refit_idf=False)
        except ValueError:
            return self
        self._fit_vectors(vectors, initial=False)
        return self

    def score(self, messages: Sequence[SyslogMessage]) -> ScoredStream:
        """Anomaly score per feature window of ``messages``."""
        if not self._fitted:
            raise RuntimeError("detector not fitted")
        documents, times = self._documents(messages)
        if not documents:
            return ScoredStream(np.empty(0), np.empty(0))
        vectors = self.vectorizer.transform(documents)
        return ScoredStream(times, self._score_vectors(vectors))

    # -- subclass hooks -------------------------------------------------------

    @abc.abstractmethod
    def _fit_vectors(self, vectors: np.ndarray, initial: bool) -> None:
        """Train (or incrementally update) on TF-IDF vectors."""

    @abc.abstractmethod
    def _score_vectors(self, vectors: np.ndarray) -> np.ndarray:
        """Anomaly scores, higher = more anomalous."""
