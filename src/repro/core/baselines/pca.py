"""PCA-subspace baseline (Xu et al., SOSP 2009).

Not one of the paper's two comparison methods, but the canonical
unsupervised log-anomaly detector of the related work (section 2);
included as an extra reference point for the method-comparison bench.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.baselines.windowed import WindowedFeatureDetector
from repro.logs.templates import TemplateStore
from repro.ml.pca import PCADetector


class PcaDetector(WindowedFeatureDetector):
    """Residual-subspace scoring over TF-IDF window features."""

    def __init__(
        self,
        store: TemplateStore,
        vocabulary_capacity: int = 256,
        window: int = 20,
        stride: int = 5,
        variance_retained: float = 0.95,
        buffer_windows: int = 12000,
        max_train_windows: int = 8000,
        seed: int = 0,
    ) -> None:
        super().__init__(
            store,
            vocabulary_capacity=vocabulary_capacity,
            window=window,
            stride=stride,
            max_train_windows=max_train_windows,
            seed=seed,
        )
        self.variance_retained = variance_retained
        self.buffer_windows = buffer_windows
        self._buffer: Optional[np.ndarray] = None
        self._pca: Optional[PCADetector] = None

    def _fit_vectors(self, vectors: np.ndarray, initial: bool) -> None:
        if initial or self._buffer is None:
            self._buffer = vectors
        else:
            self._buffer = np.concatenate([self._buffer, vectors])
            if self._buffer.shape[0] > self.buffer_windows:
                self._buffer = self._buffer[-self.buffer_windows:]
        self._pca = PCADetector(
            variance_retained=self.variance_retained
        ).fit(self._buffer)

    def _score_vectors(self, vectors: np.ndarray) -> np.ndarray:
        if self._pca is None:
            raise RuntimeError("PCA not fitted")
        return self._pca.score_samples(vectors)
