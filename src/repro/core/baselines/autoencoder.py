"""Autoencoder baseline (section 5.2).

"A feed-forward multi-layer neural network in which the desired output
is the input itself.  After training the auto-encoder with normal
data, the reconstruction error can be used as an anomaly indicator."
Input features are TF-IDF vectors over template-id windows, following
Zhang et al. (Big Data 2016).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.baselines.windowed import WindowedFeatureDetector
from repro.logs.templates import TemplateStore
from repro.nn import Adam, Dense, MeanSquaredError, Sequential


class AutoencoderDetector(WindowedFeatureDetector):
    """TF-IDF autoencoder with reconstruction-error scoring.

    Args:
        store: shared template store.
        hidden: encoder widths; the decoder mirrors them.
        bottleneck: central code dimension.
        epochs / update_epochs / learning_rate / batch_size: schedule.
        (window/stride/etc. as in the base class.)
    """

    def __init__(
        self,
        store: TemplateStore,
        vocabulary_capacity: int = 256,
        window: int = 20,
        stride: int = 5,
        hidden: int = 64,
        bottleneck: int = 16,
        epochs: int = 10,
        update_epochs: int = 3,
        learning_rate: float = 0.003,
        batch_size: int = 64,
        max_train_windows: int = 8000,
        seed: int = 0,
    ) -> None:
        super().__init__(
            store,
            vocabulary_capacity=vocabulary_capacity,
            window=window,
            stride=stride,
            max_train_windows=max_train_windows,
            seed=seed,
        )
        self.epochs = epochs
        self.update_epochs = update_epochs
        self.batch_size = batch_size
        self.loss = MeanSquaredError()
        self.optimizer = Adam(learning_rate)
        self.model = Sequential(
            [
                Dense(hidden, activation="relu", name="encoder1"),
                Dense(bottleneck, activation="relu", name="code"),
                Dense(hidden, activation="relu", name="decoder1"),
                Dense(
                    vocabulary_capacity,
                    activation="linear",
                    name="reconstruction",
                ),
            ],
            rng=np.random.default_rng(seed + 1),
        ).build((vocabulary_capacity,))

    def _fit_vectors(self, vectors: np.ndarray, initial: bool) -> None:
        epochs = self.epochs if initial else self.update_epochs
        self.model.fit(
            vectors,
            vectors,
            self.loss,
            self.optimizer,
            epochs=epochs,
            batch_size=self.batch_size,
        )

    def _score_vectors(self, vectors: np.ndarray) -> np.ndarray:
        reconstructed = self.model.predict(vectors)
        diff = reconstructed - vectors
        return np.mean(diff * diff, axis=1)

    def freeze_encoder(self) -> None:
        """Freeze the encoder for transfer-style adaptation."""
        self.model.freeze(["encoder1", "code"])

    def unfreeze_encoder(self) -> None:
        """Re-enable gradient updates for the frozen encoder layers."""
        self.model.unfreeze(["encoder1", "code"])

    def adapt(self, messages: Sequence) -> "AutoencoderDetector":
        """Transfer-style adaptation: fine-tune with a frozen encoder.

        Mirrors the LSTM detector's scheme so the section 5.2
        comparison applies the same adaptation mechanism to every
        method.  The store is extended first so post-update templates
        receive their own feature dimensions.
        """
        return self.adapt_streams([messages])

    def adapt_streams(self, streams: Sequence) -> "AutoencoderDetector":
        """Per-device-stream counterpart of :meth:`adapt`."""
        for stream in streams:
            self.store.extend(list(stream))
        self.freeze_encoder()
        try:
            self.update_streams(streams)
        finally:
            self.unfreeze_encoder()
        return self
