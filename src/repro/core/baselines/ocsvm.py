"""One-class SVM baseline (section 5.2).

The shallow comparison: a ν-one-class SVM over the same TF-IDF window
features.  The paper's point — that feature engineering plus shallow
models underperform sequence models on complex, voluminous syslogs —
is reproduced by this detector's PRC sitting well under the LSTM's.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.baselines.windowed import WindowedFeatureDetector
from repro.logs.templates import TemplateStore
from repro.ml.ocsvm import OneClassSVM


class OneClassSvmDetector(WindowedFeatureDetector):
    """ν-OC-SVM over TF-IDF window features.

    Incremental updates refit the SVM on a sliding buffer of recent
    training vectors (kernel methods have no cheap online update); the
    buffer size bounds both memory and drift horizon.
    """

    def __init__(
        self,
        store: TemplateStore,
        vocabulary_capacity: int = 256,
        window: int = 20,
        stride: int = 5,
        nu: float = 0.05,
        kernel: str = "rbf",
        gamma: float = 2.0,
        n_components: int = 128,
        buffer_windows: int = 12000,
        max_train_windows: int = 8000,
        seed: int = 0,
    ) -> None:
        super().__init__(
            store,
            vocabulary_capacity=vocabulary_capacity,
            window=window,
            stride=stride,
            max_train_windows=max_train_windows,
            seed=seed,
        )
        self.nu = nu
        self.kernel = kernel
        self.gamma = gamma
        self.n_components = n_components
        self.buffer_windows = buffer_windows
        self._buffer: Optional[np.ndarray] = None
        self._svm: Optional[OneClassSVM] = None

    def _fit_vectors(self, vectors: np.ndarray, initial: bool) -> None:
        if initial or self._buffer is None:
            self._buffer = vectors
        else:
            self._buffer = np.concatenate([self._buffer, vectors])
            if self._buffer.shape[0] > self.buffer_windows:
                self._buffer = self._buffer[-self.buffer_windows:]
        self._svm = OneClassSVM(
            nu=self.nu,
            kernel=self.kernel,
            gamma=self.gamma,
            n_components=self.n_components,
            rng=np.random.default_rng(self.rng.integers(2**63)),
        ).fit(self._buffer)

    def _score_vectors(self, vectors: np.ndarray) -> np.ndarray:
        if self._svm is None:
            raise RuntimeError("SVM not fitted")
        # score_samples is positive inside the boundary; negate so
        # higher means more anomalous, as the protocol requires.
        return -self._svm.score_samples(vectors)
