"""Operational triage of detected anomalies (section 5.3).

The paper categorizes detected conditions into four scenarios and
leaves automating that categorization as future work:

1. **predictive signal** — the anomaly repeatedly precedes tickets
   (e.g. the "invalid response from peer chassis-control" message);
2. **early-detection signature** — the anomaly co-occurs with the
   fault and fires before the (delayed) ticket report, so it can be
   turned into a faster ticket trigger (e.g. the "BGP UNUSABLE
   ASPATH" storm);
3. **ticketing-flow event** — the anomaly lands inside the infected
   period: it is part of the events that triggered the ticket;
4. **coincidental** — the anomaly matches no ticket; a candidate for
   a suppression rule.

:func:`triage` implements the categorization over a
:class:`~repro.core.mapping.MappingResult`: per *warning condition*
(the dominant template around each detection), it aggregates how that
condition relates to tickets across the whole evaluation span and
assigns the scenario.
"""

from __future__ import annotations

import enum
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.mapping import AnomalyKind, MappingResult
from repro.logs.message import SyslogMessage
from repro.logs.templates import TemplateStore
from repro.timeutil import MINUTE


class TriageScenario(enum.Enum):
    """Section 5.3's four operational scenarios."""

    PREDICTIVE_SIGNAL = "predictive_signal"
    EARLY_DETECTION_SIGNATURE = "early_detection_signature"
    TICKETING_FLOW_EVENT = "ticketing_flow_event"
    COINCIDENTAL = "coincidental"


@dataclass(frozen=True)
class TriageFinding:
    """One triaged warning condition.

    Attributes:
        condition: rendered template text of the dominant message
            around the detections ("the condition").
        scenario: the assigned operational scenario.
        occurrences: how many detections carried this condition.
        tickets_involved: distinct tickets the condition related to.
        median_lead: median lead time (seconds before ticket report)
            across ticket-related occurrences; None for coincidental.
    """

    condition: str
    scenario: TriageScenario
    occurrences: int
    tickets_involved: int
    median_lead: Optional[float]


def _dominant_condition(
    messages: Sequence[SyslogMessage],
    store: TemplateStore,
    when: float,
    radius: float,
) -> str:
    """The most common template text within ``radius`` of ``when``."""
    nearby = [
        message
        for message in messages
        if abs(message.timestamp - when) <= radius
    ]
    if not nearby:
        return "(no nearby messages)"
    counts = Counter(store.match(message) for message in nearby)
    template_id, _ = counts.most_common(1)[0]
    template = (
        store.template(template_id) if template_id else None
    )
    if template is None:
        return "(unmined template)"
    return template.render()


def triage(
    mapping: MappingResult,
    messages_by_vpe: Mapping[str, Sequence[SyslogMessage]],
    store: TemplateStore,
    radius: float = 2 * MINUTE,
    predictive_lead: float = 5 * MINUTE,
) -> List[TriageFinding]:
    """Categorize detected conditions into the four 5.3 scenarios.

    Args:
        mapping: the anomaly→ticket mapping of an evaluation span.
        messages_by_vpe: the raw streams the detections came from, so
            conditions can be named by their dominant template.
        store: template store used for naming conditions.
        radius: how far around a detection to look for its condition.
        predictive_lead: minimum lead for a condition to count as
            predictive rather than merely early-detection.

    Returns:
        Findings sorted by scenario severity (predictive first), then
        by occurrence count.
    """
    per_condition: Dict[str, List] = defaultdict(list)
    for record in mapping.records:
        condition = _dominant_condition(
            messages_by_vpe.get(record.vpe, ()),
            store,
            record.time,
            radius,
        )
        per_condition[condition].append(record)

    findings: List[TriageFinding] = []
    for condition, records in per_condition.items():
        related = [
            r for r in records if r.kind is not AnomalyKind.FALSE_ALARM
        ]
        if not related:
            findings.append(
                TriageFinding(
                    condition=condition,
                    scenario=TriageScenario.COINCIDENTAL,
                    occurrences=len(records),
                    tickets_involved=0,
                    median_lead=None,
                )
            )
            continue
        leads = sorted(
            r.lead_time for r in related if r.lead_time is not None
        )
        median_lead = leads[len(leads) // 2]
        tickets_involved = len(
            {r.ticket.ticket_id for r in related if r.ticket}
        )
        early = [
            r for r in related if r.kind is AnomalyKind.EARLY_WARNING
        ]
        if early and median_lead >= predictive_lead:
            scenario = TriageScenario.PREDICTIVE_SIGNAL
        elif early:
            scenario = TriageScenario.EARLY_DETECTION_SIGNATURE
        else:
            scenario = TriageScenario.TICKETING_FLOW_EVENT
        findings.append(
            TriageFinding(
                condition=condition,
                scenario=scenario,
                occurrences=len(records),
                tickets_involved=tickets_involved,
                median_lead=median_lead,
            )
        )
    severity = {
        TriageScenario.PREDICTIVE_SIGNAL: 0,
        TriageScenario.EARLY_DETECTION_SIGNATURE: 1,
        TriageScenario.TICKETING_FLOW_EVENT: 2,
        TriageScenario.COINCIDENTAL: 3,
    }
    findings.sort(
        key=lambda finding: (
            severity[finding.scenario],
            -finding.occurrences,
        )
    )
    return findings
