"""Vectorized streaming inference engine.

:class:`StreamScorer` is the fleet-scale counterpart of scoring one
message at a time: it keeps every device's sliding context in one
preallocated numpy ring buffer, ingests arrivals in *ticks* (batches),
and scores all devices' ready windows in a single fused forward pass
through the model's inference-only path — so the matmul cost of a
forward is amortized over the whole fleet instead of paid per message.

Within a tick, arrivals are decomposed into *rounds*: round ``r``
holds the ``r``-th accepted arrival of each device in the tick.  Every
round touches each device at most once, so the round's ready windows
can be gathered with one fancy index and scored in one
``model.infer`` call, while per-device sequential semantics (each
arrival scored against the context *before* it) are preserved
exactly.  At float64 the scores are bitwise identical to feeding the
same stream one message at a time — :meth:`Sequential.infer` pads
single-row batches so results are independent of batch composition.

Out-of-order arrivals either raise (``strict_order=True``, the
historical behavior) or are counted in :attr:`n_reordered` and
dropped (``strict_order=False``), so one misordered message cannot
kill a long-running monitor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

#: Version of the dict layout produced by
#: :meth:`StreamScorer.state_dict`; bumped on incompatible changes so
#: stale checkpoints fail loudly instead of half-loading.
SCORER_STATE_VERSION = 1

import numpy as np

from repro import telemetry
from repro.core.base import clamp_template_ids
from repro.core.detector import LSTMAnomalyDetector
from repro.logs.message import SyslogMessage
from repro.logs.sequences import GAP_BUCKET_EDGES
from repro.nn.losses import SoftmaxCrossEntropy


@dataclass(frozen=True)
class StreamBatch:
    """Per-message results of one ingested tick.

    Attributes:
        scores: anomaly score per input message (NaN while a device's
            context is still warming up, and for dropped messages).
        kept: False where an out-of-order arrival was dropped
            (``strict_order=False`` only; always all-True otherwise).
    """

    scores: np.ndarray
    kept: np.ndarray


class StreamScorer:
    """Micro-batched per-arrival scoring across a fleet of devices.

    Args:
        detector: a fitted :class:`LSTMAnomalyDetector`.
        strict_order: when True (default) an arrival older than its
            device's newest accepted timestamp raises ``ValueError``
            (before any state in the tick is mutated); when False it
            is dropped and counted in :attr:`n_reordered`.
        initial_devices: ring-buffer rows to preallocate; the table
            doubles automatically as new hosts appear.
    """

    def __init__(
        self,
        detector: LSTMAnomalyDetector,
        strict_order: bool = True,
        initial_devices: int = 16,
    ) -> None:
        if initial_devices < 1:
            raise ValueError("initial_devices must be >= 1")
        self.detector = detector
        self.window = int(detector.windower.window)
        self.strict_order = bool(strict_order)
        self.n_reordered = 0
        self.n_scored = 0
        self._index: Dict[str, int] = {}
        self._hosts: List[str] = []
        # Ring buffers: row d holds device d's last `window` context
        # tuples; _pos[d] is the oldest slot (= the next to overwrite),
        # so the time-ordered window is contexts[d, (pos + k) % window].
        self._contexts = np.zeros(
            (initial_devices, self.window, 2), dtype=np.int64
        )
        self._pos = np.zeros(initial_devices, dtype=np.int64)
        self._fill = np.zeros(initial_devices, dtype=np.int64)
        self._last_time = np.full(initial_devices, np.nan)

    # -- device table ---------------------------------------------------

    @property
    def n_devices(self) -> int:
        """Number of devices holding ring-buffer state."""
        return len(self._hosts)

    def _grow(self, need: int) -> None:
        old = self._contexts.shape[0]
        new = max(need, 2 * old)
        contexts = np.zeros((new, self.window, 2), dtype=np.int64)
        contexts[:old] = self._contexts
        self._contexts = contexts
        self._pos = np.concatenate(
            [self._pos, np.zeros(new - old, dtype=np.int64)]
        )
        self._fill = np.concatenate(
            [self._fill, np.zeros(new - old, dtype=np.int64)]
        )
        self._last_time = np.concatenate(
            [self._last_time, np.full(new - old, np.nan)]
        )

    def _rows(self, messages: Sequence[SyslogMessage]) -> np.ndarray:
        rows = np.empty(len(messages), dtype=np.int64)
        index = self._index
        for i, message in enumerate(messages):
            row = index.get(message.host)
            if row is None:
                row = len(self._hosts)
                if row >= self._contexts.shape[0]:
                    self._grow(row + 1)
                index[message.host] = row
                self._hosts.append(message.host)
            rows[i] = row
        return rows

    def context_of(self, host: str) -> np.ndarray:
        """The device's current context, oldest first (for inspection)."""
        row = self._index[host]
        fill = int(self._fill[row])
        if fill < self.window:
            return self._contexts[row, :fill].copy()
        gather = (self._pos[row] + np.arange(self.window)) % self.window
        return self._contexts[row, gather]

    def last_time_of(self, host: str) -> float:
        """Newest accepted timestamp for ``host`` (NaN if none)."""
        return float(self._last_time[self._index[host]])

    # -- checkpointable state -------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Every mutable field needed to reconstruct the scorer.

        The returned arrays are copies trimmed to the live device
        count, so a snapshot is immune to later ingests and does not
        drag preallocated-but-unused ring rows into checkpoints.
        Restore with :meth:`load_state_dict`; round-tripping is exact
        (scores after restore are bitwise identical to never having
        snapshotted).
        """
        n = len(self._hosts)
        return {
            "version": SCORER_STATE_VERSION,
            "window": self.window,
            "strict_order": self.strict_order,
            "hosts": list(self._hosts),
            "contexts": self._contexts[:n].copy(),
            "pos": self._pos[:n].copy(),
            "fill": self._fill[:n].copy(),
            "last_time": self._last_time[:n].copy(),
            "n_reordered": int(self.n_reordered),
            "n_scored": int(self.n_scored),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore a snapshot taken by :meth:`state_dict`.

        The scorer must have been built against a detector with the
        same context window; everything else (device table, ring
        buffers, ordering cursors, counters, strictness) is replaced
        by the snapshot.
        """
        version = state.get("version")
        if version != SCORER_STATE_VERSION:
            raise ValueError(
                f"scorer state version {version!r} is not supported "
                f"(expected {SCORER_STATE_VERSION})"
            )
        window = int(state["window"])
        if window != self.window:
            raise ValueError(
                f"snapshot window {window} does not match the "
                f"detector's window {self.window}"
            )
        hosts = list(state["hosts"])
        n = len(hosts)
        contexts = np.asarray(state["contexts"], dtype=np.int64)
        if contexts.shape != (n, window, 2):
            raise ValueError(
                f"snapshot contexts shape {contexts.shape} does not "
                f"match {(n, window, 2)}"
            )
        self.strict_order = bool(state["strict_order"])
        self._hosts = hosts
        self._index = {host: row for row, host in enumerate(hosts)}
        capacity = max(n, 1)
        self._contexts = np.zeros(
            (capacity, window, 2), dtype=np.int64
        )
        self._contexts[:n] = contexts
        self._pos = np.zeros(capacity, dtype=np.int64)
        self._pos[:n] = np.asarray(state["pos"], dtype=np.int64)
        self._fill = np.zeros(capacity, dtype=np.int64)
        self._fill[:n] = np.asarray(state["fill"], dtype=np.int64)
        self._last_time = np.full(capacity, np.nan)
        self._last_time[:n] = np.asarray(
            state["last_time"], dtype=np.float64
        )
        self.n_reordered = int(state["n_reordered"])
        self.n_scored = int(state["n_scored"])

    # -- ingest ---------------------------------------------------------

    def observe_batch(
        self, messages: Sequence[SyslogMessage]
    ) -> StreamBatch:
        """Ingest one tick of arrivals; score every ready window.

        Messages may interleave devices arbitrarily; per-device order
        within the tick is the sequence order.  In strict mode an
        out-of-order arrival raises before any state is touched (the
        whole tick is rejected).
        """
        n = len(messages)
        scores = np.full(n, np.nan)
        kept = np.ones(n, dtype=bool)
        if n == 0:
            return StreamBatch(scores, kept)
        detector = self.detector
        ids = detector.store.match_ids(messages)
        n_clamped = int(
            np.count_nonzero(ids >= detector.vocabulary_capacity)
        )
        clamp_template_ids(ids, detector.vocabulary_capacity)
        times = np.fromiter(
            (message.timestamp for message in messages),
            dtype=np.float64,
            count=n,
        )
        rows = self._rows(messages)

        # Group arrivals by device (stable: per-device order kept).
        order = np.argsort(rows, kind="stable")
        sorted_rows = rows[order]
        starts = np.flatnonzero(
            np.r_[True, sorted_rows[1:] != sorted_rows[:-1]]
        )
        lengths = np.diff(np.r_[starts, n])
        sorted_times = times[order]

        # Per device run: validate ordering, compute gap buckets for
        # accepted arrivals, and rank each accepted arrival within its
        # device (rank r = the device's r-th arrival this tick).
        keep_sorted = np.ones(n, dtype=bool)
        gaps_sorted = np.zeros(n, dtype=np.int64)
        rank_sorted = np.zeros(n, dtype=np.int64)
        for start, length in zip(starts, lengths):
            stop = start + length
            row = sorted_rows[start]
            t_run = sorted_times[start:stop]
            last = self._last_time[row]
            lower = -np.inf if np.isnan(last) else last
            # An arrival is in order iff it is >= every accepted
            # timestamp before it; the running max over *all* prior
            # arrivals equals the one over accepted arrivals only,
            # because a dropped arrival never raised the max.
            floor = np.maximum.accumulate(
                # Amortized: one allocation per device *run*, not per
                # message; runs are bounded by the device count.
                np.concatenate(([lower], t_run[:-1]))  # repro: noqa[RPR201]
            )
            ok = t_run >= floor
            if not ok.all():
                if self.strict_order:
                    raise ValueError(
                        f"out-of-order message for {self._hosts[row]}"
                    )
                keep_sorted[start:stop] = ok
                t_kept = t_run[ok]
            else:
                t_kept = t_run
            # Gap to the previous accepted arrival; the device's first
            # ever message follows "nothing" (stored last is NaN), and
            # searchsorted sends the NaN delta to the largest bucket.
            previous = np.concatenate(([last], t_kept[:-1]))  # repro: noqa[RPR201]
            gaps_sorted[start:stop][ok] = np.searchsorted(
                GAP_BUCKET_EDGES, t_kept - previous, side="right"
            )
            rank_sorted[start:stop][ok] = np.arange(t_kept.size)  # repro: noqa[RPR201]

        kept[order] = keep_sorted
        n_dropped = int(n - keep_sorted.sum())
        self.n_reordered += n_dropped

        # Round decomposition: all rank-r arrivals form one micro-batch
        # of distinct devices, scored with a single fused forward.
        kept_positions = np.flatnonzero(keep_sorted)
        if not kept_positions.size:
            self._publish_tick(n, n_dropped, 0, n_clamped, scores)
            return StreamBatch(scores, kept)
        ranks = rank_sorted[kept_positions]
        round_order = np.argsort(ranks, kind="stable")
        by_round = kept_positions[round_order]
        ranks = ranks[round_order]
        round_starts = np.flatnonzero(
            np.r_[True, ranks[1:] != ranks[:-1]]
        )
        round_stops = np.r_[round_starts[1:], by_round.size]
        window = self.window
        arange_w = np.arange(window)
        model = detector.model
        n_scored_tick = 0
        for a, b in zip(round_starts, round_stops):
            orig = order[by_round[a:b]]
            rows_r = rows[orig]
            tids_r = ids[orig]
            ready = self._fill[rows_r] == window
            if ready.any():
                ready_rows = rows_r[ready]
                gather = (
                    self._pos[ready_rows, None] + arange_w[None, :]
                ) % window
                windows = self._contexts[ready_rows[:, None], gather]
                logits = model.infer(windows)
                likelihoods = SoftmaxCrossEntropy.log_likelihoods(
                    logits, tids_r[ready]
                )
                scores[orig[ready]] = -likelihoods
                n_scored_tick += int(ready_rows.size)
                self.n_scored += int(ready_rows.size)
            # Push the arrivals into the rings after scoring: each
            # message is scored against the context that preceded it.
            slots = self._pos[rows_r]
            self._contexts[rows_r, slots, 0] = tids_r
            self._contexts[rows_r, slots, 1] = gaps_sorted[by_round[a:b]]
            self._pos[rows_r] = (slots + 1) % window
            self._fill[rows_r] = np.minimum(
                self._fill[rows_r] + 1, window
            )
            self._last_time[rows_r] = times[orig]
        self._publish_tick(
            n, n_dropped, n_scored_tick, n_clamped, scores
        )
        return StreamBatch(scores, kept)

    def _publish_tick(
        self,
        n_ingested: int,
        n_dropped: int,
        n_scored: int,
        n_clamped: int,
        scores: np.ndarray,
    ) -> None:
        """Publish one tick's accounting to the telemetry registry.

        One call per tick, a handful of dict lookups plus a vectorized
        histogram pass over the tick's scores — the streaming perf
        suite pins the total at under 3% of scoring cost.
        """
        registry = telemetry.default_registry()
        registry.counter("stream.ticks").inc()
        registry.counter("stream.messages_ingested").inc(n_ingested)
        # Created even when zero so exported snapshots always carry the
        # full schema (the CI gate asserts on these by name).
        registry.counter("stream.messages_scored").inc(n_scored)
        registry.counter("stream.n_reordered").inc(n_dropped)
        registry.counter("stream.unknown_clamped").inc(n_clamped)
        registry.histogram(
            "stream.tick_messages", edges=telemetry.SIZE_BUCKETS
        ).observe(n_ingested)
        finite = scores[~np.isnan(scores)]
        if finite.size:
            registry.histogram(
                "stream.scores", edges=telemetry.SCORE_BUCKETS
            ).observe_array(finite)
