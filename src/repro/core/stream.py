"""Vectorized streaming inference engine.

:class:`StreamScorer` is the fleet-scale counterpart of scoring one
message at a time: it keeps every device's sliding context in one
preallocated numpy ring buffer, ingests arrivals in *ticks* (batches),
and scores all devices' ready windows in a single fused forward pass
through the model's inference-only path — so the matmul cost of a
forward is amortized over the whole fleet instead of paid per message.

Within a tick, each device's history plus its accepted arrivals are
laid out as one contiguous *virtual sequence* in a per-tick buffer,
so every ready window of the whole tick is a contiguous slice of
that buffer.  All windows are gathered with one fancy index and
scored in a single batched forward through the model's
inference-only path, while per-device sequential semantics (each
arrival scored against the context *before* it) are preserved
exactly — the window for a device's ``r``-th arrival contains the
device's previous ``window`` tuples whether they came from the ring
or from earlier arrivals in the same tick.  At float64 the scores
are bitwise identical to feeding the same stream one message at a
time: :meth:`Sequential.infer` results are row-wise independent of
batch composition (single-row batches are padded), which makes the
batch shape — per message, per round, or per tick — irrelevant to
the bits.

An opt-in ``quantized=True`` scorer swaps the fused forward for the
int8 engine (:class:`repro.nn.quant.QuantizedModel`), rebuilt
automatically whenever the detector's weights version moves (hot
swap, checkpoint restore).  Quantized scores are approximate — the
contract is anomaly-decision agreement, not bitwise parity.

Out-of-order arrivals either raise (``strict_order=True``, the
historical behavior) or are counted in :attr:`n_reordered` and
dropped (``strict_order=False``), so one misordered message cannot
kill a long-running monitor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

#: Version of the dict layout produced by
#: :meth:`StreamScorer.state_dict`; bumped on incompatible changes so
#: stale checkpoints fail loudly instead of half-loading.
SCORER_STATE_VERSION = 1

import numpy as np

from repro import telemetry
from repro.core.base import clamp_template_ids
from repro.core.detector import LSTMAnomalyDetector
from repro.logs.message import SyslogMessage, message_columns
from repro.logs.sequences import GAP_BUCKET_EDGES
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.quant import QuantizedModel


@dataclass(frozen=True)
class StreamBatch:
    """Per-message results of one ingested tick.

    Attributes:
        scores: anomaly score per input message (NaN while a device's
            context is still warming up, and for dropped messages).
        kept: False where an out-of-order arrival was dropped
            (``strict_order=False`` only; always all-True otherwise).
    """

    scores: np.ndarray
    kept: np.ndarray


class StreamScorer:
    """Micro-batched per-arrival scoring across a fleet of devices.

    Args:
        detector: a fitted :class:`LSTMAnomalyDetector`.
        strict_order: when True (default) an arrival older than its
            device's newest accepted timestamp raises ``ValueError``
            (before any state in the tick is mutated); when False it
            is dropped and counted in :attr:`n_reordered`.
        initial_devices: ring-buffer rows to preallocate; the table
            doubles automatically as new hosts appear.
        quantized: when True, score through the int8 engine
            (:class:`repro.nn.quant.QuantizedModel`) instead of the
            bitwise float path; the engine is rebuilt whenever the
            detector model's ``weights_version`` changes.
    """

    def __init__(
        self,
        detector: LSTMAnomalyDetector,
        strict_order: bool = True,
        initial_devices: int = 16,
        quantized: bool = False,
    ) -> None:
        if initial_devices < 1:
            raise ValueError("initial_devices must be >= 1")
        self.detector = detector
        self.window = int(detector.windower.window)
        self.strict_order = bool(strict_order)
        self.quantized = bool(quantized)
        self._qmodel: "QuantizedModel | None" = None
        self._qmodel_version = -1
        self.n_reordered = 0
        self.n_scored = 0
        self._index: Dict[str, int] = {}
        self._hosts: List[str] = []
        # Ring buffers: row d holds device d's last `window` context
        # tuples; _pos[d] is the oldest slot (= the next to overwrite),
        # so the time-ordered window is contexts[d, (pos + k) % window].
        self._contexts = np.zeros(
            (initial_devices, self.window, 2), dtype=np.int64
        )
        self._pos = np.zeros(initial_devices, dtype=np.int64)
        self._fill = np.zeros(initial_devices, dtype=np.int64)
        self._last_time = np.full(initial_devices, np.nan)

    # -- device table ---------------------------------------------------

    @property
    def n_devices(self) -> int:
        """Number of devices holding ring-buffer state."""
        return len(self._hosts)

    def _grow(self, need: int) -> None:
        old = self._contexts.shape[0]
        new = max(need, 2 * old)
        contexts = np.zeros((new, self.window, 2), dtype=np.int64)
        contexts[:old] = self._contexts
        self._contexts = contexts
        self._pos = np.concatenate(
            [self._pos, np.zeros(new - old, dtype=np.int64)]
        )
        self._fill = np.concatenate(
            [self._fill, np.zeros(new - old, dtype=np.int64)]
        )
        self._last_time = np.concatenate(
            [self._last_time, np.full(new - old, np.nan)]
        )

    def _rows(
        self, hosts: List[str]
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Group a tick's hosts into device runs; grow the table.

        Returns ``(run_of, run_rows)``: per-message run index and, per
        run, the ring-buffer row.  One vectorized unique pass replaces
        the old per-message dict loop — the Python work left is one
        dict probe per *distinct* host in the tick, not per message.
        """
        unique, run_of = np.unique(
            np.asarray(hosts), return_inverse=True
        )
        run_rows = np.empty(unique.size, dtype=np.int64)
        index = self._index
        for u in range(unique.size):
            host = str(unique[u])
            row = index.get(host)
            if row is None:
                row = len(self._hosts)
                if row >= self._contexts.shape[0]:
                    # Amortized doubling: allocates only when the
                    # device table is full, not per iteration.
                    self._grow(row + 1)  # repro: noqa[RPR201]
                index[host] = row
                self._hosts.append(host)
            run_rows[u] = row
        return run_of, run_rows

    def _quantized_model(self) -> "QuantizedModel":
        """The int8 engine for the current weights (cached per version)."""
        model = self.detector.model
        version = model.weights_version
        if self._qmodel is None or self._qmodel_version != version:
            self._qmodel = QuantizedModel.from_model(model)
            self._qmodel_version = version
        return self._qmodel

    def context_of(self, host: str) -> np.ndarray:
        """The device's current context, oldest first (for inspection)."""
        row = self._index[host]
        fill = int(self._fill[row])
        if fill < self.window:
            return self._contexts[row, :fill].copy()
        gather = (self._pos[row] + np.arange(self.window)) % self.window
        return self._contexts[row, gather]

    def last_time_of(self, host: str) -> float:
        """Newest accepted timestamp for ``host`` (NaN if none)."""
        return float(self._last_time[self._index[host]])

    # -- checkpointable state -------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Every mutable field needed to reconstruct the scorer.

        The returned arrays are copies trimmed to the live device
        count, so a snapshot is immune to later ingests and does not
        drag preallocated-but-unused ring rows into checkpoints.
        Restore with :meth:`load_state_dict`; round-tripping is exact
        (scores after restore are bitwise identical to never having
        snapshotted).
        """
        n = len(self._hosts)
        return {
            "version": SCORER_STATE_VERSION,
            "window": self.window,
            "strict_order": self.strict_order,
            "hosts": list(self._hosts),
            "contexts": self._contexts[:n].copy(),
            "pos": self._pos[:n].copy(),
            "fill": self._fill[:n].copy(),
            "last_time": self._last_time[:n].copy(),
            "n_reordered": int(self.n_reordered),
            "n_scored": int(self.n_scored),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore a snapshot taken by :meth:`state_dict`.

        The scorer must have been built against a detector with the
        same context window; everything else (device table, ring
        buffers, ordering cursors, counters, strictness) is replaced
        by the snapshot.
        """
        version = state.get("version")
        if version != SCORER_STATE_VERSION:
            raise ValueError(
                f"scorer state version {version!r} is not supported "
                f"(expected {SCORER_STATE_VERSION})"
            )
        window = int(state["window"])
        if window != self.window:
            raise ValueError(
                f"snapshot window {window} does not match the "
                f"detector's window {self.window}"
            )
        hosts = list(state["hosts"])
        n = len(hosts)
        contexts = np.asarray(state["contexts"], dtype=np.int64)
        if contexts.shape != (n, window, 2):
            raise ValueError(
                f"snapshot contexts shape {contexts.shape} does not "
                f"match {(n, window, 2)}"
            )
        self.strict_order = bool(state["strict_order"])
        self._hosts = hosts
        self._index = {host: row for row, host in enumerate(hosts)}
        capacity = max(n, 1)
        self._contexts = np.zeros(
            (capacity, window, 2), dtype=np.int64
        )
        self._contexts[:n] = contexts
        self._pos = np.zeros(capacity, dtype=np.int64)
        self._pos[:n] = np.asarray(state["pos"], dtype=np.int64)
        self._fill = np.zeros(capacity, dtype=np.int64)
        self._fill[:n] = np.asarray(state["fill"], dtype=np.int64)
        self._last_time = np.full(capacity, np.nan)
        self._last_time[:n] = np.asarray(
            state["last_time"], dtype=np.float64
        )
        self.n_reordered = int(state["n_reordered"])
        self.n_scored = int(state["n_scored"])

    # -- ingest ---------------------------------------------------------

    def observe_batch(
        self, messages: Sequence[SyslogMessage]
    ) -> StreamBatch:
        """Ingest one tick of arrivals; score every ready window.

        Messages may interleave devices arbitrarily; per-device order
        within the tick is the sequence order.  In strict mode an
        out-of-order arrival raises before any state is touched (the
        whole tick is rejected).
        """
        n = len(messages)
        scores = np.full(n, np.nan)
        kept = np.ones(n, dtype=bool)
        if n == 0:
            return StreamBatch(scores, kept)
        detector = self.detector
        ids = detector.store.match_ids(messages)
        n_clamped = int(
            np.count_nonzero(ids >= detector.vocabulary_capacity)
        )
        clamp_template_ids(ids, detector.vocabulary_capacity)
        times, hosts = message_columns(messages)
        run_of, run_rows = self._rows(hosts)
        n_runs = run_rows.size

        # Group arrivals by device run (stable: per-device order kept).
        order = np.argsort(run_of, kind="stable")
        g_sorted = run_of[order]
        sorted_times = times[order]
        counts_all = np.bincount(run_of, minlength=n_runs)
        starts = np.zeros(n_runs, dtype=np.int64)
        np.cumsum(counts_all[:-1], out=starts[1:])
        last_run = self._last_time[run_rows]

        # Ordering fast path: when every arrival is >= its immediate
        # predecessor (and the device's stored newest timestamp), the
        # whole tick is in order — one vectorized compare, no per-run
        # loop.  NaN "last" (fresh device) must not poison the compare,
        # so it is floored to -inf for ordering only.
        prev = np.empty(n, dtype=np.float64)
        prev[1:] = sorted_times[:-1]
        prev[starts] = last_run
        in_order = sorted_times >= np.where(
            np.isnan(prev), -np.inf, prev
        )
        if in_order.all():
            keep_sorted = in_order
        elif self.strict_order:
            bad = int(np.flatnonzero(~in_order)[0])
            host = self._hosts[int(run_rows[g_sorted[bad]])]
            raise ValueError(f"out-of-order message for {host}")
        else:
            # Fallback for the violating runs only: an arrival is in
            # order iff it is >= every accepted timestamp before it,
            # and the running max over *all* prior arrivals equals the
            # one over accepted arrivals only, because a dropped
            # arrival never raised the max.
            keep_sorted = in_order.copy()
            bad_runs = np.unique(g_sorted[~in_order])
            for g in bad_runs:
                start = int(starts[g])
                stop = start + int(counts_all[g])
                t_run = sorted_times[start:stop]
                last = last_run[g]
                lower = -np.inf if np.isnan(last) else last
                floor = np.maximum.accumulate(
                    # Amortized: one allocation per *violating* run,
                    # not per message; the in-order fast path above
                    # never reaches this loop.
                    np.concatenate(([lower], t_run[:-1]))  # repro: noqa[RPR201]
                )
                keep_sorted[start:stop] = t_run >= floor

        kept[order] = keep_sorted
        n_dropped = int(n - np.count_nonzero(keep_sorted))
        self.n_reordered += n_dropped

        kept_idx = np.flatnonzero(keep_sorted)
        if not kept_idx.size:
            self._publish_tick(n, n_dropped, 0, n_clamped, scores)
            return StreamBatch(scores, kept)

        # Per kept arrival (still grouped by run, arrival order within
        # each run): its run, original position, rank within the run,
        # and gap bucket to the previous accepted arrival.  The
        # device's first ever message follows "nothing" (stored last
        # is NaN) and searchsorted sends the NaN delta to the largest
        # bucket.
        g_of = g_sorted[kept_idx]
        t_kept = sorted_times[kept_idx]
        orig = order[kept_idx]
        m = kept_idx.size
        counts = np.bincount(g_of, minlength=n_runs)
        kstarts = np.zeros(n_runs, dtype=np.int64)
        np.cumsum(counts[:-1], out=kstarts[1:])
        r_of = np.arange(m) - kstarts[g_of]
        prev_kept = np.empty(m, dtype=np.float64)
        prev_kept[1:] = t_kept[:-1]
        first_of_run = r_of == 0
        prev_kept[first_of_run] = last_run[g_of[first_of_run]]
        gaps = np.searchsorted(
            GAP_BUCKET_EDGES, t_kept - prev_kept, side="right"
        )

        # Virtual-sequence buffer: per active run, `window` history
        # columns then that run's kept arrivals, contiguously.  A
        # still-warming device (fill < window, where the ring invariant
        # guarantees pos == fill and data in slots [0, fill)) places
        # history at [0, fill) — columns [fill, window) hold garbage
        # that no window ever reads, because arrival r only becomes
        # ready once fill + r >= window.
        window = self.window
        active = np.flatnonzero(counts)
        n_act = active.size
        slot_of_run = np.zeros(n_runs, dtype=np.int64)
        slot_of_run[active] = np.arange(n_act)
        a_of = slot_of_run[g_of]
        act_rows = run_rows[active]
        counts_act = counts[active]
        fills = self._fill[act_rows]
        poss = self._pos[act_rows]
        max_count = int(counts_act.max())
        arange_w = np.arange(window)
        buf = np.empty((n_act, window + max_count, 2), dtype=np.int64)
        history_base = np.where(fills == window, poss, 0)
        gather = (history_base[:, None] + arange_w[None, :]) % window
        buf[:, :window] = self._contexts[act_rows[:, None], gather]
        tids_kept = ids[orig]
        vpos = fills[a_of] + r_of
        buf[a_of, vpos, 0] = tids_kept
        buf[a_of, vpos, 1] = gaps

        # Score every ready window of the tick in one batched forward:
        # arrival r of a run is ready when window prior tuples exist
        # (history fill plus earlier same-tick arrivals).
        ready = vpos >= window
        n_scored_tick = int(np.count_nonzero(ready))
        if n_scored_tick:
            ready_runs = a_of[ready]
            wstart = vpos[ready] - window
            windows = buf[
                ready_runs[:, None], wstart[:, None] + arange_w[None, :]
            ]
            if self.quantized:
                logits = self._quantized_model().infer(windows)
            else:
                # predict() == chunked infer(): the same batching the
                # offline scorer uses, and infer results are row-wise
                # independent of batch composition — bitwise parity.
                logits = detector.model.predict(windows)
            likelihoods = SoftmaxCrossEntropy.log_likelihoods(
                logits, tids_kept[ready]
            )
            scores[orig[ready]] = -likelihoods
            self.n_scored += n_scored_tick

        # Write the rings back: the final min(window, fill + count)
        # tuples of each virtual sequence, at ring slots starting from
        # the new oldest position.  Rewriting unchanged history slots
        # is idempotent, so one masked scatter covers full, warming
        # and newly-filled devices alike.
        ends = fills + counts_act
        new_fill = np.minimum(ends, window)
        full_after = ends >= window
        new_pos = (poss + counts_act) % window
        base = np.where(full_after, new_pos, 0)
        col_mask = arange_w[None, :] < new_fill[:, None]
        slots = (base[:, None] + arange_w[None, :]) % window
        srccol = (ends - new_fill)[:, None] + arange_w[None, :]
        vals = buf[np.arange(n_act)[:, None], srccol]
        row_idx = np.broadcast_to(
            act_rows[:, None], col_mask.shape
        )[col_mask]
        self._contexts[row_idx, slots[col_mask]] = vals[col_mask]
        self._pos[act_rows] = new_pos
        self._fill[act_rows] = new_fill
        self._last_time[act_rows] = t_kept[
            kstarts[active] + counts_act - 1
        ]
        self._publish_tick(
            n, n_dropped, n_scored_tick, n_clamped, scores
        )
        return StreamBatch(scores, kept)

    def _publish_tick(
        self,
        n_ingested: int,
        n_dropped: int,
        n_scored: int,
        n_clamped: int,
        scores: np.ndarray,
    ) -> None:
        """Publish one tick's accounting to the telemetry registry.

        One call per tick, a handful of dict lookups plus a vectorized
        histogram pass over the tick's scores — the streaming perf
        suite pins the total at under 3% of scoring cost.
        """
        registry = telemetry.default_registry()
        registry.counter("stream.ticks").inc()
        registry.counter("stream.messages_ingested").inc(n_ingested)
        # Created even when zero so exported snapshots always carry the
        # full schema (the CI gate asserts on these by name).
        registry.counter("stream.messages_scored").inc(n_scored)
        registry.counter("stream.n_reordered").inc(n_dropped)
        registry.counter("stream.unknown_clamped").inc(n_clamped)
        registry.histogram(
            "stream.tick_messages", edges=telemetry.SIZE_BUCKETS
        ).observe(n_ingested)
        finite = scores[~np.isnan(scores)]
        if finite.size:
            registry.histogram(
                "stream.scores", edges=telemetry.SCORE_BUCKETS
            ).observe_array(finite)
