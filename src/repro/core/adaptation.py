"""Model adaptation: incremental learning and transfer learning.

Section 4.3's two mechanisms against temporal drift:

* **incremental (online) learning** — every month the model weights
  are updated with the newly arrived syslog (that is
  :meth:`LSTMAnomalyDetector.update`);
* **transfer-learning adaptation** — after a software update the
  distribution shifts abruptly; rather than retrain from scratch
  (3 months of data), copy the pre-update *teacher* model into a
  *student* and fine-tune only the top layers on about one week of
  post-update data.

This module also provides the drift trigger: a month-over-month cosine
similarity drop in the template distribution, the signal section 3.3
uses to diagnose software updates.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro import telemetry
from repro.core.detector import LOWER_LAYERS, LSTMAnomalyDetector
from repro.features.counts import template_distribution
from repro.logs.message import SyslogMessage
from repro.ml.similarity import cosine_similarity


def transfer_adapt(
    teacher: LSTMAnomalyDetector,
    new_messages: Sequence[SyslogMessage],
    freeze: Sequence[str] = LOWER_LAYERS,
    epochs: int = 3,
) -> LSTMAnomalyDetector:
    """Adapt a teacher detector to post-update syslog behaviour.

    The student copies the teacher's weights, freezes the ``freeze``
    layers (the lower LSTM by default) and fine-tunes the rest on the
    new data — one week of which suffices in the paper.

    Returns the adapted student; the teacher is left untouched.  This
    is a thin functional wrapper around
    :meth:`LSTMAnomalyDetector.adapt`.
    """
    return teacher.adapt(
        new_messages, freeze=tuple(freeze), epochs=epochs
    )


def full_retrain(
    teacher: LSTMAnomalyDetector,
    new_messages: Sequence[SyslogMessage],
) -> LSTMAnomalyDetector:
    """The naive alternative: retrain every layer on the new data.

    Used by the ablation benchmarks to show why fine-tuning the top
    layers with little data beats full retraining with the same data.
    """
    teacher.store.extend(list(new_messages))
    student = teacher.clone()
    student.fit(list(new_messages))
    return student


def distribution_shift(
    previous_month: Sequence[SyslogMessage],
    current_month: Sequence[SyslogMessage],
    vocabulary_size: int,
) -> float:
    """Month-over-month cosine similarity of template distributions.

    Values above ~0.8 are normal; the paper observes drops below 0.4
    at software updates.  Messages must be template-annotated.
    """
    previous = template_distribution(previous_month, vocabulary_size)
    current = template_distribution(current_month, vocabulary_size)
    similarity = cosine_similarity(previous, current)
    registry = telemetry.default_registry()
    registry.counter("adapt.drift_checks").inc()
    registry.gauge("adapt.cosine_similarity").set(similarity)
    return similarity


def count_distribution_shift(
    previous_counts: np.ndarray, current_counts: np.ndarray
) -> float:
    """Cosine similarity between two template count vectors.

    The serving-runtime counterpart of :func:`distribution_shift` for
    callers that already hold per-template count vectors (the
    adaptation controller bincounts matched template ids per tick
    instead of re-annotating messages).  Publishes the same
    ``adapt.drift_checks`` / ``adapt.cosine_similarity`` series.
    """
    similarity = cosine_similarity(
        np.asarray(previous_counts, dtype=np.float64),
        np.asarray(current_counts, dtype=np.float64),
    )
    registry = telemetry.default_registry()
    registry.counter("adapt.drift_checks").inc()
    registry.gauge("adapt.cosine_similarity").set(similarity)
    return similarity


def update_detected(
    previous_month: Sequence[SyslogMessage],
    current_month: Sequence[SyslogMessage],
    vocabulary_size: int,
    threshold: float = 0.5,
) -> bool:
    """Drift trigger: did the distribution change enough to adapt?"""
    if not previous_month or not current_month:
        return False
    detected = (
        distribution_shift(
            previous_month, current_month, vocabulary_size
        )
        < threshold
    )
    if detected:
        telemetry.counter("adapt.drift_detected").inc()
    return detected
