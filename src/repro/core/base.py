"""Detector protocol shared by the LSTM method and the baselines.

A detector is trained on *normal* messages only (unsupervised one-class
setting), can be updated incrementally with fresh data, and scores a
message stream.  Scores are normalized to "higher = more anomalous" so
threshold sweeps treat every method identically — for the LSTM this is
the negative log-likelihood of each observed next template.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.logs.message import SyslogMessage


def clamp_template_ids(
    ids: np.ndarray, capacity: int
) -> np.ndarray:
    """Fold template ids beyond a model's vocabulary onto unknown (0).

    A store shared across detectors can keep mining templates past any
    single model's ``vocabulary_capacity``; ids the model has no
    output class (or embedding row) for are treated as the unknown
    template.  Clamps **in place** and returns ``ids`` — the single
    definition of this rule, shared by the offline windowing path
    (:meth:`LSTMAnomalyDetector._windows`) and the streaming scorer so
    the two can never drift.
    """
    ids[ids >= capacity] = 0
    return ids


@dataclass(frozen=True)
class ScoredStream:
    """Anomaly scores aligned with message timestamps.

    Attributes:
        times: POSIX timestamps, ascending, one per scored event.
        scores: anomaly scores (higher = more anomalous).
    """

    times: np.ndarray
    scores: np.ndarray

    def __post_init__(self) -> None:
        if self.times.shape != self.scores.shape:
            raise ValueError("times and scores must be aligned")
        if self.times.ndim != 1:
            raise ValueError("times must be one-dimensional")

    def __len__(self) -> int:
        return int(self.times.shape[0])

    def anomalies(self, threshold: float) -> np.ndarray:
        """Timestamps whose score exceeds ``threshold``."""
        return self.times[self.scores > threshold]

    @staticmethod
    def concatenate(streams: Sequence["ScoredStream"]) -> "ScoredStream":
        """Merge several scored streams, re-sorting by time."""
        if not streams:
            return ScoredStream(np.empty(0), np.empty(0))
        times = np.concatenate([stream.times for stream in streams])
        scores = np.concatenate([stream.scores for stream in streams])
        order = np.argsort(times, kind="stable")
        return ScoredStream(times[order], scores[order])


class AnomalyDetector(abc.ABC):
    """One-class anomaly detector over syslog streams."""

    @abc.abstractmethod
    def fit(
        self, messages: Sequence[SyslogMessage]
    ) -> "AnomalyDetector":
        """Train from scratch on normal (ticket-free) messages."""

    @abc.abstractmethod
    def update(
        self, messages: Sequence[SyslogMessage]
    ) -> "AnomalyDetector":
        """Incrementally absorb one more month of normal messages."""

    @abc.abstractmethod
    def score(self, messages: Sequence[SyslogMessage]) -> ScoredStream:
        """Score a (chronological) message stream."""

    def adapt(
        self, messages: Sequence[SyslogMessage]
    ) -> "AnomalyDetector":
        """Fast adaptation after an abrupt distribution shift.

        Returns the adapted detector (possibly a new object; callers
        must use the return value).  The default simply performs an
        incremental update; the LSTM detector overrides this with the
        paper's transfer-learning scheme, and the autoencoder baseline
        with encoder-frozen fine-tuning, so the section 5.2 comparison
        applies "the same customization and adaptation mechanisms" to
        every method.
        """
        return self.update(messages)

    def detect(
        self, messages: Sequence[SyslogMessage], threshold: float
    ) -> np.ndarray:
        """Timestamps of messages scored above ``threshold``."""
        return self.score(messages).anomalies(threshold)

    # -- multi-stream training ------------------------------------------

    @staticmethod
    def _merge_streams(
        streams: Sequence[Sequence[SyslogMessage]],
    ) -> list:
        merged = [
            message for stream in streams for message in stream
        ]
        merged.sort(key=lambda message: message.timestamp)
        return merged

    def fit_streams(
        self, streams: Sequence[Sequence[SyslogMessage]]
    ) -> "AnomalyDetector":
        """Train on several per-device streams (grouped models).

        Each device's sequential structure must be preserved: windows
        never span devices.  The default merges streams (correct only
        for single-device groups); sequence-aware detectors override
        this to window each stream separately and pool the samples.
        """
        return self.fit(self._merge_streams(streams))

    def update_streams(
        self, streams: Sequence[Sequence[SyslogMessage]]
    ) -> "AnomalyDetector":
        """Incremental counterpart of :meth:`fit_streams`."""
        return self.update(self._merge_streams(streams))

    def adapt_streams(
        self, streams: Sequence[Sequence[SyslogMessage]]
    ) -> "AnomalyDetector":
        """Adaptation counterpart of :meth:`fit_streams`."""
        return self.adapt(self._merge_streams(streams))
