"""Streaming detection runtime.

The paper envisions "a runtime predictive analysis system running in
parallel with existing reactive monitoring systems to provide network
operators timely warnings" (abstract).  :class:`OnlineMonitor` is that
runtime: it consumes syslog messages one at a time, keeps a sliding
context per device, scores each arrival under the trained LSTM, and
emits a :class:`WarningSignature` when a cluster of anomalies forms —
with a cooldown so one incident raises one warning.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

import numpy as np

from repro.core.detector import LSTMAnomalyDetector
from repro.logs.message import SyslogMessage
from repro.logs.sequences import N_GAP_BUCKETS, gap_bucket
from repro.nn.losses import SoftmaxCrossEntropy
from repro.timeutil import MINUTE


@dataclass(frozen=True)
class WarningSignature:
    """One operator-facing warning emitted by the monitor.

    Attributes:
        vpe: device the warning is for.
        time: when the warning fired (timestamp of the anomaly that
            completed the cluster).
        first_anomaly: timestamp of the cluster's first anomaly.
        n_anomalies: anomalies inside the cluster at emission time.
        peak_score: highest anomaly score in the cluster.
    """

    vpe: str
    time: float
    first_anomaly: float
    n_anomalies: int
    peak_score: float


@dataclass
class _DeviceState:
    """Per-device sliding context and anomaly history."""

    context: Deque = field(default_factory=deque)
    last_time: Optional[float] = None
    last_score: Optional[float] = None
    recent_anomalies: List[float] = field(default_factory=list)
    peak_score: float = 0.0
    cooldown_until: float = 0.0


class OnlineMonitor:
    """Score messages as they arrive; emit clustered warnings.

    Args:
        detector: a fitted :class:`LSTMAnomalyDetector`.
        threshold: anomaly-score threshold (e.g. the operating point
            from a threshold sweep on recent history).
        cluster_min_size: anomalies needed before a warning fires
            (2 = the paper's warning-signature rule).
        cluster_max_gap: anomalies further apart than this do not
            cluster.
        cooldown: after a warning fires on a device, further warnings
            are suppressed for this long (one incident, one page).
    """

    def __init__(
        self,
        detector: LSTMAnomalyDetector,
        threshold: float,
        cluster_min_size: int = 2,
        cluster_max_gap: float = 5 * MINUTE,
        cooldown: float = 30 * MINUTE,
    ) -> None:
        if cluster_min_size < 1:
            raise ValueError("cluster_min_size must be >= 1")
        if cluster_max_gap <= 0 or cooldown < 0:
            raise ValueError("invalid gap/cooldown")
        self.detector = detector
        self.threshold = threshold
        self.cluster_min_size = cluster_min_size
        self.cluster_max_gap = cluster_max_gap
        self.cooldown = cooldown
        self._devices: Dict[str, _DeviceState] = {}
        self.n_observed = 0
        self.n_anomalies = 0

    def observe(
        self, message: SyslogMessage
    ) -> Optional[WarningSignature]:
        """Ingest one message; return a warning if one fires.

        Messages must arrive in per-device timestamp order.
        """
        state = self._devices.setdefault(
            message.host, _DeviceState()
        )
        if (
            state.last_time is not None
            and message.timestamp < state.last_time
        ):
            raise ValueError(
                f"out-of-order message for {message.host}"
            )
        self.n_observed += 1
        score = self._score(state, message)
        state.last_score = score
        state.last_time = message.timestamp
        if score is None or score <= self.threshold:
            return None
        self.n_anomalies += 1
        return self._register_anomaly(state, message, score)

    def _score(
        self, state: _DeviceState, message: SyslogMessage
    ) -> Optional[float]:
        """Score the arrival given the device's current context."""
        detector = self.detector
        template_id = detector.store.match(message)
        if template_id >= detector.vocabulary_capacity:
            template_id = 0
        gap = (
            N_GAP_BUCKETS - 1
            if state.last_time is None
            else gap_bucket(message.timestamp - state.last_time)
        )
        window = detector.windower.window
        score: Optional[float] = None
        if len(state.context) == window:
            context = np.array(
                [state.context], dtype=np.int64
            )  # (1, window, 2)
            logits = detector.model.forward(context, training=False)
            likelihood = SoftmaxCrossEntropy.log_likelihoods(
                logits, np.array([template_id])
            )
            score = float(-likelihood[0])
        state.context.append((template_id, gap))
        if len(state.context) > window:
            state.context.popleft()
        return score

    def _register_anomaly(
        self,
        state: _DeviceState,
        message: SyslogMessage,
        score: float,
    ) -> Optional[WarningSignature]:
        now = message.timestamp
        # Drop anomalies that no longer chain into the cluster.
        state.recent_anomalies = [
            t
            for t in state.recent_anomalies
            if now - t <= self.cluster_max_gap
        ] + [now]
        state.peak_score = max(
            state.peak_score
            if len(state.recent_anomalies) > 1
            else 0.0,
            score,
        )
        if now < state.cooldown_until:
            return None
        if len(state.recent_anomalies) < self.cluster_min_size:
            return None
        state.cooldown_until = now + self.cooldown
        warning = WarningSignature(
            vpe=message.host,
            time=now,
            first_anomaly=state.recent_anomalies[0],
            n_anomalies=len(state.recent_anomalies),
            peak_score=state.peak_score,
        )
        state.recent_anomalies = []
        state.peak_score = 0.0
        return warning

    def run(
        self, messages
    ) -> List[WarningSignature]:
        """Convenience: observe a whole (sorted) stream."""
        warnings = []
        for message in messages:
            warning = self.observe(message)
            if warning is not None:
                warnings.append(warning)
        return warnings
