"""Streaming detection runtime.

The paper envisions "a runtime predictive analysis system running in
parallel with existing reactive monitoring systems to provide network
operators timely warnings" (abstract).  :class:`OnlineMonitor` is that
runtime: it consumes syslog messages — one at a time via
:meth:`~OnlineMonitor.observe` or in cross-device micro-batches via
:meth:`~OnlineMonitor.observe_batch` — scores each arrival under the
trained LSTM, and emits a :class:`WarningSignature` when a cluster of
anomalies forms, with a cooldown so one incident raises one warning.

Scoring is delegated to :class:`repro.core.stream.StreamScorer`, the
vectorized streaming engine: per-device contexts live in preallocated
numpy ring buffers and all devices' ready windows are scored in fused
forward passes, so ingest cost is amortized over the fleet.  At
float64 the scores (and therefore warnings and cooldowns) are bitwise
identical whether a stream is replayed message-at-a-time, in
micro-batches, or through the offline ``detector.score`` path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro import telemetry
from repro.core.detector import LSTMAnomalyDetector
from repro.core.incident import Incident
from repro.core.stream import StreamBatch, StreamScorer
from repro.logs.message import SyslogMessage
from repro.timeutil import MINUTE

#: Version of the dict layout produced by
#: :meth:`OnlineMonitor.state_dict`; bumped on incompatible changes.
MONITOR_STATE_VERSION = 1


class AdaptiveTicker:
    """Backpressure-driven tick sizing for stream drains.

    The fused forward amortizes better over large ticks, but a large
    tick also means a large backlog holds warnings back longer.  The
    ticker watches the backlog-to-tick ratio after every drained tick
    and resizes with hysteresis: only ``hysteresis`` *consecutive*
    readings beyond a watermark trigger a resize, so one bursty tick
    cannot thrash the size.  Growth and shrink are both a factor of
    two, clamped to ``[min_size, max_size]``.

    The live size is published to the ``stream.tick_size`` gauge after
    every update, so operators can watch the loop adapt.
    """

    def __init__(
        self,
        initial: int = 1024,
        min_size: int = 64,
        max_size: int = 8192,
        low_watermark: float = 0.5,
        high_watermark: float = 2.0,
        hysteresis: int = 3,
    ) -> None:
        if min_size < 1 or max_size < min_size:
            raise ValueError(
                "need 1 <= min_size <= max_size, got "
                f"[{min_size}, {max_size}]"
            )
        if not min_size <= initial <= max_size:
            raise ValueError(
                f"initial {initial} outside [{min_size}, {max_size}]"
            )
        if not 0 <= low_watermark < high_watermark:
            raise ValueError(
                "need 0 <= low_watermark < high_watermark, got "
                f"[{low_watermark}, {high_watermark}]"
            )
        if hysteresis < 1:
            raise ValueError("hysteresis must be >= 1")
        self.size = initial
        self.min_size = min_size
        self.max_size = max_size
        self.low_watermark = low_watermark
        self.high_watermark = high_watermark
        self.hysteresis = hysteresis
        self._over = 0
        self._under = 0

    def update(self, backlog: int) -> int:
        """Feed the post-tick backlog; return the (possibly new) size.

        ``backlog`` is the number of messages still waiting after the
        tick that just drained.  A backlog persistently above
        ``high_watermark`` ticks means the drain is falling behind —
        grow the tick to amortize the forward pass over more messages.
        A backlog persistently below ``low_watermark`` ticks means the
        loop is keeping up — shrink to tighten warning latency.
        """
        if backlog < 0:
            raise ValueError(f"negative backlog: {backlog}")
        ratio = backlog / self.size
        if ratio >= self.high_watermark:
            self._over += 1
            self._under = 0
            if self._over >= self.hysteresis:
                self.size = min(self.size * 2, self.max_size)
                self._over = 0
        elif ratio <= self.low_watermark:
            self._under += 1
            self._over = 0
            if self._under >= self.hysteresis:
                self.size = max(self.size // 2, self.min_size)
                self._under = 0
        else:
            self._over = 0
            self._under = 0
        telemetry.default_registry().gauge("stream.tick_size").set(
            self.size
        )
        return self.size


@dataclass(frozen=True)
class WarningSignature:
    """One operator-facing warning emitted by the monitor.

    Attributes:
        vpe: device the warning is for.
        time: when the warning fired (timestamp of the anomaly that
            completed the cluster).
        first_anomaly: timestamp of the cluster's first anomaly.
        n_anomalies: anomalies inside the cluster at emission time.
        peak_score: highest anomaly score in the cluster.
    """

    vpe: str
    time: float
    first_anomaly: float
    n_anomalies: int
    peak_score: float


@dataclass
class _DeviceState:
    """Per-device anomaly history (contexts live in the scorer).

    The warning cluster itself — the prunable anomaly times and the
    peak score — is a shared :class:`~repro.core.incident.Incident`
    (a singleton-device one); the cooldown stays device-local.
    """

    last_time: Optional[float] = None
    last_score: Optional[float] = None
    cluster: Incident = field(default_factory=Incident)
    cooldown_until: float = 0.0


class OnlineMonitor:
    """Score messages as they arrive; emit clustered warnings.

    Args:
        detector: a fitted :class:`LSTMAnomalyDetector`.
        threshold: anomaly-score threshold (e.g. the operating point
            from a threshold sweep on recent history).
        cluster_min_size: anomalies needed before a warning fires
            (2 = the paper's warning-signature rule).
        cluster_max_gap: anomalies further apart than this do not
            cluster.
        cooldown: after a warning fires on a device, further warnings
            are suppressed for this long (one incident, one page).
        strict_order: when True (default), a message older than its
            device's newest accepted timestamp raises ``ValueError``;
            when False it is dropped and counted in
            :attr:`n_reordered` so one misordered message cannot kill
            a long-running monitor.
        tick_size: messages per micro-batch when :meth:`run` drains a
            stream; larger ticks amortize the fused forward over more
            devices per round.
        quantized: score through the int8-quantized inference path
            (:mod:`repro.nn.quant`) instead of the bitwise-exact f64
            model; lossy but faster, opt-in.
    """

    def __init__(
        self,
        detector: LSTMAnomalyDetector,
        threshold: float,
        cluster_min_size: int = 2,
        cluster_max_gap: float = 5 * MINUTE,
        cooldown: float = 30 * MINUTE,
        strict_order: bool = True,
        tick_size: int = 1024,
        quantized: bool = False,
    ) -> None:
        if cluster_min_size < 1:
            raise ValueError("cluster_min_size must be >= 1")
        if cluster_max_gap <= 0 or cooldown < 0:
            raise ValueError("invalid gap/cooldown")
        if tick_size < 1:
            raise ValueError("tick_size must be >= 1")
        self.detector = detector
        self.threshold = threshold
        self.cluster_min_size = cluster_min_size
        self.cluster_max_gap = cluster_max_gap
        self.cooldown = cooldown
        self.tick_size = tick_size
        self.scorer = StreamScorer(
            detector, strict_order=strict_order, quantized=quantized
        )
        self._devices: Dict[str, _DeviceState] = {}
        self.n_observed = 0
        self.n_anomalies = 0
        #: Per-message scores/kept mask of the most recent
        #: :meth:`observe_batch` call (the runtime service reads this
        #: to journal tick outcomes without re-deriving them).
        self.last_batch: Optional[StreamBatch] = None

    @property
    def strict_order(self) -> bool:
        """Whether out-of-order arrivals raise instead of being dropped."""
        return self.scorer.strict_order

    @property
    def n_reordered(self) -> int:
        """Out-of-order arrivals dropped (``strict_order=False``)."""
        return self.scorer.n_reordered

    # -- checkpointable state -------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Every mutable field needed to reconstruct the monitor.

        Covers the per-device warning-cluster state (recent anomaly
        times, peaks, cooldowns), the observation counters, and —
        nested under ``"scorer"`` — the streaming engine's ring-buffer
        snapshot.  Everything except the scorer's numpy arrays is
        plain JSON-serializable data.
        """
        return {
            "version": MONITOR_STATE_VERSION,
            "n_observed": int(self.n_observed),
            "n_anomalies": int(self.n_anomalies),
            "devices": {
                host: {
                    "last_time": state.last_time,
                    "last_score": state.last_score,
                    "recent_anomalies": list(state.cluster.times),
                    "peak_score": state.cluster.peak_score,
                    "cooldown_until": state.cooldown_until,
                }
                for host, state in self._devices.items()
            },
            "scorer": self.scorer.state_dict(),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore a snapshot taken by :meth:`state_dict`.

        The monitor must have been constructed with the same detector
        configuration (window, thresholds are constructor arguments,
        not state); warnings emitted after a restore are identical to
        never having snapshotted.
        """
        version = state.get("version")
        if version != MONITOR_STATE_VERSION:
            raise ValueError(
                f"monitor state version {version!r} is not supported "
                f"(expected {MONITOR_STATE_VERSION})"
            )
        self.scorer.load_state_dict(state["scorer"])
        self.n_observed = int(state["n_observed"])
        self.n_anomalies = int(state["n_anomalies"])
        self._devices = {
            host: _DeviceState(
                last_time=raw["last_time"],
                last_score=raw["last_score"],
                cluster=Incident(
                    devices=[host],
                    times=list(raw["recent_anomalies"]),
                    scores={host: float(raw["peak_score"])},
                ),
                cooldown_until=float(raw["cooldown_until"]),
            )
            for host, raw in state["devices"].items()
        }

    def observe(
        self, message: SyslogMessage
    ) -> Optional[WarningSignature]:
        """Ingest one message; return a warning if one fires.

        Messages must arrive in per-device timestamp order (unless
        ``strict_order=False``, in which case a late message is
        silently dropped and counted).
        """
        return self.observe_batch([message])[0]

    def observe_batch(
        self, messages: Sequence[SyslogMessage]
    ) -> List[Optional[WarningSignature]]:
        """Ingest a tick of messages across any number of devices.

        Scoring runs micro-batched (one fused forward per round of
        the tick); warning clustering then replays the per-message
        results in arrival order, so emitted warnings are identical
        to observing each message individually.  In strict mode an
        out-of-order arrival raises before any message of the tick is
        ingested.
        """
        batch = self.scorer.observe_batch(messages)
        self.last_batch = batch
        results: List[Optional[WarningSignature]] = []
        scores = batch.scores
        kept = batch.kept
        anomalies_before = self.n_anomalies
        n_warnings = 0
        for i, message in enumerate(messages):
            if not kept[i]:
                results.append(None)
                continue
            state = self._devices.setdefault(
                message.host, _DeviceState()
            )
            self.n_observed += 1
            raw = scores[i]
            score = None if math.isnan(raw) else float(raw)
            state.last_score = score
            state.last_time = message.timestamp
            if score is None or score <= self.threshold:
                results.append(None)
                continue
            self.n_anomalies += 1
            warning = self._register_anomaly(state, message, score)
            if warning is not None:
                n_warnings += 1
            results.append(warning)
        if messages:
            registry = telemetry.default_registry()
            registry.counter("stream.anomalies").inc(
                self.n_anomalies - anomalies_before
            )
            registry.counter("stream.warnings_emitted").inc(n_warnings)
        return results

    def _register_anomaly(
        self,
        state: _DeviceState,
        message: SyslogMessage,
        score: float,
    ) -> Optional[WarningSignature]:
        now = message.timestamp
        # Drop anomalies that no longer chain into the cluster (a
        # fully expired cluster takes its stale peak with it).
        cluster = state.cluster
        cluster.prune(now, self.cluster_max_gap)
        cluster.record(message.host, now, score)
        if now < state.cooldown_until:
            return None
        if len(cluster.times) < self.cluster_min_size:
            return None
        state.cooldown_until = now + self.cooldown
        warning = WarningSignature(
            vpe=message.host,
            time=now,
            first_anomaly=cluster.times[0],
            n_anomalies=len(cluster.times),
            peak_score=cluster.peak_score,
        )
        cluster.reset()
        return warning

    def run(
        self,
        messages: Iterable[SyslogMessage],
        tick_size: Optional[int] = None,
        ticker: Optional[AdaptiveTicker] = None,
    ) -> List[WarningSignature]:
        """Drain a whole (sorted) stream in micro-batched ticks.

        With ``ticker`` the tick size adapts to backpressure: the
        ticker is fed the remaining backlog after every tick and may
        grow or shrink the next one.  Otherwise ``tick_size`` (or the
        constructor default) is used fixed.
        """
        if not isinstance(messages, (list, tuple)):
            messages = list(messages)
        warnings: List[WarningSignature] = []
        if ticker is not None:
            offset = 0
            while offset < len(messages):
                batch = messages[offset:offset + ticker.size]
                for warning in self.observe_batch(batch):
                    if warning is not None:
                        warnings.append(warning)
                offset += len(batch)
                ticker.update(len(messages) - offset)
            return warnings
        tick = self.tick_size if tick_size is None else tick_size
        if tick < 1:
            raise ValueError("tick_size must be >= 1")
        for start in range(0, len(messages), tick):
            for warning in self.observe_batch(
                messages[start:start + tick]
            ):
                if warning is not None:
                    warnings.append(warning)
        return warnings
