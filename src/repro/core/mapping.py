"""Mapping syslog anomalies to trouble tickets (section 4.1, Figure 4).

Each ticket defines a *predictive period* (a window before its report
time) and an *infected period* (report to repair finish).  A detected
anomaly falling in a ticket's predictive period is an **early
warning**; in the infected period an **error**; outside every ticket's
periods a **false alarm**.

The module also implements the warning-cluster rule of section 5.1
(report a warning signature upon a small cluster of two or more
anomalies) and the detection-rate-by-offset analysis behind Figure 8.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.evaluation.metrics import DetectionCounts
from repro.tickets.ticket import TroubleTicket
from repro.timeutil import DAY, MINUTE


class AnomalyKind(enum.Enum):
    """Classification of one detected anomaly relative to tickets."""

    EARLY_WARNING = "early_warning"
    ERROR = "error"
    FALSE_ALARM = "false_alarm"


@dataclass(frozen=True)
class AnomalyRecord:
    """One detected anomaly after ticket mapping.

    Attributes:
        vpe: device the anomaly was detected on.
        time: detection timestamp.
        kind: early warning / error / false alarm.
        ticket: the matched ticket (None for false alarms).
        lead_time: seconds by which the anomaly preceded the ticket
            report (positive = before; None for false alarms).
    """

    vpe: str
    time: float
    kind: AnomalyKind
    ticket: Optional[TroubleTicket] = None
    lead_time: Optional[float] = None


@dataclass(frozen=True)
class TicketHit:
    """One anomaly's relation to one (possibly secondary) ticket."""

    time: float
    lead_time: float


@dataclass
class MappingResult:
    """Everything produced by :func:`map_anomalies`.

    ``records`` carry each anomaly's *primary* match (the containing
    ticket with the earliest report time); ``ticket_hits`` credits
    every containing ticket, so a duplicate follow-up whose infected
    period nests inside the original's still counts as detected.
    """

    records: List[AnomalyRecord]
    tickets: List[TroubleTicket]
    predictive_period: float
    ticket_hits: Dict[int, List[TicketHit]] = field(
        default_factory=dict
    )

    def by_kind(self, kind: AnomalyKind) -> List[AnomalyRecord]:
        """The anomaly records of one kind."""
        return [record for record in self.records if record.kind is kind]

    @property
    def counts(self) -> DetectionCounts:
        """The precision/recall counting of section 5.2."""
        true_anomalies = sum(
            1
            for record in self.records
            if record.kind is not AnomalyKind.FALSE_ALARM
        )
        return DetectionCounts(
            true_anomalies=true_anomalies,
            false_alarms=len(self.records) - true_anomalies,
            tickets_detected=sum(
                1 for ticket in self.tickets
                if self.ticket_hits.get(ticket.ticket_id)
            ),
            tickets_total=len(self.tickets),
        )

    def false_alarms_per_day(self, span_seconds: float) -> float:
        """Fleet-wide false alarms per day over a trace span."""
        if span_seconds <= 0:
            raise ValueError("span_seconds must be positive")
        return (
            len(self.by_kind(AnomalyKind.FALSE_ALARM))
            / (span_seconds / DAY)
        )


def map_anomalies(
    anomalies: Mapping[str, np.ndarray],
    tickets: Sequence[TroubleTicket],
    predictive_period: float = DAY,
) -> MappingResult:
    """Classify per-vPE anomaly timestamps against tickets.

    Args:
        anomalies: per-vPE arrays of anomaly timestamps.
        tickets: candidate tickets (any vPE; filtered per device).
        predictive_period: the early-warning window length before each
            ticket's report time (the paper converges at 1 day).

    An anomaly matching several overlapping tickets maps to the one
    with the earliest report time, so one detection never double
    counts.
    """
    records: List[AnomalyRecord] = []
    hits: Dict[int, List[TicketHit]] = defaultdict(list)
    tickets_by_vpe: Dict[str, List[TroubleTicket]] = defaultdict(list)
    for ticket in tickets:
        tickets_by_vpe[ticket.vpe].append(ticket)
    for vpe_tickets in tickets_by_vpe.values():
        vpe_tickets.sort(key=lambda ticket: ticket.report_time)
    for vpe, times in anomalies.items():
        vpe_tickets = tickets_by_vpe.get(vpe, [])
        timelines = [
            ticket.timeline(predictive_period) for ticket in vpe_tickets
        ]
        for time in np.sort(np.asarray(times, dtype=np.float64)):
            time = float(time)
            containing = [
                timeline
                for timeline in timelines
                if timeline.contains(time)
            ]
            for timeline in containing:
                hits[timeline.ticket.ticket_id].append(
                    TicketHit(
                        time=time, lead_time=timeline.lead_time(time)
                    )
                )
            if not containing:
                records.append(
                    AnomalyRecord(
                        vpe=vpe, time=time, kind=AnomalyKind.FALSE_ALARM
                    )
                )
                continue
            primary = containing[0]  # earliest report time
            kind = (
                AnomalyKind.EARLY_WARNING
                if primary.is_early_warning(time)
                else AnomalyKind.ERROR
            )
            records.append(
                AnomalyRecord(
                    vpe=vpe,
                    time=time,
                    kind=kind,
                    ticket=primary.ticket,
                    lead_time=primary.lead_time(time),
                )
            )
    return MappingResult(
        records=records,
        tickets=list(tickets),
        predictive_period=predictive_period,
        ticket_hits=dict(hits),
    )


def warning_clusters(
    times: np.ndarray,
    min_size: int = 2,
    max_gap: float = 5 * MINUTE,
) -> np.ndarray:
    """Collapse raw anomalies into warning signatures (section 5.1).

    The paper observes that true anomalies arrive in tight clusters
    (< 1 minute apart on average) and configures the system to report
    a warning upon a small cluster of two or more anomalies.  Returns
    the first timestamp of every qualifying cluster.
    """
    if min_size < 1:
        raise ValueError(f"min_size must be >= 1, got {min_size}")
    times = np.sort(np.asarray(times, dtype=np.float64))
    if times.size == 0:
        return times
    starts: List[float] = []
    cluster_start = times[0]
    cluster_count = 1
    for previous, current in zip(times, times[1:]):
        if current - previous <= max_gap:
            cluster_count += 1
        else:
            if cluster_count >= min_size:
                starts.append(cluster_start)
            cluster_start = current
            cluster_count = 1
    if cluster_count >= min_size:
        starts.append(cluster_start)
    return np.asarray(starts, dtype=np.float64)


#: Figure 8's x-axis: minimum lead time (minutes) a detection must have.
#: Positive = before the ticket report, negative = allowed to trail it.
FIGURE8_OFFSETS_MINUTES: Tuple[float, ...] = (15.0, 5.0, 0.0, -5.0, -15.0)


def detection_rate_by_offset(
    result: MappingResult,
    offsets_minutes: Sequence[float] = FIGURE8_OFFSETS_MINUTES,
    include_duplicates: bool = False,
) -> Dict[str, Dict[float, float]]:
    """Per-root-cause detection rates at different lead offsets (Fig. 8).

    For each ticket and offset ``o`` (minutes), the ticket counts as
    detected when some mapped anomaly precedes the ticket report by at
    least ``o`` minutes (for negative ``o``: trails it by at most
    ``|o|``).  Returns rates keyed by root-cause value plus ``"all"``.
    """
    hits = result.ticket_hits
    tickets = [
        ticket
        for ticket in result.tickets
        if include_duplicates or not ticket.is_duplicate
    ]
    rates: Dict[str, Dict[float, float]] = {}
    groups: Dict[str, List[TroubleTicket]] = defaultdict(list)
    for ticket in tickets:
        groups[ticket.root_cause.value].append(ticket)
    groups["all"] = tickets
    for key, members in groups.items():
        rates[key] = {}
        for offset in offsets_minutes:
            threshold = offset * MINUTE
            detected = 0
            for ticket in members:
                ticket_hits = hits.get(ticket.ticket_id, [])
                if any(
                    hit.lead_time >= threshold for hit in ticket_hits
                ):
                    detected += 1
            rates[key][offset] = (
                detected / len(members) if members else 0.0
            )
    return rates
