"""The paper's primary contribution: LSTM-based predictive analysis.

* :mod:`repro.core.base` — the detector protocol all methods follow;
* :mod:`repro.core.detector` — the LSTM template-language-model
  detector (section 4.2), including minority-pattern over-sampling;
* :mod:`repro.core.grouping` — K-means vPE grouping (section 4.3);
* :mod:`repro.core.adaptation` — incremental updates and transfer-
  learning adaptation after software updates (section 4.3);
* :mod:`repro.core.mapping` — anomaly-to-ticket mapping with
  predictive/infected periods and warning clusters (section 4.1,
  Figure 4);
* :mod:`repro.core.thresholds` — PRC sweeps over the detection
  threshold (section 5.2);
* :mod:`repro.core.pipeline` — the rolling monthly train/detect loop
  over the full trace (section 5.1);
* :mod:`repro.core.baselines` — autoencoder and one-class SVM
  comparison methods (section 5.2), plus PCA and isolation-forest
  references;
* :mod:`repro.core.stream` — the vectorized streaming inference
  engine: per-device ring buffers and cross-device micro-batched
  fused scoring;
* :mod:`repro.core.online` — the streaming runtime of the paper's
  abstract: per-arrival scoring (single messages or ticks) with
  clustered warnings, built on the stream engine;
* :mod:`repro.core.triage` — the section 5.3 four-scenario
  categorization of detected conditions.
"""

from repro.core.base import (
    AnomalyDetector,
    ScoredStream,
    clamp_template_ids,
)
from repro.core.detector import LSTMAnomalyDetector
from repro.core.grouping import (
    VpeGrouping,
    fully_custom_grouping,
    group_vpes,
    universal_grouping,
)
from repro.core.mapping import (
    AnomalyRecord,
    AnomalyKind,
    MappingResult,
    map_anomalies,
    warning_clusters,
)
from repro.core.online import OnlineMonitor, WarningSignature
from repro.core.stream import StreamBatch, StreamScorer
from repro.core.thresholds import sweep_thresholds
from repro.core.adaptation import transfer_adapt
from repro.core.pipeline import PipelineConfig, RollingPipeline
from repro.core.triage import TriageFinding, TriageScenario, triage

__all__ = [
    "AnomalyDetector",
    "ScoredStream",
    "LSTMAnomalyDetector",
    "VpeGrouping",
    "group_vpes",
    "universal_grouping",
    "fully_custom_grouping",
    "AnomalyRecord",
    "AnomalyKind",
    "MappingResult",
    "map_anomalies",
    "warning_clusters",
    "sweep_thresholds",
    "transfer_adapt",
    "PipelineConfig",
    "RollingPipeline",
    "triage",
    "TriageFinding",
    "TriageScenario",
    "OnlineMonitor",
    "WarningSignature",
    "StreamBatch",
    "StreamScorer",
    "clamp_template_ids",
]
