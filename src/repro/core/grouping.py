"""vPE grouping via K-means (section 4.3).

Building one model per vPE maximizes accuracy but multiplies the
training-data requirement; one universal model starves diverse vPEs.
The paper's compromise: K-means over per-vPE syslog distributions,
choosing K by modularity (their dataset produces 4 clusters), then one
model per group trained on the group's aggregated logs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.features.counts import template_distribution
from repro.logs.message import SyslogMessage
from repro.logs.templates import TemplateStore
from repro.ml.kmeans import KMeans, choose_k


@dataclass
class VpeGrouping:
    """A partition of vPEs into model groups.

    Attributes:
        groups: group index -> member vPE names.
        labels: vPE name -> group index.
        k: number of groups.
    """

    groups: Dict[int, List[str]]
    labels: Dict[str, int]

    @property
    def k(self) -> int:
        """Number of groups."""
        return len(self.groups)

    def group_of(self, vpe: str) -> int:
        """Group index of ``vpe`` (KeyError when unknown)."""
        if vpe not in self.labels:
            raise KeyError(f"vPE {vpe!r} not in grouping")
        return self.labels[vpe]

    def members(self, group: int) -> List[str]:
        """The vPE names assigned to ``group``."""
        return list(self.groups[group])


def group_vpes(
    per_vpe_messages: Dict[str, Sequence[SyslogMessage]],
    store: TemplateStore,
    k: Optional[int] = None,
    candidates: Sequence[int] = (2, 3, 4, 5, 6),
    seed: int = 0,
) -> VpeGrouping:
    """Cluster vPEs by their (annotated) syslog template distributions.

    Args:
        per_vpe_messages: normal messages per vPE (one training month
            suffices, per the paper's data-reduction result).
        store: fitted template store used for annotation.
        k: fixed group count; ``None`` selects K by modularity.
        candidates: K candidates when selecting automatically.
        seed: clustering seed.
    """
    if not per_vpe_messages:
        raise ValueError("per_vpe_messages must be non-empty")
    names = sorted(per_vpe_messages)
    rows = []
    for name in names:
        annotated = store.transform(list(per_vpe_messages[name]))
        rows.append(
            template_distribution(annotated, store.vocabulary_size)
        )
    matrix = np.stack(rows)
    rng = np.random.default_rng(seed)
    if k is None:
        k = choose_k(matrix, candidates=candidates, rng=rng)
    k = min(k, len(names))
    labels = KMeans(k, rng=rng).fit(matrix).labels_
    groups: Dict[int, List[str]] = {}
    label_of: Dict[str, int] = {}
    # Re-index group ids densely in first-appearance order so empty
    # clusters (possible with degenerate data) do not leave holes.
    remap: Dict[int, int] = {}
    for name, raw_label in zip(names, labels):
        group = remap.setdefault(int(raw_label), len(remap))
        groups.setdefault(group, []).append(name)
        label_of[name] = group
    return VpeGrouping(groups=groups, labels=label_of)


def universal_grouping(vpes: Sequence[str]) -> VpeGrouping:
    """The K=1 baseline: every vPE in a single group."""
    names = list(vpes)
    return VpeGrouping(
        groups={0: names}, labels={name: 0 for name in names}
    )


def fully_custom_grouping(vpes: Sequence[str]) -> VpeGrouping:
    """The K=N extreme: one model per vPE (ablation)."""
    names = list(vpes)
    return VpeGrouping(
        groups={index: [name] for index, name in enumerate(names)},
        labels={name: index for index, name in enumerate(names)},
    )
