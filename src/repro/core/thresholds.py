"""Threshold sweeps producing precision-recall curves (section 5.2).

The detector emits a scored stream per vPE; sweeping the anomaly-score
threshold and mapping the resulting detections to tickets yields the
PRC.  Candidate thresholds are score quantiles, which spaces the curve
evenly in detection volume rather than in raw score units.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.base import ScoredStream
from repro.core.mapping import map_anomalies, warning_clusters
from repro.evaluation.metrics import PrecisionRecallPoint
from repro.tickets.ticket import TroubleTicket
from repro.timeutil import DAY, MINUTE


def candidate_thresholds(
    streams: Mapping[str, ScoredStream], n_thresholds: int = 25
) -> np.ndarray:
    """Quantile-spaced thresholds over the pooled score distribution."""
    if n_thresholds < 1:
        raise ValueError("n_thresholds must be >= 1")
    pooled = np.concatenate(
        [stream.scores for stream in streams.values() if len(stream)]
    )
    if pooled.size == 0:
        raise ValueError("no scores to sweep")
    # Anomalies are rare, so the interesting regime is the upper tail;
    # geometric spacing of the *exceedance* fraction puts half the
    # thresholds above the 99th percentile instead of wasting them on
    # the bulk of normal scores.
    exceedance = np.geomspace(0.5, 1e-5, n_thresholds)
    return np.unique(np.quantile(pooled, 1.0 - exceedance))


def sweep_thresholds(
    streams: Mapping[str, ScoredStream],
    tickets: Sequence[TroubleTicket],
    predictive_period: float = DAY,
    thresholds: Optional[np.ndarray] = None,
    n_thresholds: int = 25,
    cluster_min_size: int = 2,
    cluster_max_gap: float = 5 * MINUTE,
) -> List[PrecisionRecallPoint]:
    """Sweep detection thresholds into a PRC.

    Args:
        streams: per-vPE scored streams.
        tickets: ground-truth tickets for the scored span.
        predictive_period: early-warning window (Figure 5 varies it).
        thresholds: explicit thresholds; default quantile-spaced.
        cluster_min_size: anomalies per warning signature; 1 disables
            clustering (ablation), 2 is the paper's setting.
        cluster_max_gap: max spacing within a cluster.

    Returns:
        One :class:`PrecisionRecallPoint` per threshold.
    """
    if thresholds is None:
        thresholds = candidate_thresholds(streams, n_thresholds)
    curve: List[PrecisionRecallPoint] = []
    for threshold in np.asarray(thresholds, dtype=np.float64):
        detections: Dict[str, np.ndarray] = {}
        for vpe, stream in streams.items():
            raw = stream.anomalies(float(threshold))
            if cluster_min_size > 1:
                raw = warning_clusters(
                    raw,
                    min_size=cluster_min_size,
                    max_gap=cluster_max_gap,
                )
            detections[vpe] = raw
        result = map_anomalies(detections, tickets, predictive_period)
        counts = result.counts
        curve.append(
            PrecisionRecallPoint(
                threshold=float(threshold),
                precision=counts.precision,
                recall=counts.recall,
            )
        )
    return curve
