"""Shallow machine-learning substrate.

* :mod:`repro.ml.similarity` — cosine similarity (section 3.3);
* :mod:`repro.ml.kmeans` — K-means with a modularity-style criterion
  for choosing K (section 4.3's vPE grouping);
* :mod:`repro.ml.ocsvm` — one-class SVM (the shallow baseline of
  section 5.2);
* :mod:`repro.ml.pca` — PCA-subspace anomaly detection (Xu et al.,
  SOSP 2009), implemented as an additional reference method.
"""

from repro.ml.isolation_forest import IsolationForest
from repro.ml.kmeans import KMeans, choose_k
from repro.ml.ocsvm import OneClassSVM
from repro.ml.pca import PCADetector
from repro.ml.similarity import cosine_similarity, pairwise_cosine

__all__ = [
    "IsolationForest",
    "KMeans",
    "choose_k",
    "OneClassSVM",
    "PCADetector",
    "cosine_similarity",
    "pairwise_cosine",
]
