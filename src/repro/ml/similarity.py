"""Cosine similarity, the comparison metric of section 3.3."""

from __future__ import annotations

import numpy as np

from repro import telemetry


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two vectors.

    Zero vectors (e.g. an empty log window) have undefined direction;
    we define their similarity to anything as 0.0, which is the
    conservative choice for the paper's "did the distribution change"
    question.
    """
    a = np.asarray(a, dtype=np.float64).reshape(-1)
    b = np.asarray(b, dtype=np.float64).reshape(-1)
    if a.shape != b.shape:
        raise ValueError(
            f"vectors must have equal shape, got {a.shape} vs {b.shape}"
        )
    telemetry.counter("similarity.cosine_calls").inc()
    norm_a = np.linalg.norm(a)
    norm_b = np.linalg.norm(b)
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return float(np.dot(a, b) / (norm_a * norm_b))


def pairwise_cosine(matrix: np.ndarray) -> np.ndarray:
    """Cosine similarity between all row pairs of a matrix."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {matrix.shape}")
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    safe = matrix / np.maximum(norms, 1e-12)
    out = safe @ safe.T
    # Rows with zero norm get similarity 0 everywhere (incl. diagonal).
    zero = (norms.reshape(-1) == 0.0)
    out[zero, :] = 0.0
    out[:, zero] = 0.0
    return np.clip(out, -1.0, 1.0)
