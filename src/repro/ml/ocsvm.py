"""One-class SVM (Schölkopf's ν-OC-SVM) trained in the primal.

The shallow baseline of section 5.2 "uses shallow learning to build a
model of the normal syslog training data, which requires feature
engineering (mapping the data into a high dimensional feature space via
a kernel)".  We implement the ν-formulation

.. math::

    \\min_{w, \\rho} \\ \\tfrac{1}{2} \\lVert w \\rVert^2 - \\rho
        + \\tfrac{1}{\\nu n} \\sum_i \\max(0, \\rho - w \\cdot \\phi(x_i))

with sub-gradient descent.  The kernel feature map :math:`\\phi` is
either the identity (linear kernel) or random Fourier features
approximating an RBF kernel (Rahimi & Recht, 2007), which keeps
training linear in the sample count — important for month-scale log
volumes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class RandomFourierFeatures:
    """RFF map approximating ``k(x, y) = exp(-gamma ||x - y||^2)``."""

    def __init__(
        self,
        input_dim: int,
        n_components: int = 128,
        gamma: float = 1.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if n_components < 1:
            raise ValueError("n_components must be >= 1")
        if gamma <= 0:
            raise ValueError(f"gamma must be positive, got {gamma}")
        rng = rng or np.random.default_rng(0)
        self.weights = rng.normal(
            scale=np.sqrt(2.0 * gamma), size=(input_dim, n_components)
        )
        self.offsets = rng.uniform(0.0, 2.0 * np.pi, size=n_components)
        self.scale = np.sqrt(2.0 / n_components)

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Random Fourier feature map of ``x``."""
        return self.scale * np.cos(x @ self.weights + self.offsets)


class OneClassSVM:
    """ν-one-class SVM with linear or RBF (RFF-approximated) kernel.

    Args:
        nu: upper bound on the training outlier fraction and lower
            bound on the support-vector fraction; the usual knob.
        kernel: ``"linear"`` or ``"rbf"``.
        gamma: RBF width (ignored for linear).
        n_components: RFF dimension for the RBF approximation.
        epochs / learning_rate / batch_size: SGD schedule.
        rng: random generator for RFF draws and shuffling.
    """

    def __init__(
        self,
        nu: float = 0.05,
        kernel: str = "rbf",
        gamma: float = 1.0,
        n_components: int = 128,
        epochs: int = 30,
        learning_rate: float = 0.05,
        batch_size: int = 64,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not 0.0 < nu <= 1.0:
            raise ValueError(f"nu must be in (0, 1], got {nu}")
        if kernel not in ("linear", "rbf"):
            raise ValueError(f"kernel must be linear or rbf, got {kernel}")
        self.nu = nu
        self.kernel = kernel
        self.gamma = gamma
        self.n_components = n_components
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.rng = rng or np.random.default_rng(0)
        self._map: Optional[RandomFourierFeatures] = None
        self.w_: np.ndarray = None  # type: ignore[assignment]
        self.rho_: float = 0.0

    def _features(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError(f"expected 2-D inputs, got {x.shape}")
        if self.kernel == "linear":
            return x
        if self._map is None:
            self._map = RandomFourierFeatures(
                x.shape[1],
                n_components=self.n_components,
                gamma=self.gamma,
                rng=self.rng,
            )
        return self._map.transform(x)

    def fit(self, x: np.ndarray) -> "OneClassSVM":
        """Fit on normal data only (one-class training)."""
        phi = self._features(x)
        n, dim = phi.shape
        self.w_ = np.zeros(dim)
        self.rho_ = 0.0
        for epoch in range(self.epochs):
            order = self.rng.permutation(n)
            step = self.learning_rate / (1.0 + 0.1 * epoch)
            for start in range(0, n, self.batch_size):
                batch = phi[order[start:start + self.batch_size]]
                # Mini-batch estimate of the objective: the hinge term
                # averages over the batch, scaled by 1/nu.
                inv = 1.0 / (self.nu * batch.shape[0])
                scores = batch @ self.w_
                violating = scores < self.rho_
                grad_w = self.w_.copy()
                grad_rho = -1.0
                if np.any(violating):
                    grad_w -= inv * batch[violating].sum(axis=0)
                    grad_rho += inv * int(violating.sum())
                self.w_ -= step * grad_w
                self.rho_ -= step * grad_rho
        return self

    def score_samples(self, x: np.ndarray) -> np.ndarray:
        """Signed distance to the boundary; negative means anomalous."""
        if self.w_ is None:
            raise RuntimeError("OneClassSVM.score_samples before fit")
        return self._features(x) @ self.w_ - self.rho_

    def predict(self, x: np.ndarray) -> np.ndarray:
        """+1 for inliers, -1 for anomalies (libsvm convention)."""
        return np.where(self.score_samples(x) >= 0.0, 1, -1)
