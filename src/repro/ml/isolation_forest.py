"""Isolation forest (Liu, Ting & Zhou, 2008).

An additional unsupervised baseline beyond the paper's two comparison
methods: isolation forests isolate anomalies with random axis-aligned
splits — points that isolate in few splits are anomalous.  Included
because it is the de-facto industrial default for tabular anomaly
detection, making it a natural "what if we just used the standard
tool" reference for the method-comparison bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np


def _harmonic(n: float) -> float:
    """Approximate harmonic number H(n)."""
    return float(np.log(n) + 0.5772156649)


def average_path_length(n: int) -> float:
    """Expected path length of unsuccessful BST search, c(n)."""
    if n <= 1:
        return 0.0
    if n == 2:
        return 1.0
    return 2.0 * _harmonic(n - 1) - 2.0 * (n - 1) / n


@dataclass
class _Node:
    """One node of an isolation tree."""

    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    size: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _build_tree(
    points: np.ndarray,
    rng: np.random.Generator,
    depth: int,
    max_depth: int,
) -> _Node:
    n = points.shape[0]
    if depth >= max_depth or n <= 1:
        return _Node(size=n)
    # pick a feature with spread; give up after a few tries
    for _ in range(4):
        feature = int(rng.integers(points.shape[1]))
        lo = float(points[:, feature].min())
        hi = float(points[:, feature].max())
        if hi > lo:
            break
    else:
        return _Node(size=n)
    threshold = float(rng.uniform(lo, hi))
    mask = points[:, feature] < threshold
    return _Node(
        feature=feature,
        threshold=threshold,
        left=_build_tree(points[mask], rng, depth + 1, max_depth),
        right=_build_tree(points[~mask], rng, depth + 1, max_depth),
        size=n,
    )


def _path_length(node: _Node, point: np.ndarray, depth: int) -> float:
    while not node.is_leaf:
        if point[node.feature] < node.threshold:
            node = node.left
        else:
            node = node.right
        depth += 1
    return depth + average_path_length(node.size)


class IsolationForest:
    """Isolation forest anomaly scorer.

    Args:
        n_trees: ensemble size.
        sample_size: sub-sample per tree (256 in the original paper).
        rng: seeded generator.
    """

    def __init__(
        self,
        n_trees: int = 100,
        sample_size: int = 256,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if n_trees < 1:
            raise ValueError("n_trees must be >= 1")
        if sample_size < 2:
            raise ValueError("sample_size must be >= 2")
        self.n_trees = n_trees
        self.sample_size = sample_size
        self.rng = rng or np.random.default_rng(0)
        self._trees: List[_Node] = []
        self._c: float = 1.0

    def fit(self, x: np.ndarray) -> "IsolationForest":
        """Fit the forest on rows of ``x``; returns self."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[0] < 2:
            raise ValueError(f"need an (n >= 2, d) matrix, got {x.shape}")
        sample = min(self.sample_size, x.shape[0])
        max_depth = int(np.ceil(np.log2(sample)))
        self._trees = []
        for _ in range(self.n_trees):
            index = self.rng.choice(
                x.shape[0], size=sample, replace=False
            )
            self._trees.append(
                _build_tree(x[index], self.rng, 0, max_depth)
            )
        self._c = average_path_length(sample)
        return self

    def score_samples(self, x: np.ndarray) -> np.ndarray:
        """Anomaly score in (0, 1); higher = more anomalous."""
        if not self._trees:
            raise RuntimeError("IsolationForest.score_samples before fit")
        x = np.asarray(x, dtype=np.float64)
        scores = np.empty(x.shape[0])
        for row in range(x.shape[0]):
            mean_path = np.mean([
                _path_length(tree, x[row], 0) for tree in self._trees
            ])
            scores[row] = 2.0 ** (-mean_path / max(self._c, 1e-9))
        return scores

    def predict(self, x: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """+1 inlier / -1 anomaly at an anomaly-score threshold."""
        return np.where(
            self.score_samples(x) <= threshold, 1, -1
        )
