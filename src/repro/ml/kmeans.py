"""K-means clustering with k-means++ seeding and K selection.

Section 4.3: "We apply K-means to group vPEs and choose the number of
groups K based on the modularity."  We implement Lloyd's algorithm with
k-means++ initialization, plus :func:`choose_k`, which scores each
candidate K by Newman modularity of the induced partition over a
similarity graph of the points (edges weighted by cosine similarity).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.ml.similarity import pairwise_cosine


class KMeans:
    """Lloyd's algorithm with k-means++ initialization.

    Args:
        n_clusters: K.
        n_init: number of random restarts; the best inertia wins.
        max_iter: Lloyd iterations per restart.
        tol: relative centroid-movement convergence tolerance.
        rng: random generator (seeded for reproducibility).
    """

    def __init__(
        self,
        n_clusters: int,
        n_init: int = 8,
        max_iter: int = 200,
        tol: float = 1e-6,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        self.n_clusters = n_clusters
        self.n_init = n_init
        self.max_iter = max_iter
        self.tol = tol
        self.rng = rng or np.random.default_rng(0)
        self.centroids_: np.ndarray = None  # type: ignore[assignment]
        self.labels_: np.ndarray = None  # type: ignore[assignment]
        self.inertia_: float = np.inf

    def _plus_plus_init(self, points: np.ndarray) -> np.ndarray:
        n = points.shape[0]
        centroids = np.empty(
            (self.n_clusters, points.shape[1]), dtype=np.float64
        )
        centroids[0] = points[self.rng.integers(n)]
        closest = np.full(n, np.inf)
        for index in range(1, self.n_clusters):
            diff = points - centroids[index - 1]
            closest = np.minimum(closest, np.sum(diff * diff, axis=1))
            total = closest.sum()
            if total == 0.0:
                centroids[index:] = points[
                    self.rng.integers(n, size=self.n_clusters - index)
                ]
                break
            probabilities = closest / total
            centroids[index] = points[
                self.rng.choice(n, p=probabilities)
            ]
        return centroids

    @staticmethod
    def _assign(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
        distances = (
            np.sum(points * points, axis=1, keepdims=True)
            - 2.0 * points @ centroids.T
            + np.sum(centroids * centroids, axis=1)
        )
        return np.argmin(distances, axis=1)

    def fit(self, points: np.ndarray) -> "KMeans":
        """Run Lloyd iterations until convergence; returns self."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError(f"expected 2-D points, got {points.shape}")
        if points.shape[0] < self.n_clusters:
            raise ValueError(
                f"need at least {self.n_clusters} points, "
                f"got {points.shape[0]}"
            )
        best_inertia = np.inf
        best_labels: Optional[np.ndarray] = None
        best_centroids: Optional[np.ndarray] = None
        for _ in range(self.n_init):
            centroids = self._plus_plus_init(points)
            labels = self._assign(points, centroids)
            for _ in range(self.max_iter):
                new_centroids = centroids.copy()
                for cluster in range(self.n_clusters):
                    members = points[labels == cluster]
                    if members.size:
                        new_centroids[cluster] = members.mean(axis=0)
                movement = float(
                    np.linalg.norm(new_centroids - centroids)
                )
                centroids = new_centroids
                labels = self._assign(points, centroids)
                if movement <= self.tol * (
                    1.0 + float(np.linalg.norm(centroids))
                ):
                    break
            diff = points - centroids[labels]
            inertia = float(np.sum(diff * diff))
            if inertia < best_inertia:
                best_inertia = inertia
                best_labels = labels
                best_centroids = centroids
        self.inertia_ = best_inertia
        self.labels_ = best_labels
        self.centroids_ = best_centroids
        return self

    def predict(self, points: np.ndarray) -> np.ndarray:
        """Nearest-centroid label per row of ``points``."""
        if self.centroids_ is None:
            raise RuntimeError("KMeans.predict before fit")
        return self._assign(
            np.asarray(points, dtype=np.float64), self.centroids_
        )


def partition_modularity(
    similarity: np.ndarray, labels: np.ndarray
) -> float:
    """Newman modularity of a labelled partition of a similarity graph.

    ``similarity`` is a symmetric non-negative weight matrix (self
    loops ignored).  Modularity compares intra-cluster weight to the
    expectation under a degree-preserving null model.
    """
    weights = np.asarray(similarity, dtype=np.float64).copy()
    np.fill_diagonal(weights, 0.0)
    weights = np.maximum(weights, 0.0)
    total = weights.sum()
    if total == 0.0:
        return 0.0
    degrees = weights.sum(axis=1)
    same = labels.reshape(-1, 1) == labels.reshape(1, -1)
    expected = np.outer(degrees, degrees) / total
    return float(np.sum((weights - expected)[same]) / total)


def choose_k(
    points: np.ndarray,
    candidates: Sequence[int] = (2, 3, 4, 5, 6, 7, 8),
    rng: Optional[np.random.Generator] = None,
) -> int:
    """Pick K by maximizing modularity over a cosine-similarity graph.

    This realizes the paper's "choose the number of groups K based on
    the modularity" without committing to a graph community algorithm:
    the candidate partitions come from K-means itself.
    """
    points = np.asarray(points, dtype=np.float64)
    similarity = pairwise_cosine(points)
    rng = rng or np.random.default_rng(0)
    best_k, best_score = None, -np.inf
    for k in candidates:
        if k > points.shape[0]:
            continue
        labels = KMeans(k, rng=rng).fit(points).labels_
        score = partition_modularity(similarity, labels)
        if score > best_score:
            best_k, best_score = k, score
    if best_k is None:
        raise ValueError("no feasible candidate K for the point count")
    return best_k
