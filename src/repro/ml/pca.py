"""PCA-subspace anomaly detection (Xu et al., SOSP 2009).

The related-work baseline: project feature vectors onto the principal
subspace learned from normal data; the squared residual norm in the
complementary subspace is the anomaly score (large residual = the
vector does not fit the dominant correlation structure of normal logs).
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class PCADetector:
    """Residual-subspace anomaly scoring.

    Args:
        variance_retained: fraction of training variance the principal
            subspace must capture (Xu et al. use 0.95).
        n_components: overrides ``variance_retained`` with an explicit
            subspace dimension when set.
    """

    def __init__(
        self,
        variance_retained: float = 0.95,
        n_components: Optional[int] = None,
    ) -> None:
        if not 0.0 < variance_retained <= 1.0:
            raise ValueError(
                "variance_retained must be in (0, 1], got "
                f"{variance_retained}"
            )
        self.variance_retained = variance_retained
        self.n_components = n_components
        self.mean_: np.ndarray = None  # type: ignore[assignment]
        self.components_: np.ndarray = None  # type: ignore[assignment]

    def fit(self, x: np.ndarray) -> "PCADetector":
        """Fit the principal subspace on rows of ``x``; returns self."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[0] < 2:
            raise ValueError(
                f"need a (n >= 2, d) matrix, got shape {x.shape}"
            )
        self.mean_ = x.mean(axis=0)
        centered = x - self.mean_
        _, singular_values, rows = np.linalg.svd(
            centered, full_matrices=False
        )
        if self.n_components is not None:
            keep = min(self.n_components, rows.shape[0])
        else:
            energy = singular_values**2
            total = energy.sum()
            if total == 0.0:
                keep = 1
            else:
                ratio = np.cumsum(energy) / total
                keep = int(
                    np.searchsorted(ratio, self.variance_retained) + 1
                )
        self.components_ = rows[:keep]
        return self

    def score_samples(self, x: np.ndarray) -> np.ndarray:
        """Squared residual norm; larger means more anomalous."""
        if self.components_ is None:
            raise RuntimeError("PCADetector.score_samples before fit")
        centered = np.asarray(x, dtype=np.float64) - self.mean_
        projected = centered @ self.components_.T @ self.components_
        residual = centered - projected
        return np.sum(residual * residual, axis=1)

    def predict(self, x: np.ndarray, threshold: float) -> np.ndarray:
        """+1 inlier / -1 anomaly at the given residual threshold."""
        return np.where(self.score_samples(x) <= threshold, 1, -1)
