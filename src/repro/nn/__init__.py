"""A small deep-learning framework in pure numpy.

The paper implements its models in Keras on TensorFlow; neither is
available offline, so this package provides the pieces those models
need, from scratch:

* :mod:`repro.nn.layers` — ``Dense``, ``Embedding``, ``TupleEmbedding``,
  ``Dropout`` with exact backprop;
* :mod:`repro.nn.lstm` — a full LSTM layer with backpropagation
  through time;
* :mod:`repro.nn.losses` — softmax cross-entropy (the paper's
  "categorical cross entropy") and mean squared error;
* :mod:`repro.nn.optimizers` — SGD with momentum, RMSprop, Adam;
* :mod:`repro.nn.model` — a ``Sequential`` container with training
  loops, layer freezing (for the paper's transfer learning), weight
  save/load and cloning.

Every stochastic operation takes an explicit ``numpy.random.Generator``
so training runs are reproducible bit-for-bit.
"""

from repro.nn.activations import relu, sigmoid, softmax, tanh
from repro.nn.initializers import glorot_uniform, orthogonal, zeros
from repro.nn.layers import Dense, Dropout, Embedding, Layer, TupleEmbedding
from repro.nn.losses import (
    Loss,
    MeanSquaredError,
    SoftmaxCrossEntropy,
)
from repro.nn.gru import GRU
from repro.nn.lstm import LSTM
from repro.nn.model import Sequential
from repro.nn.optimizers import SGD, Adam, Optimizer, RMSprop

__all__ = [
    "relu",
    "sigmoid",
    "softmax",
    "tanh",
    "glorot_uniform",
    "orthogonal",
    "zeros",
    "Layer",
    "Dense",
    "Dropout",
    "Embedding",
    "TupleEmbedding",
    "LSTM",
    "GRU",
    "Loss",
    "SoftmaxCrossEntropy",
    "MeanSquaredError",
    "Sequential",
    "Optimizer",
    "SGD",
    "RMSprop",
    "Adam",
]
