"""Feed-forward layers: Dense, Embedding, TupleEmbedding, Dropout.

Every layer implements the same protocol:

* ``build(input_shape, rng)`` — allocate parameters (idempotent);
* ``forward(x, training)`` — compute outputs, caching what backward
  needs;
* ``infer(x)`` — inference-only forward: numerically identical to
  ``forward(x, training=False)`` but skips every backward cache, so
  streaming/scoring hot paths neither allocate nor retain
  ``(batch, steps, ·)`` activation buffers;
* ``backward(grad)`` — given d(loss)/d(output), accumulate parameter
  gradients and return d(loss)/d(input);
* ``params`` / ``grads`` — dictionaries keyed by parameter name;
* ``trainable`` — when False the optimizer skips the layer, which is
  how the paper's transfer learning freezes the bottom of a teacher
  model while fine-tuning the top;
* ``clear_cache()`` — drop forward-pass caches (used before pickling
  a trained model, e.g. when parallel training returns it from a
  worker process).

Parameter-bearing layers accept a ``dtype`` (default float64);
``np.float32`` opts into the faster low-precision path end to end.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.nn.activations import get_activation
from repro.nn.initializers import (
    DEFAULT_DTYPE,
    glorot_uniform,
    uniform_scaled,
    zeros,
)


class Layer:
    """Base class for all layers."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.trainable = True
        self.params: Dict[str, np.ndarray] = {}
        self.grads: Dict[str, np.ndarray] = {}
        self.built = False

    def build(
        self, input_shape: Tuple[int, ...], rng: np.random.Generator
    ) -> Tuple[int, ...]:
        """Allocate parameters; return the output shape (sans batch)."""
        raise NotImplementedError

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Forward pass; ``training=True`` caches for :meth:`backward`."""
        raise NotImplementedError

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Cache-free inference forward (same values as ``forward``)."""
        return self.forward(x, training=False)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backpropagate ``grad``; returns the gradient w.r.t. the input."""
        raise NotImplementedError

    def zero_grads(self) -> None:
        """Reset accumulated gradients to zero."""
        for key, value in self.params.items():
            self.grads[key] = np.zeros_like(value)

    def reset_state(self) -> None:
        """Clear any recurrent state; no-op for feed-forward layers."""

    def clear_cache(self) -> None:
        """Drop forward-pass caches; no-op for cacheless layers."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class Dense(Layer):
    """Fully connected layer: ``y = activation(x @ W + b)``.

    Accepts inputs of shape ``(batch, features)`` or
    ``(batch, time, features)``; the time axis is treated as extra
    batch dimensions.
    """

    def __init__(
        self,
        units: int,
        activation: str = "linear",
        name: str = "dense",
        dtype: np.dtype = DEFAULT_DTYPE,
    ) -> None:
        super().__init__(name)
        if units < 1:
            raise ValueError(f"units must be >= 1, got {units}")
        self.units = units
        self.activation_name = activation
        self.dtype = np.dtype(dtype)
        self._activation, self._activation_grad = get_activation(activation)
        self._cache_x: Optional[np.ndarray] = None
        self._cache_out: Optional[np.ndarray] = None

    def build(
        self, input_shape: Tuple[int, ...], rng: np.random.Generator
    ) -> Tuple[int, ...]:
        """Initialize weights and bias; returns the output shape."""
        features = input_shape[-1]
        if not self.built:
            self.params = {
                "W": glorot_uniform(
                    (features, self.units), rng, dtype=self.dtype
                ),
                "b": zeros((self.units,), dtype=self.dtype),
            }
            self.zero_grads()
            self.built = True
        return (*input_shape[:-1], self.units)

    def clear_cache(self) -> None:
        """Drop activations cached for backpropagation."""
        self._cache_x = None
        self._cache_out = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Affine map plus activation; caches for :meth:`backward`."""
        out = self._activation(x @ self.params["W"] + self.params["b"])
        self._cache_x = x
        self._cache_out = out
        return out

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Cache-free forward pass for inference."""
        return self._activation(x @ self.params["W"] + self.params["b"])

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backpropagate ``grad``; returns the gradient w.r.t. the input."""
        x, out = self._cache_x, self._cache_out
        if x is None or out is None:
            raise RuntimeError("backward called before forward")
        grad = grad * self._activation_grad(out)
        flat_x = x.reshape(-1, x.shape[-1])
        flat_grad = grad.reshape(-1, grad.shape[-1])
        self.grads["W"] += flat_x.T @ flat_grad
        self.grads["b"] += flat_grad.sum(axis=0)
        return grad @ self.params["W"].T


class Embedding(Layer):
    """Integer-id lookup table: ``(batch, time) -> (batch, time, dim)``."""

    def __init__(
        self,
        vocabulary: int,
        dim: int,
        name: str = "embedding",
        dtype: np.dtype = DEFAULT_DTYPE,
    ) -> None:
        super().__init__(name)
        if vocabulary < 1 or dim < 1:
            raise ValueError("vocabulary and dim must be >= 1")
        self.vocabulary = vocabulary
        self.dim = dim
        self.dtype = np.dtype(dtype)
        self._cache_ids: Optional[np.ndarray] = None

    def build(
        self, input_shape: Tuple[int, ...], rng: np.random.Generator
    ) -> Tuple[int, ...]:
        """Initialize the embedding table; returns the output shape."""
        if not self.built:
            self.params = {
                "E": uniform_scaled(
                    (self.vocabulary, self.dim), rng, dtype=self.dtype
                )
            }
            self.zero_grads()
            self.built = True
        return (*input_shape, self.dim)

    def clear_cache(self) -> None:
        """Drop activations cached for backpropagation."""
        self._cache_ids = None

    def _lookup(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        ids = np.asarray(x, dtype=np.int64)
        if ids.min(initial=0) < 0 or ids.max(initial=0) >= self.vocabulary:
            raise ValueError(
                f"embedding ids out of range [0, {self.vocabulary})"
            )
        return ids, self.params["E"][ids]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Embedding lookup; caches indices for :meth:`backward`."""
        ids, out = self._lookup(x)
        self._cache_ids = ids
        return out

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Cache-free embedding lookup for inference."""
        return self._lookup(x)[1]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Scatter ``grad`` into the embedding rows that were read."""
        ids = self._cache_ids
        if ids is None:
            raise RuntimeError("backward called before forward")
        flat_ids = ids.reshape(-1)
        flat_grad = np.ascontiguousarray(grad.reshape(-1, self.dim))
        # Scatter-add via a single bincount over the composite
        # (id, column) index — much faster than np.add.at's generic
        # buffered scatter.
        composite = (
            flat_ids[:, None] * self.dim + np.arange(self.dim)
        ).reshape(-1)
        self.grads["E"] += np.bincount(
            composite,
            weights=flat_grad.reshape(-1),
            minlength=self.vocabulary * self.dim,
        ).reshape(self.vocabulary, self.dim)
        # Integer inputs have no gradient; return zeros of input shape
        # so a Sequential chain stays well-typed.
        return np.zeros(ids.shape, dtype=grad.dtype)


class TupleEmbedding(Layer):
    """Embed ``(template_id, gap_bucket)`` pairs and concatenate.

    Input shape ``(batch, time, 2)`` of integer ids; output
    ``(batch, time, id_dim + gap_dim)``.  This realizes the paper's
    per-log tuple ``(m_i, t_i - t_{i-1})`` as a single dense vector.
    """

    def __init__(
        self,
        id_vocabulary: int,
        gap_vocabulary: int,
        id_dim: int = 32,
        gap_dim: int = 4,
        name: str = "tuple_embedding",
        dtype: np.dtype = DEFAULT_DTYPE,
    ) -> None:
        super().__init__(name)
        self.dtype = np.dtype(dtype)
        self.id_embedding = Embedding(
            id_vocabulary, id_dim, name="ids", dtype=dtype
        )
        self.gap_embedding = Embedding(
            gap_vocabulary, gap_dim, name="gaps", dtype=dtype
        )
        # Fused lookup table for the inference hot path: row (i, g)
        # holds concat(E_ids[i], E_gaps[g]) verbatim, so the per-tick
        # lookup is one contiguous gather instead of two gathers plus a
        # concatenate.  Built lazily; dropped whenever the tables can
        # change (``zero_grads`` runs on every weight load and before
        # every training step).
        self._fused: Optional[np.ndarray] = None

    @property
    def output_dim(self) -> int:
        """Concatenated width of the per-field embeddings."""
        return self.id_embedding.dim + self.gap_embedding.dim

    def build(
        self, input_shape: Tuple[int, ...], rng: np.random.Generator
    ) -> Tuple[int, ...]:
        """Build one embedding table per tuple field; returns the shape."""
        if input_shape[-1] != 2:
            raise ValueError(
                f"TupleEmbedding expects trailing dim 2, got {input_shape}"
            )
        inner = input_shape[:-1]
        self.id_embedding.build(inner, rng)
        self.gap_embedding.build(inner, rng)
        if not self.built:
            self.params = {
                "ids.E": self.id_embedding.params["E"],
                "gaps.E": self.gap_embedding.params["E"],
            }
            self.zero_grads()
            # Share gradient buffers with the children so their
            # backward passes accumulate into what the optimizer sees.
            self.id_embedding.grads["E"] = self.grads["ids.E"]
            self.gap_embedding.grads["E"] = self.grads["gaps.E"]
            self.built = True
        return (*inner, self.output_dim)

    def zero_grads(self) -> None:
        """Zero the accumulated gradients of every field table.

        Also invalidates the fused inference table: ``zero_grads``
        runs at the start of every training step and at the end of
        every ``Sequential.set_weights`` (hot swap, checkpoint
        restore), which are exactly the points where the embedding
        tables may change under the cache.
        """
        super().zero_grads()
        self._fused = None
        if self.built:
            self.id_embedding.grads["E"] = self.grads["ids.E"]
            self.gap_embedding.grads["E"] = self.grads["gaps.E"]

    def clear_cache(self) -> None:
        """Drop activations cached for backpropagation."""
        self.id_embedding.clear_cache()
        self.gap_embedding.clear_cache()
        self._fused = None

    def _fused_table(self) -> np.ndarray:
        """The ``(id_vocab, gap_vocab, id_dim + gap_dim)`` gather table.

        Each row is a bit-exact copy of the concatenation the unfused
        path produces, so gathering from it is bitwise identical to
        two per-field lookups plus ``np.concatenate``.
        """
        if self._fused is None:
            ids_table = self.id_embedding.params["E"]
            gaps_table = self.gap_embedding.params["E"]
            split = self.id_embedding.dim
            fused = np.empty(
                (
                    self.id_embedding.vocabulary,
                    self.gap_embedding.vocabulary,
                    self.output_dim,
                ),
                dtype=ids_table.dtype,
            )
            fused[:, :, :split] = ids_table[:, None, :]
            fused[:, :, split:] = gaps_table[None, :, :]
            self._fused = fused
        return self._fused

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Per-field lookups concatenated; caches for :meth:`backward`."""
        ids = self.id_embedding.forward(x[..., 0], training)
        gaps = self.gap_embedding.forward(x[..., 1], training)
        return np.concatenate([ids, gaps], axis=-1)

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Cache-free lookup via the fused table (one gather)."""
        ids = np.asarray(x, dtype=np.int64)
        tids = ids[..., 0]
        gaps = ids[..., 1]
        if (
            tids.min(initial=0) < 0
            or tids.max(initial=0) >= self.id_embedding.vocabulary
        ):
            raise ValueError(
                "embedding ids out of range "
                f"[0, {self.id_embedding.vocabulary})"
            )
        if (
            gaps.min(initial=0) < 0
            or gaps.max(initial=0) >= self.gap_embedding.vocabulary
        ):
            raise ValueError(
                "embedding ids out of range "
                f"[0, {self.gap_embedding.vocabulary})"
            )
        return self._fused_table()[tids, gaps]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Split ``grad`` by field and scatter into each table."""
        split = self.id_embedding.dim
        self.id_embedding.backward(grad[..., :split])
        self.gap_embedding.backward(grad[..., split:])
        shape = grad.shape[:-1] + (2,)
        return np.zeros(shape, dtype=grad.dtype)


class Dropout(Layer):
    """Inverted dropout; identity at inference time."""

    def __init__(
        self,
        rate: float,
        rng: Optional[np.random.Generator] = None,
        name: str = "dropout",
    ) -> None:
        super().__init__(name)
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng or np.random.default_rng(0)
        self._mask: Optional[np.ndarray] = None

    def build(
        self, input_shape: Tuple[int, ...], rng: np.random.Generator
    ) -> Tuple[int, ...]:
        """Validate the input shape; dropout has no parameters."""
        self.built = True
        return input_shape

    def clear_cache(self) -> None:
        """Drop the cached dropout mask."""
        self._mask = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Apply an inverted-dropout mask when training."""
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (
            self._rng.random(x.shape) < keep
        ).astype(x.dtype) / keep
        return x * self._mask

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Identity at inference (dropout is training-only)."""
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backpropagate through the cached dropout mask."""
        if self._mask is None:
            return grad
        return grad * self._mask
