"""Sequential model container: training loop, freezing, save/load.

:class:`Sequential` chains layers, drives mini-batch training against a
loss/optimizer pair, and provides the two capabilities the paper's
adaptation mechanism needs:

* :meth:`clone` — copy a teacher model's architecture and weights into
  a fresh student;
* :meth:`freeze` / :meth:`unfreeze` — stop gradient updates for the
  bottom of the network while the top fine-tunes on new data.
"""

from __future__ import annotations

import copy
import time
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.nn.layers import Layer
from repro.nn.losses import Loss
from repro.nn.optimizers import Optimizer, ParamTriple

#: Version of the ``.npz`` weight archive layout written by
#: :meth:`Sequential.save`.  Version 1 added the ``__repro_format__``
#: and ``__repro_dtype__`` metadata entries; archives without them are
#: legacy (pre-versioning) files and stay loadable.
WEIGHTS_FORMAT_VERSION = 1

#: Metadata keys embedded in the archive alongside the weights.
_FORMAT_KEY = "__repro_format__"
_DTYPE_KEY = "__repro_dtype__"


def batches(
    n: int,
    batch_size: int,
    rng: Optional[np.random.Generator] = None,
) -> Iterator[np.ndarray]:
    """Yield index arrays covering ``range(n)`` in batches.

    When ``rng`` is given the order is shuffled; the final short batch
    is always yielded.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    order = np.arange(n)
    if rng is not None:
        rng.shuffle(order)
    for start in range(0, n, batch_size):
        yield order[start:start + batch_size]


class Sequential:
    """A linear stack of layers.

    Args:
        layers: the layer stack, bottom first.
        rng: generator used for weight initialization (and dropout).
    """

    def __init__(
        self,
        layers: Sequence[Layer],
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not layers:
            raise ValueError("Sequential needs at least one layer")
        names = [layer.name for layer in layers]
        if len(set(names)) != len(names):
            raise ValueError(f"layer names must be unique, got {names}")
        self.layers: List[Layer] = list(layers)
        self.rng = rng or np.random.default_rng(0)
        self._built = False
        #: Monotonic counter bumped by every :meth:`set_weights` call
        #: (hot swap, checkpoint restore, archive load).  Derived
        #: inference state — e.g. a quantized twin of this model — is
        #: keyed on it and rebuilt when it moves.  Raw in-place
        #: optimizer steps do not bump it; quantize from models that
        #: are not mid-training.
        self.weights_version = 0

    def build(self, input_shape: Tuple[int, ...]) -> "Sequential":
        """Build every layer given the per-sample input shape."""
        shape = tuple(input_shape)
        for layer in self.layers:
            shape = layer.build(shape, self.rng)
        self._built = True
        return self

    def _require_built(self) -> None:
        if not self._built:
            raise RuntimeError(
                "model not built; call build(input_shape) first"
            )

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Forward through every layer; ``training=True`` caches for backward."""
        self._require_built()
        out = x
        for layer in self.layers:
            out = layer.forward(out, training)
        return out

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Inference-only forward: no backward caches are written.

        A batch of one is padded to two rows (and the pad row
        discarded) before hitting the layer stack: BLAS dispatches
        single-row matmuls to a gemv kernel whose accumulation order
        differs from the gemm kernels used for every larger batch, so
        without the pad a batch-of-1 score would drift from the same
        sample scored inside a bigger batch by a few ulps.  With it,
        ``infer`` results are row-wise independent of how samples are
        batched — the invariant the streaming scorer's bitwise
        online/offline parity rests on.
        """
        self._require_built()
        out = x
        padded = out.shape[0] == 1
        if padded:
            out = np.concatenate([out, out], axis=0)
        for layer in self.layers:
            out = layer.infer(out)
        return out[:1] if padded else out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backpropagate through the layers in reverse order."""
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def zero_grads(self) -> None:
        """Zero every layer's accumulated gradients."""
        for layer in self.layers:
            layer.zero_grads()

    def clear_caches(self) -> None:
        """Drop every layer's forward-pass cache.

        Called before pickling a trained model (e.g. returning it from
        a parallel-training worker) so the payload holds weights, not
        stale activations.
        """
        for layer in self.layers:
            layer.clear_cache()

    def parameter_triples(
        self, trainable_only: bool = True
    ) -> List[ParamTriple]:
        """``(key, param, grad)`` triples for the optimizer."""
        triples: List[ParamTriple] = []
        for layer in self.layers:
            if trainable_only and not layer.trainable:
                continue
            for key, param in layer.params.items():
                triples.append(
                    (f"{layer.name}.{key}", param, layer.grads[key])
                )
        return triples

    @property
    def n_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(
            param.size
            for layer in self.layers
            for param in layer.params.values()
        )

    def train_batch(
        self,
        x: np.ndarray,
        y: np.ndarray,
        loss: Loss,
        optimizer: Optimizer,
        sample_weight: Optional[np.ndarray] = None,
    ) -> float:
        """One forward/backward/update step; returns the batch loss."""
        self.zero_grads()
        outputs = self.forward(x, training=True)
        value, grad = loss.value_and_grad(outputs, y)
        if sample_weight is not None:
            weights = np.asarray(sample_weight, dtype=np.float64)
            if weights.shape[0] != grad.shape[0]:
                raise ValueError("sample_weight length must match batch")
            grad = grad * weights.reshape(
                (-1,) + (1,) * (grad.ndim - 1)
            )
        self.backward(grad)
        optimizer.step(self.parameter_triples())
        return value

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        loss: Loss,
        optimizer: Optimizer,
        epochs: int = 1,
        batch_size: int = 64,
        sample_weight: Optional[np.ndarray] = None,
        shuffle: bool = True,
    ) -> List[float]:
        """Mini-batch training; returns the mean loss per epoch."""
        self._require_built()
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y must agree on the batch dimension")
        history: List[float] = []
        registry = telemetry.default_registry()
        for _ in range(epochs):
            epoch_start = time.perf_counter()
            epoch_losses: List[float] = []
            order_rng = self.rng if shuffle else None
            for index in batches(x.shape[0], batch_size, order_rng):
                weight = (
                    sample_weight[index]
                    if sample_weight is not None
                    else None
                )
                epoch_losses.append(
                    self.train_batch(
                        x[index], y[index], loss, optimizer, weight
                    )
                )
            history.append(float(np.mean(epoch_losses)))
            # Epoch loop: one publish per epoch is the batch boundary.
            registry.counter("train.epochs").inc()  # repro: noqa[RPR301]
            registry.gauge("train.epoch_loss").set(history[-1])  # repro: noqa[RPR301]
            registry.histogram("train.epoch_seconds").observe(  # repro: noqa[RPR301]
                time.perf_counter() - epoch_start
            )
        return history

    def predict(
        self, x: np.ndarray, batch_size: int = 256
    ) -> np.ndarray:
        """Inference forward pass, batched to bound memory.

        Runs the cache-free :meth:`infer` path per chunk, so scoring
        large streams does not allocate or retain BPTT buffers.
        """
        self._require_built()
        outputs = [
            self.infer(x[index])
            for index in batches(x.shape[0], batch_size)
        ]
        return np.concatenate(outputs, axis=0)

    # -- transfer learning support ------------------------------------

    def freeze(self, layer_names: Sequence[str]) -> None:
        """Mark the named layers as non-trainable."""
        self._set_trainable(layer_names, False)

    def unfreeze(self, layer_names: Sequence[str]) -> None:
        """Mark the named layers as trainable again."""
        self._set_trainable(layer_names, True)

    def _set_trainable(
        self, layer_names: Sequence[str], value: bool
    ) -> None:
        known = {layer.name: layer for layer in self.layers}
        for name in layer_names:
            if name not in known:
                raise KeyError(
                    f"no layer named {name!r}; have {sorted(known)}"
                )
            known[name].trainable = value

    def clone(self) -> "Sequential":
        """Deep-copy the model (architecture, weights, trainability).

        The clone gets an independent RNG state so teacher and student
        training do not interleave random streams.
        """
        self._require_built()
        cloned = copy.deepcopy(self)
        cloned.rng = np.random.default_rng(self.rng.integers(2**63))
        return cloned

    # -- persistence ----------------------------------------------------

    def get_weights(self) -> Dict[str, np.ndarray]:
        """Copy out all weights keyed by ``layer.param``."""
        return {
            f"{layer.name}.{key}": param.copy()
            for layer in self.layers
            for key, param in layer.params.items()
        }

    def set_weights(self, weights: Dict[str, np.ndarray]) -> None:
        """Load weights produced by :meth:`get_weights`."""
        self._require_built()
        for layer in self.layers:
            for key, param in layer.params.items():
                full_key = f"{layer.name}.{key}"
                if full_key not in weights:
                    raise KeyError(f"missing weight {full_key!r}")
                value = np.asarray(weights[full_key])
                if value.shape != param.shape:
                    raise ValueError(
                        f"shape mismatch for {full_key!r}: "
                        f"{value.shape} vs {param.shape}"
                    )
                # Cast into the model's precision so a float32 model
                # loads float64 archives (and vice versa) cleanly.
                param[...] = value.astype(param.dtype, copy=False)
        # TupleEmbedding shares buffers with child layers; re-link.
        # zero_grads also drops per-layer derived caches (the fused
        # embedding table) that the new weights invalidate.
        for layer in self.layers:
            layer.zero_grads()
        self.weights_version += 1

    @property
    def dtype(self) -> np.dtype:
        """The floating-point precision of the model's parameters."""
        for layer in self.layers:
            for param in layer.params.values():
                if np.issubdtype(param.dtype, np.floating):
                    return param.dtype
        return np.dtype(np.float64)

    def save(self, path: str, quantize: bool = False) -> None:
        """Persist weights to a versioned ``.npz`` archive.

        Besides the weights the archive carries a format-version tag
        and the model's dtype, so :meth:`load` can reject archives
        written by an incompatible layout or precision instead of
        silently mis-loading them (the artifact store relies on this).

        ``quantize=True`` writes an int8 archive instead: every 2-D+
        float tensor is stored as symmetric int8 plus a ``<key>.scale``
        factor (1-D biases stay float32).  Such archives are tagged
        ``__repro_dtype__ = 'int8'`` and only load back with
        ``allow_cast=True`` — the dequantized weights are approximate.
        """
        self._require_built()
        if quantize:
            from repro.nn.quant import quantize_weights

            payload = quantize_weights(self.get_weights())
            dtype_tag = "int8"
        else:
            payload = self.get_weights()
            dtype_tag = str(self.dtype)
        payload[_FORMAT_KEY] = np.array(
            WEIGHTS_FORMAT_VERSION, dtype=np.int64
        )
        payload[_DTYPE_KEY] = np.array(dtype_tag)
        np.savez(path, **payload)

    def load(self, path: str, allow_cast: bool = False) -> None:
        """Load weights from an ``.npz`` file written by :meth:`save`.

        Versioned archives (format tag present) are validated: an
        unknown format version is rejected, and a dtype tag that does
        not match the model's precision is rejected unless
        ``allow_cast=True`` opts into the lossy cast.  Legacy archives
        without tags load exactly as before (weights cast into the
        model's dtype).
        """
        with np.load(path) as archive:
            weights = {key: archive[key] for key in archive.files}
        version_tag = weights.pop(_FORMAT_KEY, None)
        dtype_tag = weights.pop(_DTYPE_KEY, None)
        if version_tag is not None:
            version = int(version_tag)
            if version != WEIGHTS_FORMAT_VERSION:
                raise ValueError(
                    f"{path}: weight archive format version {version} "
                    "is not supported by this build (supports "
                    f"{WEIGHTS_FORMAT_VERSION}); re-save the model "
                    "with a matching version of repro"
                )
            if dtype_tag is not None and str(dtype_tag) == "int8":
                if not allow_cast:
                    raise ValueError(
                        f"{path}: archive holds int8-quantized weights "
                        "(lossy); pass allow_cast=True to dequantize "
                        "into this model explicitly"
                    )
                from repro.nn.quant import dequantize_weights

                self.set_weights(dequantize_weights(weights))
                return
            if dtype_tag is not None:
                saved_dtype = np.dtype(str(dtype_tag))
                if saved_dtype != self.dtype and not allow_cast:
                    raise ValueError(
                        f"{path}: archive holds {saved_dtype} weights "
                        f"but the model is {self.dtype}; rebuild the "
                        f"model with dtype={saved_dtype} or pass "
                        "allow_cast=True to cast explicitly"
                    )
        self.set_weights(weights)
