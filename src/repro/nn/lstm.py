"""LSTM layer with full backpropagation through time.

The cell follows Hochreiter & Schmidhuber (1997) in the modern gated
formulation used by Keras:

.. math::

    i_t &= \\sigma(x_t W_i + h_{t-1} U_i + b_i) \\\\
    f_t &= \\sigma(x_t W_f + h_{t-1} U_f + b_f) \\\\
    g_t &= \\tanh(x_t W_g + h_{t-1} U_g + b_g) \\\\
    o_t &= \\sigma(x_t W_o + h_{t-1} U_o + b_o) \\\\
    c_t &= f_t \\odot c_{t-1} + i_t \\odot g_t \\\\
    h_t &= o_t \\odot \\tanh(c_t)

The four gate blocks are stored fused (``W`` has shape
``(input_dim, 4 * hidden)`` in i, f, g, o order), which keeps the
forward pass to two matmuls per step.  The forget-gate bias initializes
to 1.0, the standard trick that eases gradient flow early in training.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.nn.activations import sigmoid, tanh
from repro.nn.initializers import glorot_uniform, orthogonal
from repro.nn.layers import Layer


class LSTM(Layer):
    """A single LSTM layer.

    Args:
        hidden: number of hidden units.
        return_sequences: when True the layer outputs the hidden state
            at every timestep ``(batch, time, hidden)``; when False
            only the final state ``(batch, hidden)``.
        name: layer name used for parameter keys.
    """

    def __init__(
        self,
        hidden: int,
        return_sequences: bool = False,
        name: str = "lstm",
    ) -> None:
        super().__init__(name)
        if hidden < 1:
            raise ValueError(f"hidden must be >= 1, got {hidden}")
        self.hidden = hidden
        self.return_sequences = return_sequences
        self._cache: Optional[dict] = None

    def build(
        self, input_shape: Tuple[int, ...], rng: np.random.Generator
    ) -> Tuple[int, ...]:
        if len(input_shape) != 2:
            raise ValueError(
                "LSTM expects (time, features) input shape, got "
                f"{input_shape}"
            )
        _, features = input_shape
        if not self.built:
            bias = np.zeros(4 * self.hidden)
            # Forget gate bias = 1.0 (block order: i, f, g, o).
            bias[self.hidden:2 * self.hidden] = 1.0
            self.params = {
                "W": glorot_uniform((features, 4 * self.hidden), rng),
                "U": np.concatenate(
                    [
                        orthogonal((self.hidden, self.hidden), rng)
                        for _ in range(4)
                    ],
                    axis=1,
                ),
                "b": bias,
            }
            self.zero_grads()
            self.built = True
        if self.return_sequences:
            return (input_shape[0], self.hidden)
        return (self.hidden,)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 3:
            raise ValueError(
                f"LSTM expects (batch, time, features), got {x.shape}"
            )
        batch, steps, _ = x.shape
        hidden = self.hidden
        weight, recurrent, bias = (
            self.params["W"],
            self.params["U"],
            self.params["b"],
        )
        h_prev = np.zeros((batch, hidden))
        c_prev = np.zeros((batch, hidden))
        gates_i: List[np.ndarray] = []
        gates_f: List[np.ndarray] = []
        gates_g: List[np.ndarray] = []
        gates_o: List[np.ndarray] = []
        cells: List[np.ndarray] = []
        hiddens: List[np.ndarray] = []
        prev_hiddens: List[np.ndarray] = []
        prev_cells: List[np.ndarray] = []
        for step in range(steps):
            z = x[:, step, :] @ weight + h_prev @ recurrent + bias
            gate_i = sigmoid(z[:, :hidden])
            gate_f = sigmoid(z[:, hidden:2 * hidden])
            gate_g = tanh(z[:, 2 * hidden:3 * hidden])
            gate_o = sigmoid(z[:, 3 * hidden:])
            prev_hiddens.append(h_prev)
            prev_cells.append(c_prev)
            c_prev = gate_f * c_prev + gate_i * gate_g
            h_prev = gate_o * tanh(c_prev)
            gates_i.append(gate_i)
            gates_f.append(gate_f)
            gates_g.append(gate_g)
            gates_o.append(gate_o)
            cells.append(c_prev)
            hiddens.append(h_prev)
        self._cache = {
            "x": x,
            "i": gates_i,
            "f": gates_f,
            "g": gates_g,
            "o": gates_o,
            "c": cells,
            "h": hiddens,
            "h_prev": prev_hiddens,
            "c_prev": prev_cells,
        }
        if self.return_sequences:
            return np.stack(hiddens, axis=1)
        return hiddens[-1]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        cache = self._cache
        if cache is None:
            raise RuntimeError("backward called before forward")
        x = cache["x"]
        batch, steps, _ = x.shape
        hidden = self.hidden
        weight, recurrent = self.params["W"], self.params["U"]

        if self.return_sequences:
            if grad.shape != (batch, steps, hidden):
                raise ValueError(
                    f"gradient shape {grad.shape} does not match output"
                )
            step_grads = grad
        else:
            if grad.shape != (batch, hidden):
                raise ValueError(
                    f"gradient shape {grad.shape} does not match output"
                )
            step_grads = np.zeros((batch, steps, hidden))
            step_grads[:, -1, :] = grad

        dx = np.zeros_like(x, dtype=np.float64)
        dh_next = np.zeros((batch, hidden))
        dc_next = np.zeros((batch, hidden))
        for step in range(steps - 1, -1, -1):
            gate_i = cache["i"][step]
            gate_f = cache["f"][step]
            gate_g = cache["g"][step]
            gate_o = cache["o"][step]
            cell = cache["c"][step]
            cell_prev = cache["c_prev"][step]
            hidden_prev = cache["h_prev"][step]

            dh = step_grads[:, step, :] + dh_next
            tanh_cell = np.tanh(cell)
            d_o = dh * tanh_cell
            dc = dh * gate_o * (1.0 - tanh_cell * tanh_cell) + dc_next
            d_f = dc * cell_prev
            d_i = dc * gate_g
            d_g = dc * gate_i

            dz = np.concatenate(
                [
                    d_i * gate_i * (1.0 - gate_i),
                    d_f * gate_f * (1.0 - gate_f),
                    d_g * (1.0 - gate_g * gate_g),
                    d_o * gate_o * (1.0 - gate_o),
                ],
                axis=1,
            )
            self.grads["W"] += x[:, step, :].T @ dz
            self.grads["U"] += hidden_prev.T @ dz
            self.grads["b"] += dz.sum(axis=0)
            dx[:, step, :] = dz @ weight.T
            dh_next = dz @ recurrent.T
            dc_next = dc * gate_f
        return dx
