"""LSTM layer with full backpropagation through time.

The cell follows Hochreiter & Schmidhuber (1997) in the modern gated
formulation used by Keras:

.. math::

    i_t &= \\sigma(x_t W_i + h_{t-1} U_i + b_i) \\\\
    f_t &= \\sigma(x_t W_f + h_{t-1} U_f + b_f) \\\\
    g_t &= \\tanh(x_t W_g + h_{t-1} U_g + b_g) \\\\
    o_t &= \\sigma(x_t W_o + h_{t-1} U_o + b_o) \\\\
    c_t &= f_t \\odot c_{t-1} + i_t \\odot g_t \\\\
    h_t &= o_t \\odot \\tanh(c_t)

The four gate blocks are stored fused (``W`` has shape
``(input_dim, 4 * hidden)`` in i, f, g, o order).  The forget-gate bias
initializes to 1.0, the standard trick that eases gradient flow early
in training.

Hot-path layout: the input projection ``x @ W`` for *all* timesteps is
computed in one matmul before the recurrence, so the per-step loop does
a single ``(batch, hidden) @ (hidden, 4*hidden)`` matmul.  Gate
activations, cell states, hidden states and ``tanh(c_t)`` live in
preallocated ``(batch, steps, ·)`` buffers (no Python-list appends, no
``np.stack``), and backward writes the four ``dz`` blocks into one
preallocated ``(batch, steps, 4*hidden)`` buffer whose parameter
gradients are then accumulated with three large matmuls instead of
three small ones per step.  In float64 the fused forward is bitwise
identical to the original per-step loop (addition order is preserved);
``dtype=np.float32`` opts into the faster low-precision path.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.activations import sigmoid
from repro.nn.initializers import DEFAULT_DTYPE, glorot_uniform, orthogonal
from repro.nn.layers import Layer


class LSTM(Layer):
    """A single LSTM layer.

    Args:
        hidden: number of hidden units.
        return_sequences: when True the layer outputs the hidden state
            at every timestep ``(batch, time, hidden)``; when False
            only the final state ``(batch, hidden)``.
        name: layer name used for parameter keys.
        dtype: parameter/activation precision (float64 default;
            float32 is the opt-in fast path).
    """

    def __init__(
        self,
        hidden: int,
        return_sequences: bool = False,
        name: str = "lstm",
        dtype: np.dtype = DEFAULT_DTYPE,
    ) -> None:
        super().__init__(name)
        if hidden < 1:
            raise ValueError(f"hidden must be >= 1, got {hidden}")
        self.hidden = hidden
        self.return_sequences = return_sequences
        self.dtype = np.dtype(dtype)
        self._cache: Optional[dict] = None

    def build(
        self, input_shape: Tuple[int, ...], rng: np.random.Generator
    ) -> Tuple[int, ...]:
        """Initialize the fused gate parameters; returns the output shape."""
        if len(input_shape) != 2:
            raise ValueError(
                "LSTM expects (time, features) input shape, got "
                f"{input_shape}"
            )
        _, features = input_shape
        if not self.built:
            bias = np.zeros(4 * self.hidden, dtype=self.dtype)
            # Forget gate bias = 1.0 (block order: i, f, g, o).
            bias[self.hidden:2 * self.hidden] = 1.0
            self.params = {
                "W": glorot_uniform(
                    (features, 4 * self.hidden), rng, dtype=self.dtype
                ),
                "U": np.concatenate(
                    [
                        orthogonal(
                            (self.hidden, self.hidden),
                            rng,
                            dtype=self.dtype,
                        )
                        for _ in range(4)
                    ],
                    axis=1,
                ),
                "b": bias,
            }
            self.zero_grads()
            self.built = True
        if self.return_sequences:
            return (input_shape[0], self.hidden)
        return (self.hidden,)

    def clear_cache(self) -> None:
        """Drop activations cached for backpropagation."""
        self._cache = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Fused forward over all timesteps; caches for :meth:`backward`."""
        if x.ndim != 3:
            raise ValueError(
                f"LSTM expects (batch, time, features), got {x.shape}"
            )
        batch, steps, features = x.shape
        hidden = self.hidden
        weight, recurrent, bias = (
            self.params["W"],
            self.params["U"],
            self.params["b"],
        )
        dtype = np.result_type(x.dtype, self.dtype)
        # One big input projection for every timestep at once.
        x_proj = (x.reshape(-1, features) @ weight).reshape(
            batch, steps, 4 * hidden
        )
        gates = np.empty((batch, steps, 4 * hidden), dtype=dtype)
        # Index t holds the *previous* state of step t; index t+1 the
        # new one — backward reads both without extra copies.
        hiddens = np.zeros((batch, steps + 1, hidden), dtype=dtype)
        cells = np.zeros((batch, steps + 1, hidden), dtype=dtype)
        tanh_cells = np.empty((batch, steps, hidden), dtype=dtype)
        h_prev = hiddens[:, 0]
        for step in range(steps):
            z = h_prev @ recurrent
            z += x_proj[:, step]
            z += bias
            gate = gates[:, step]
            # One sigmoid over all four blocks (sigmoid is elementwise,
            # so per-block slicing gives bitwise-identical values), then
            # the g block is overwritten with its tanh.
            # sigmoid's stable exp/mask temporaries are intrinsic to
            # its formulation; the result lands in the gates buffer.
            gate[:] = sigmoid(z)  # repro: noqa[RPR201]
            np.tanh(
                z[:, 2 * hidden:3 * hidden],
                out=gate[:, 2 * hidden:3 * hidden],
            )
            gate_i = gate[:, :hidden]
            gate_f = gate[:, hidden:2 * hidden]
            gate_g = gate[:, 2 * hidden:3 * hidden]
            gate_o = gate[:, 3 * hidden:]
            cell = cells[:, step + 1]
            np.multiply(gate_f, cells[:, step], out=cell)
            cell += gate_i * gate_g
            np.tanh(cell, out=tanh_cells[:, step])
            np.multiply(
                gate_o, tanh_cells[:, step], out=hiddens[:, step + 1]
            )
            h_prev = hiddens[:, step + 1]
        self._cache = {
            "x": x,
            "gates": gates,
            "h": hiddens,
            "c": cells,
            "tanh_c": tanh_cells,
        }
        if self.return_sequences:
            return hiddens[:, 1:]
        return hiddens[:, -1]

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Inference-only forward: no backward caches, O(batch·hidden)
        state instead of O(batch·steps·hidden) activation buffers.

        Every arithmetic step mirrors :meth:`forward` exactly, so the
        values are bitwise identical at float64.
        """
        if x.ndim != 3:
            raise ValueError(
                f"LSTM expects (batch, time, features), got {x.shape}"
            )
        batch, steps, features = x.shape
        hidden = self.hidden
        weight, recurrent, bias = (
            self.params["W"],
            self.params["U"],
            self.params["b"],
        )
        dtype = np.result_type(x.dtype, self.dtype)
        x_proj = (x.reshape(-1, features) @ weight).reshape(
            batch, steps, 4 * hidden
        )
        # Every per-step temporary lives in a buffer allocated once
        # before the recurrence; the loop itself only writes in place.
        # Each arithmetic op matches :meth:`forward` exactly (same ops,
        # same order), so values stay bitwise identical at float64.
        h_prev = np.zeros((batch, hidden), dtype=dtype)
        cell = np.zeros((batch, hidden), dtype=dtype)
        z = np.empty((batch, 4 * hidden), dtype=dtype)
        gate = np.empty((batch, 4 * hidden), dtype=dtype)
        tmp = np.empty((batch, hidden), dtype=dtype)
        sequence = (
            np.empty((batch, steps, hidden), dtype=dtype)
            if self.return_sequences
            else None
        )
        for step in range(steps):
            np.matmul(h_prev, recurrent, out=z)
            z += x_proj[:, step]
            z += bias
            # In-place into the preallocated gate buffer; the stable
            # formulation's internal temporaries are intrinsic.
            sigmoid(z, out=gate)  # repro: noqa[RPR201]
            np.tanh(
                z[:, 2 * hidden:3 * hidden],
                out=gate[:, 2 * hidden:3 * hidden],
            )
            cell *= gate[:, hidden:2 * hidden]
            np.multiply(
                gate[:, :hidden],
                gate[:, 2 * hidden:3 * hidden],
                out=tmp,
            )
            cell += tmp
            np.tanh(cell, out=tmp)
            np.multiply(gate[:, 3 * hidden:], tmp, out=h_prev)
            if sequence is not None:
                sequence[:, step] = h_prev
        if sequence is not None:
            return sequence
        return h_prev

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """BPTT over the cached forward pass; returns the input gradient."""
        cache = self._cache
        if cache is None:
            raise RuntimeError("backward called before forward")
        x = cache["x"]
        batch, steps, features = x.shape
        hidden = self.hidden
        weight, recurrent = self.params["W"], self.params["U"]
        gates = cache["gates"]
        hiddens, cells = cache["h"], cache["c"]
        tanh_cells = cache["tanh_c"]
        dtype = gates.dtype

        if self.return_sequences:
            if grad.shape != (batch, steps, hidden):
                raise ValueError(
                    f"gradient shape {grad.shape} does not match output"
                )
            step_grads = grad
        else:
            if grad.shape != (batch, hidden):
                raise ValueError(
                    f"gradient shape {grad.shape} does not match output"
                )
            step_grads = np.zeros((batch, steps, hidden), dtype=dtype)
            step_grads[:, -1, :] = grad

        # Step-invariant derivative factors, computed once over all
        # timesteps instead of inside the recurrence:
        # d(activation)/dz per gate block, and o_t * (1 - tanh(c_t)^2)
        # (the dh -> dc factor).
        d_gates = gates * (1.0 - gates)
        gate_gs = gates[:, :, 2 * hidden:3 * hidden]
        d_gates[:, :, 2 * hidden:3 * hidden] = 1.0 - gate_gs * gate_gs
        dh_to_dc = gates[:, :, 3 * hidden:] * (
            1.0 - tanh_cells * tanh_cells
        )

        dzs = np.empty((batch, steps, 4 * hidden), dtype=dtype)
        dh_next = np.zeros((batch, hidden), dtype=dtype)
        dc_next = np.zeros((batch, hidden), dtype=dtype)
        recurrent_t = recurrent.T
        for step in range(steps - 1, -1, -1):
            gate = gates[:, step]
            dh = step_grads[:, step, :] + dh_next
            dc = dh * dh_to_dc[:, step]
            dc += dc_next
            dz = dzs[:, step]
            np.multiply(dc, gate[:, 2 * hidden:3 * hidden],
                        out=dz[:, :hidden])
            np.multiply(dc, cells[:, step],
                        out=dz[:, hidden:2 * hidden])
            np.multiply(dc, gate[:, :hidden],
                        out=dz[:, 2 * hidden:3 * hidden])
            np.multiply(dh, tanh_cells[:, step],
                        out=dz[:, 3 * hidden:])
            dz *= d_gates[:, step]
            dh_next = dz @ recurrent_t
            dc_next = dc * gate[:, hidden:2 * hidden]
        # Parameter gradients in three large matmuls over all steps.
        flat_dz = dzs.reshape(-1, 4 * hidden)
        self.grads["W"] += x.reshape(-1, features).T @ flat_dz
        self.grads["U"] += (
            hiddens[:, :steps].reshape(-1, hidden).T @ flat_dz
        )
        self.grads["b"] += flat_dz.sum(axis=0)
        return (flat_dz @ weight.T).reshape(batch, steps, features)
