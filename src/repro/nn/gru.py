"""GRU layer with full backpropagation through time.

The gated recurrent unit (Cho et al., 2014) is the usual lighter-weight
alternative to the paper's LSTM: three gate blocks instead of four and
no separate cell state.  It exists here to support the recurrent-cell
ablation (does the LSTM's extra memory path matter for syslog
modelling?).

Formulation (Keras ``reset_after=False`` flavor):

.. math::

    z_t &= \\sigma(x_t W_z + h_{t-1} U_z + b_z) \\\\
    r_t &= \\sigma(x_t W_r + h_{t-1} U_r + b_r) \\\\
    \\tilde{h}_t &= \\tanh(x_t W_h + (r_t \\odot h_{t-1}) U_h + b_h) \\\\
    h_t &= z_t \\odot h_{t-1} + (1 - z_t) \\odot \\tilde{h}_t

Gate blocks are stored fused in z, r, h order.

Like :class:`repro.nn.lstm.LSTM`, the hot path precomputes the input
projection ``x @ W + b`` for all timesteps in one matmul, keeps gate
activations / hidden states / ``r_t ⊙ h_{t-1}`` in preallocated
``(batch, steps, ·)`` buffers, and accumulates parameter gradients with
a handful of large matmuls after the reverse recurrence instead of
three small ones per step.  In float64 the fused forward is bitwise
identical to the original per-step loop.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.activations import sigmoid
from repro.nn.initializers import DEFAULT_DTYPE, glorot_uniform, orthogonal
from repro.nn.layers import Layer


class GRU(Layer):
    """A single GRU layer (drop-in alternative to :class:`LSTM`)."""

    def __init__(
        self,
        hidden: int,
        return_sequences: bool = False,
        name: str = "gru",
        dtype: np.dtype = DEFAULT_DTYPE,
    ) -> None:
        super().__init__(name)
        if hidden < 1:
            raise ValueError(f"hidden must be >= 1, got {hidden}")
        self.hidden = hidden
        self.return_sequences = return_sequences
        self.dtype = np.dtype(dtype)
        self._cache: Optional[dict] = None

    def build(
        self, input_shape: Tuple[int, ...], rng: np.random.Generator
    ) -> Tuple[int, ...]:
        """Initialize the fused gate parameters; returns the output shape."""
        if len(input_shape) != 2:
            raise ValueError(
                "GRU expects (time, features) input shape, got "
                f"{input_shape}"
            )
        _, features = input_shape
        if not self.built:
            self.params = {
                "W": glorot_uniform(
                    (features, 3 * self.hidden), rng, dtype=self.dtype
                ),
                "U": np.concatenate(
                    [
                        orthogonal(
                            (self.hidden, self.hidden),
                            rng,
                            dtype=self.dtype,
                        )
                        for _ in range(3)
                    ],
                    axis=1,
                ),
                "b": np.zeros(3 * self.hidden, dtype=self.dtype),
            }
            self.zero_grads()
            self.built = True
        if self.return_sequences:
            return (input_shape[0], self.hidden)
        return (self.hidden,)

    def clear_cache(self) -> None:
        """Drop activations cached for backpropagation."""
        self._cache = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Fused forward over all timesteps; caches for :meth:`backward`."""
        if x.ndim != 3:
            raise ValueError(
                f"GRU expects (batch, time, features), got {x.shape}"
            )
        batch, steps, features = x.shape
        hidden = self.hidden
        weight, recurrent, bias = (
            self.params["W"],
            self.params["U"],
            self.params["b"],
        )
        dtype = np.result_type(x.dtype, self.dtype)
        # Input projection (plus bias) for every timestep in one matmul.
        x_proj = (x.reshape(-1, features) @ weight).reshape(
            batch, steps, 3 * hidden
        )
        x_proj += bias
        # Activated gates in z | r | candidate block order.
        gates = np.empty((batch, steps, 3 * hidden), dtype=dtype)
        # r_t ⊙ h_{t-1}, reused by backward for the U_h gradient.
        reset_hidden = np.empty((batch, steps, hidden), dtype=dtype)
        hiddens = np.zeros((batch, steps + 1, hidden), dtype=dtype)
        h_prev = hiddens[:, 0]
        for step in range(steps):
            zr = h_prev @ recurrent[:, :2 * hidden]
            zr += x_proj[:, step, :2 * hidden]
            gate = gates[:, step]
            # sigmoid's stable exp/mask temporaries are intrinsic to
            # its formulation; the result lands in the gates buffer.
            gate[:, :2 * hidden] = sigmoid(zr)  # repro: noqa[RPR201]
            gate_z = gate[:, :hidden]
            gate_r = gate[:, hidden:2 * hidden]
            rh = reset_hidden[:, step]
            np.multiply(gate_r, h_prev, out=rh)
            gate[:, 2 * hidden:] = np.tanh(
                x_proj[:, step, 2 * hidden:]
                + rh @ recurrent[:, 2 * hidden:]
            )
            candidate = gate[:, 2 * hidden:]
            h_new = hiddens[:, step + 1]
            np.multiply(gate_z, h_prev, out=h_new)
            h_new += (1.0 - gate_z) * candidate
            h_prev = h_new
        self._cache = {
            "x": x,
            "gates": gates,
            "rh": reset_hidden,
            "h": hiddens,
        }
        if self.return_sequences:
            return hiddens[:, 1:]
        return hiddens[:, -1]

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Inference-only forward: no backward caches, O(batch·hidden)
        state (see :meth:`LSTM.infer`); bitwise identical to
        :meth:`forward` at float64.
        """
        if x.ndim != 3:
            raise ValueError(
                f"GRU expects (batch, time, features), got {x.shape}"
            )
        batch, steps, features = x.shape
        hidden = self.hidden
        weight, recurrent, bias = (
            self.params["W"],
            self.params["U"],
            self.params["b"],
        )
        dtype = np.result_type(x.dtype, self.dtype)
        x_proj = (x.reshape(-1, features) @ weight).reshape(
            batch, steps, 3 * hidden
        )
        x_proj += bias
        # Preallocated per-step buffers (see :meth:`LSTM.infer`); the
        # loop writes in place, arithmetic mirrors :meth:`forward`.
        u_zr = recurrent[:, :2 * hidden]
        u_h = recurrent[:, 2 * hidden:]
        h_prev = np.zeros((batch, hidden), dtype=dtype)
        h_buf = np.empty((batch, hidden), dtype=dtype)
        gate = np.empty((batch, 2 * hidden), dtype=dtype)
        rh = np.empty((batch, hidden), dtype=dtype)
        candidate = np.empty((batch, hidden), dtype=dtype)
        tmp = np.empty((batch, hidden), dtype=dtype)
        sequence = (
            np.empty((batch, steps, hidden), dtype=dtype)
            if self.return_sequences
            else None
        )
        for step in range(steps):
            np.matmul(h_prev, u_zr, out=gate)
            gate += x_proj[:, step, :2 * hidden]
            # In-place into the preallocated gate buffer; the stable
            # formulation's internal temporaries are intrinsic.
            sigmoid(gate, out=gate)  # repro: noqa[RPR201]
            gate_z = gate[:, :hidden]
            np.multiply(gate[:, hidden:2 * hidden], h_prev, out=rh)
            # x_proj + rh @ U_h, summed in the same order as forward
            # (IEEE addition is commutative, so matmul-first is safe).
            np.matmul(rh, u_h, out=candidate)
            candidate += x_proj[:, step, 2 * hidden:]
            np.tanh(candidate, out=candidate)
            np.multiply(gate_z, h_prev, out=h_buf)
            np.subtract(1.0, gate_z, out=tmp)
            tmp *= candidate
            h_buf += tmp
            h_prev, h_buf = h_buf, h_prev
            if sequence is not None:
                sequence[:, step] = h_prev
        if sequence is not None:
            return sequence
        return h_prev

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """BPTT over the cached forward pass; returns the input gradient."""
        cache = self._cache
        if cache is None:
            raise RuntimeError("backward called before forward")
        x = cache["x"]
        batch, steps, features = x.shape
        hidden = self.hidden
        weight, recurrent = self.params["W"], self.params["U"]
        gates, hiddens = cache["gates"], cache["h"]
        reset_hidden = cache["rh"]
        dtype = gates.dtype

        if self.return_sequences:
            if grad.shape != (batch, steps, hidden):
                raise ValueError(
                    f"gradient shape {grad.shape} does not match output"
                )
            step_grads = grad
        else:
            if grad.shape != (batch, hidden):
                raise ValueError(
                    f"gradient shape {grad.shape} does not match output"
                )
            step_grads = np.zeros((batch, steps, hidden), dtype=dtype)
            step_grads[:, -1, :] = grad

        d_pres = np.empty((batch, steps, 3 * hidden), dtype=dtype)
        dh_next = np.zeros((batch, hidden), dtype=dtype)
        u_zr_t = recurrent[:, :2 * hidden].T
        u_h_t = recurrent[:, 2 * hidden:].T
        for step in range(steps - 1, -1, -1):
            gate = gates[:, step]
            gate_z = gate[:, :hidden]
            gate_r = gate[:, hidden:2 * hidden]
            candidate = gate[:, 2 * hidden:]
            h_prev = hiddens[:, step]

            dh = step_grads[:, step, :] + dh_next
            d_candidate = dh * (1.0 - gate_z)
            d_z = dh * (h_prev - candidate)
            dh_prev = dh * gate_z

            # through the candidate tanh
            d_pre = d_pres[:, step]
            d_pre_candidate = d_pre[:, 2 * hidden:]
            np.multiply(
                d_candidate,
                1.0 - candidate * candidate,
                out=d_pre_candidate,
            )
            d_rh = d_pre_candidate @ u_h_t
            d_r = d_rh * h_prev
            dh_prev += d_rh * gate_r

            # through the gates' sigmoids
            d_pre[:, :hidden] = d_z * gate_z * (1.0 - gate_z)
            d_pre[:, hidden:2 * hidden] = d_r * gate_r * (1.0 - gate_r)
            dh_prev += d_pre[:, :2 * hidden] @ u_zr_t
            dh_next = dh_prev
        # Parameter gradients in a handful of large matmuls.
        flat_dpre = d_pres.reshape(-1, 3 * hidden)
        flat_h_prev = hiddens[:, :steps].reshape(-1, hidden)
        self.grads["W"] += x.reshape(-1, features).T @ flat_dpre
        self.grads["b"] += flat_dpre.sum(axis=0)
        self.grads["U"][:, :2 * hidden] += (
            flat_h_prev.T @ flat_dpre[:, :2 * hidden]
        )
        self.grads["U"][:, 2 * hidden:] += (
            reset_hidden.reshape(-1, hidden).T
            @ flat_dpre[:, 2 * hidden:]
        )
        return (flat_dpre @ weight.T).reshape(batch, steps, features)
