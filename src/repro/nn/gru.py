"""GRU layer with full backpropagation through time.

The gated recurrent unit (Cho et al., 2014) is the usual lighter-weight
alternative to the paper's LSTM: three gate blocks instead of four and
no separate cell state.  It exists here to support the recurrent-cell
ablation (does the LSTM's extra memory path matter for syslog
modelling?).

Formulation (Keras ``reset_after=False`` flavor):

.. math::

    z_t &= \\sigma(x_t W_z + h_{t-1} U_z + b_z) \\\\
    r_t &= \\sigma(x_t W_r + h_{t-1} U_r + b_r) \\\\
    \\tilde{h}_t &= \\tanh(x_t W_h + (r_t \\odot h_{t-1}) U_h + b_h) \\\\
    h_t &= z_t \\odot h_{t-1} + (1 - z_t) \\odot \\tilde{h}_t

Gate blocks are stored fused in z, r, h order.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.nn.activations import sigmoid, tanh
from repro.nn.initializers import glorot_uniform, orthogonal
from repro.nn.layers import Layer


class GRU(Layer):
    """A single GRU layer (drop-in alternative to :class:`LSTM`)."""

    def __init__(
        self,
        hidden: int,
        return_sequences: bool = False,
        name: str = "gru",
    ) -> None:
        super().__init__(name)
        if hidden < 1:
            raise ValueError(f"hidden must be >= 1, got {hidden}")
        self.hidden = hidden
        self.return_sequences = return_sequences
        self._cache: Optional[dict] = None

    def build(
        self, input_shape: Tuple[int, ...], rng: np.random.Generator
    ) -> Tuple[int, ...]:
        if len(input_shape) != 2:
            raise ValueError(
                "GRU expects (time, features) input shape, got "
                f"{input_shape}"
            )
        _, features = input_shape
        if not self.built:
            self.params = {
                "W": glorot_uniform((features, 3 * self.hidden), rng),
                "U": np.concatenate(
                    [
                        orthogonal((self.hidden, self.hidden), rng)
                        for _ in range(3)
                    ],
                    axis=1,
                ),
                "b": np.zeros(3 * self.hidden),
            }
            self.zero_grads()
            self.built = True
        if self.return_sequences:
            return (input_shape[0], self.hidden)
        return (self.hidden,)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 3:
            raise ValueError(
                f"GRU expects (batch, time, features), got {x.shape}"
            )
        batch, steps, _ = x.shape
        hidden = self.hidden
        weight, recurrent, bias = (
            self.params["W"],
            self.params["U"],
            self.params["b"],
        )
        h_prev = np.zeros((batch, hidden))
        zs: List[np.ndarray] = []
        rs: List[np.ndarray] = []
        candidates: List[np.ndarray] = []
        hiddens: List[np.ndarray] = []
        prev_hiddens: List[np.ndarray] = []
        for step in range(steps):
            x_proj = x[:, step, :] @ weight + bias
            h_proj_zr = h_prev @ recurrent[:, : 2 * hidden]
            gate_z = sigmoid(
                x_proj[:, :hidden] + h_proj_zr[:, :hidden]
            )
            gate_r = sigmoid(
                x_proj[:, hidden:2 * hidden]
                + h_proj_zr[:, hidden:2 * hidden]
            )
            candidate = tanh(
                x_proj[:, 2 * hidden:]
                + (gate_r * h_prev) @ recurrent[:, 2 * hidden:]
            )
            prev_hiddens.append(h_prev)
            h_prev = gate_z * h_prev + (1.0 - gate_z) * candidate
            zs.append(gate_z)
            rs.append(gate_r)
            candidates.append(candidate)
            hiddens.append(h_prev)
        self._cache = {
            "x": x,
            "z": zs,
            "r": rs,
            "c": candidates,
            "h_prev": prev_hiddens,
        }
        if self.return_sequences:
            return np.stack(hiddens, axis=1)
        return hiddens[-1]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        cache = self._cache
        if cache is None:
            raise RuntimeError("backward called before forward")
        x = cache["x"]
        batch, steps, _ = x.shape
        hidden = self.hidden
        weight, recurrent = self.params["W"], self.params["U"]

        if self.return_sequences:
            if grad.shape != (batch, steps, hidden):
                raise ValueError(
                    f"gradient shape {grad.shape} does not match output"
                )
            step_grads = grad
        else:
            if grad.shape != (batch, hidden):
                raise ValueError(
                    f"gradient shape {grad.shape} does not match output"
                )
            step_grads = np.zeros((batch, steps, hidden))
            step_grads[:, -1, :] = grad

        dx = np.zeros_like(x, dtype=np.float64)
        dh_next = np.zeros((batch, hidden))
        u_z = recurrent[:, :hidden]
        u_r = recurrent[:, hidden:2 * hidden]
        u_h = recurrent[:, 2 * hidden:]
        for step in range(steps - 1, -1, -1):
            gate_z = cache["z"][step]
            gate_r = cache["r"][step]
            candidate = cache["c"][step]
            h_prev = cache["h_prev"][step]

            dh = step_grads[:, step, :] + dh_next
            d_candidate = dh * (1.0 - gate_z)
            d_z = dh * (h_prev - candidate)
            dh_prev = dh * gate_z

            # through the candidate tanh
            d_pre_candidate = d_candidate * (
                1.0 - candidate * candidate
            )
            d_rh = d_pre_candidate @ u_h.T
            d_r = d_rh * h_prev
            dh_prev += d_rh * gate_r

            # through the gates' sigmoids
            d_pre_z = d_z * gate_z * (1.0 - gate_z)
            d_pre_r = d_r * gate_r * (1.0 - gate_r)

            d_pre = np.concatenate(
                [d_pre_z, d_pre_r, d_pre_candidate], axis=1
            )
            self.grads["W"] += x[:, step, :].T @ d_pre
            self.grads["b"] += d_pre.sum(axis=0)
            self.grads["U"][:, :hidden] += h_prev.T @ d_pre_z
            self.grads["U"][:, hidden:2 * hidden] += (
                h_prev.T @ d_pre_r
            )
            self.grads["U"][:, 2 * hidden:] += (
                (gate_r * h_prev).T @ d_pre_candidate
            )
            dx[:, step, :] = d_pre @ weight.T
            dh_prev += d_pre_z @ u_z.T + d_pre_r @ u_r.T
            dh_next = dh_prev
        return dx
