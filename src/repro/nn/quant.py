"""Opt-in int8 quantized inference for the detector stack.

The bitwise-float64 default path is untouched: quantization is a
separate, explicitly-requested engine, mirroring how ``dtype=float32``
opts into the low-precision training path.  Two pieces live here:

* :func:`quantize_weights` / :func:`dequantize_weights` — the archive
  codec behind ``Sequential.save(path, quantize=True)``.  Every 2-D+
  float tensor is stored as symmetric per-tensor int8
  (``scale = max|W| / 127``) plus a ``<key>.scale`` factor; 1-D biases
  stay float32 (quantizing them costs accuracy and saves nothing).
* :class:`QuantizedModel` — an inference-only twin of a trained
  detector ``Sequential`` (TupleEmbedding → LSTM/GRU → LSTM/GRU →
  Dense).  Weights are quantized to int8 and the float32 dequantized
  operands cached, so matmuls stay on the fast BLAS path while the
  model's numeric identity is exactly "int8 weights".  The embedding
  and the first recurrent layer's input projection are fused into one
  precomputed ``(id, gap) -> x_proj`` table, activations run step-major
  in persistent scratch buffers (zero steady-state large allocations),
  and the gate sigmoids use the ``sigmoid(x) = 0.5 tanh(0.5 x) + 0.5``
  identity with the inner ``0.5`` folded into the cached weights: LSTM
  gate columns are permuted to ``i, f, o | g`` and the sigmoid columns
  pre-scaled by one half, so each recurrent step's activation is a
  single contiguous ``np.tanh`` over the whole gate block and the
  ``0.5 t + 0.5`` affine is absorbed into the (much smaller) state
  updates.

Accuracy is gated in ``benchmarks/perf/quant.py``: anomaly decisions
(score vs. threshold) must agree with the float64 reference on at
least 99% of scored messages.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.nn.gru import GRU
from repro.nn.layers import Dense, TupleEmbedding
from repro.nn.lstm import LSTM

#: Archive entry suffix carrying a quantized tensor's scale factor.
SCALE_SUFFIX = ".scale"

#: Symmetric int8 range: scales map ``max|W|`` onto 127.
_QMAX = 127


def quantize_weights(
    weights: Dict[str, np.ndarray],
) -> Dict[str, np.ndarray]:
    """Quantize a ``get_weights()`` dict to the int8 archive layout.

    2-D+ float tensors become int8 arrays plus a float64
    ``<key>.scale`` entry; 1-D float tensors (biases) are stored as
    float32; anything else passes through unchanged.
    """
    payload: Dict[str, np.ndarray] = {}
    for key, value in weights.items():
        if not np.issubdtype(value.dtype, np.floating):
            payload[key] = value
        elif value.ndim >= 2:
            scale = float(np.max(np.abs(value))) / _QMAX
            if scale == 0.0:
                scale = 1.0
            quantized = np.clip(
                np.round(value / scale), -_QMAX, _QMAX
            ).astype(np.int8)
            payload[key] = quantized
            payload[key + SCALE_SUFFIX] = np.float64(scale)
        else:
            payload[key] = value.astype(np.float32)
    return payload


def dequantize_weights(
    weights: Dict[str, np.ndarray],
) -> Dict[str, np.ndarray]:
    """Invert :func:`quantize_weights` into float32 tensors.

    The result is approximate — symmetric int8 rounds each weight to
    one of 255 levels — which is why ``Sequential.load`` demands
    ``allow_cast=True`` for int8 archives.
    """
    restored: Dict[str, np.ndarray] = {}
    for key, value in weights.items():
        if key.endswith(SCALE_SUFFIX):
            continue
        if value.dtype == np.int8:
            scale = weights.get(key + SCALE_SUFFIX)
            if scale is None:
                raise ValueError(
                    f"quantized archive is missing {key + SCALE_SUFFIX!r}"
                )
            restored[key] = value.astype(np.float32) * np.float32(
                float(scale)
            )
        else:
            restored[key] = value
    return restored


def _dequantized(value: np.ndarray) -> "tuple[np.ndarray, float]":
    """Round-trip one tensor through int8; return (float32, scale)."""
    scale = float(np.max(np.abs(value))) / _QMAX
    if scale == 0.0:
        scale = 1.0
    quantized = np.clip(
        np.round(value / scale), -_QMAX, _QMAX
    ).astype(np.int8)
    return quantized.astype(np.float32) * np.float32(scale), scale


# The gate sigmoids use sigmoid(x) = 0.5 tanh(0.5 x) + 0.5.  The inner
# halving is pre-folded into the cached sigmoid-gate weight columns
# (see from_model), so the step kernels see t = tanh(0.5 z) directly
# from one contiguous np.tanh and apply sigmoid = 0.5 (t + 1) inside
# the per-gate state updates.


class QuantizedModel:
    """Int8 inference twin of a trained detector ``Sequential``.

    Build one with :meth:`from_model`; :meth:`infer` accepts the same
    ``(batch, window, 2)`` integer contexts as ``Sequential.infer``
    and returns float32 logits.  Ids must already be clamped into the
    embedding vocabularies (the streaming scorer guarantees this).
    """

    def __init__(
        self,
        xproj_table: np.ndarray,
        cells: "List[Dict[str, object]]",
        dense_weight: np.ndarray,
        dense_bias: np.ndarray,
        scales: Dict[str, float],
    ) -> None:
        self._xproj_table = xproj_table
        self._xproj_flat = xproj_table.reshape(
            -1, xproj_table.shape[-1]
        )
        self._gap_vocab = xproj_table.shape[1]
        self._cells = cells
        self._dense_weight = dense_weight
        self._dense_bias = dense_bias
        #: Per-tensor quantization scales, keyed like ``get_weights()``
        #: (introspection/tests; inference uses the cached operands).
        self.scales = scales
        self._scratch: Dict[str, np.ndarray] = {}

    def _buf(self, name: str, shape: "tuple") -> np.ndarray:
        """A persistent float32 scratch buffer, re-shaped on demand.

        Tick batches repeat the same shape at steady state, so this
        amortizes every large intermediate to one allocation per
        (shape change, buffer) pair instead of one per inference call.
        """
        buffer = self._scratch.get(name)
        if buffer is None or buffer.shape != shape:
            buffer = np.empty(shape, dtype=np.float32)
            self._scratch[name] = buffer
        return buffer

    @classmethod
    def from_model(cls, model: "object") -> "QuantizedModel":
        """Quantize a ``Sequential`` of the detector architecture.

        The supported stack is TupleEmbedding → recurrent (sequences)
        → recurrent → Dense, i.e. exactly what
        :class:`repro.core.detector.LSTMAnomalyDetector` builds.
        """
        layers = getattr(model, "layers", None)
        if (
            not layers
            or len(layers) != 4
            or not isinstance(layers[0], TupleEmbedding)
            or not isinstance(layers[1], (LSTM, GRU))
            or not isinstance(layers[2], (LSTM, GRU))
            or not isinstance(layers[3], Dense)
        ):
            raise ValueError(
                "QuantizedModel supports the detector stack "
                "TupleEmbedding -> LSTM/GRU -> LSTM/GRU -> Dense; got "
                f"{[type(layer).__name__ for layer in layers or []]}"
            )
        embedding, rec1, rec2, dense = layers
        if dense.activation_name != "linear":
            raise ValueError(
                "QuantizedModel expects a linear output layer, got "
                f"{dense.activation_name!r}"
            )
        scales: Dict[str, float] = {}

        ids_table, scales[f"{embedding.name}.ids.E"] = _dequantized(
            embedding.id_embedding.params["E"]
        )
        gaps_table, scales[f"{embedding.name}.gaps.E"] = _dequantized(
            embedding.gap_embedding.params["E"]
        )
        w1, scales[f"{rec1.name}.W"] = _dequantized(rec1.params["W"])
        # Fuse embedding lookup + first input projection + first bias
        # into one (id_vocab, gap_vocab, gates) gather table: the
        # per-tick x_proj becomes a single fancy index.
        id_vocab = embedding.id_embedding.vocabulary
        gap_vocab = embedding.gap_embedding.vocabulary
        split = embedding.id_embedding.dim
        concat = np.empty(
            (id_vocab, gap_vocab, embedding.output_dim),
            dtype=np.float32,
        )
        concat[:, :, :split] = ids_table[:, None, :]
        concat[:, :, split:] = gaps_table[None, :, :]
        xproj_table = (
            concat.reshape(-1, embedding.output_dim) @ w1
        ).reshape(id_vocab, gap_vocab, w1.shape[1])
        xproj_table += rec1.params["b"].astype(np.float32)

        # LSTM gate columns are stored i, f, g, o; permute the cached
        # operands to i, f, o | g (GRU's z, r | h order already has
        # its sigmoid gates leading) and pre-scale the sigmoid columns
        # by 0.5, so each step's activation is one contiguous np.tanh
        # yielding t = tanh(0.5 z) for sigmoid gates and tanh(z) for
        # candidate blocks.
        def gate_permutation(layer: "object") -> Optional[np.ndarray]:
            if not isinstance(layer, LSTM):
                return None
            h = layer.hidden
            return np.concatenate(
                (
                    np.arange(0, 2 * h),
                    np.arange(3 * h, 4 * h),
                    np.arange(2 * h, 3 * h),
                )
            )

        def sigmoid_columns(layer: "object") -> int:
            return (
                3 if isinstance(layer, LSTM) else 2
            ) * layer.hidden

        cells: List[Dict[str, object]] = []
        for layer in (rec1, rec2):
            recurrent, scale = _dequantized(layer.params["U"])
            scales[f"{layer.name}.U"] = scale
            perm = gate_permutation(layer)
            if perm is not None:
                recurrent = np.ascontiguousarray(recurrent[:, perm])
            recurrent[:, :sigmoid_columns(layer)] *= np.float32(0.5)
            cells.append(
                {
                    "kind": "lstm" if isinstance(layer, LSTM) else "gru",
                    "hidden": layer.hidden,
                    "U": recurrent,
                    "return_sequences": layer.return_sequences,
                }
            )
        perm1 = gate_permutation(rec1)
        if perm1 is not None:
            xproj_table = np.ascontiguousarray(
                xproj_table[..., perm1]
            )
        xproj_table[..., :sigmoid_columns(rec1)] *= np.float32(0.5)
        # Layer 2's input projection runs per tick (its input is layer
        # 1's output); keep its weight/bias as cached operands.
        w2, scales[f"{rec2.name}.W"] = _dequantized(rec2.params["W"])
        b2 = rec2.params["b"].astype(np.float32)
        perm2 = gate_permutation(rec2)
        if perm2 is not None:
            w2 = np.ascontiguousarray(w2[:, perm2])
            b2 = np.ascontiguousarray(b2[perm2])
        w2[:, :sigmoid_columns(rec2)] *= np.float32(0.5)
        b2 = b2.copy()
        b2[:sigmoid_columns(rec2)] *= np.float32(0.5)
        cells[1]["W"] = w2
        cells[1]["b"] = b2

        dense_weight, scales[f"{dense.name}.W"] = _dequantized(
            dense.params["W"]
        )
        dense_bias = dense.params["b"].astype(np.float32)
        return cls(xproj_table, cells, dense_weight, dense_bias, scales)

    # -- recurrences ----------------------------------------------------

    def _lstm_pass(
        self, index: int, x_proj: np.ndarray
    ) -> np.ndarray:
        """One LSTM layer over step-major ``x_proj (steps, batch, 4h)``.

        Gate columns are pre-permuted to ``i, f, o | g`` with the
        sigmoid columns pre-scaled by 0.5, so one contiguous
        ``np.tanh`` over the whole gate block yields
        ``t = tanh(0.5 z)`` for i/f/o and ``tanh(z)`` for g; the
        sigmoid's ``0.5 (t + 1)`` affine folds into the (h-wide) state
        updates instead of running over the full 4h block.
        """
        cell = self._cells[index]
        recurrent = cell["U"]
        hidden = cell["hidden"]
        steps, batch, _ = x_proj.shape
        h_prev = self._buf(f"h0_{index}", (batch, hidden))
        h_prev.fill(0.0)
        state = self._buf(f"c_{index}", (batch, hidden))
        state.fill(0.0)
        z = self._buf(f"z_{index}", (batch, 4 * hidden))
        tmp = self._buf(f"tmp_{index}", (batch, hidden))
        sequence = (
            self._buf(f"seq_{index}", (steps, batch, hidden))
            if cell["return_sequences"]
            else None
        )
        for step in range(steps):
            np.matmul(h_prev, recurrent, out=z)
            z += x_proj[step]
            np.tanh(z, out=z)
            t_i = z[:, :hidden]
            t_f = z[:, hidden:2 * hidden]
            t_o = z[:, 2 * hidden:3 * hidden]
            g = z[:, 3 * hidden:]
            # state = 0.5 ((t_f + 1) state + (t_i + 1) g)
            np.add(t_f, 1.0, out=tmp)
            state *= tmp
            np.add(t_i, 1.0, out=tmp)
            tmp *= g
            state += tmp
            state *= 0.5
            # h = 0.5 (t_o + 1) tanh(state)
            np.tanh(state, out=tmp)
            target = h_prev if sequence is None else sequence[step]
            np.add(t_o, 1.0, out=target)
            target *= tmp
            target *= 0.5
            h_prev = target
        return sequence if sequence is not None else h_prev

    def _gru_pass(
        self, index: int, x_proj: np.ndarray
    ) -> np.ndarray:
        """One GRU layer over step-major ``x_proj (steps, batch, 3h)``."""
        cell = self._cells[index]
        recurrent = cell["U"]
        hidden = cell["hidden"]
        steps, batch, _ = x_proj.shape
        u_zr = recurrent[:, :2 * hidden]
        u_h = recurrent[:, 2 * hidden:]
        h_prev = self._buf(f"h0_{index}", (batch, hidden))
        h_prev.fill(0.0)
        h_buf = self._buf(f"h1_{index}", (batch, hidden))
        gate = self._buf(f"z_{index}", (batch, 2 * hidden))
        rh = self._buf(f"rh_{index}", (batch, hidden))
        candidate = self._buf(f"cand_{index}", (batch, hidden))
        tmp = self._buf(f"tmp_{index}", (batch, hidden))
        sequence = (
            self._buf(f"seq_{index}", (steps, batch, hidden))
            if cell["return_sequences"]
            else None
        )
        for step in range(steps):
            np.matmul(h_prev, u_zr, out=gate)
            gate += x_proj[step, :, :2 * hidden]
            np.tanh(gate, out=gate)
            t_z = gate[:, :hidden]
            t_r = gate[:, hidden:2 * hidden]
            # r h = 0.5 (t_r + 1) h
            np.add(t_r, 1.0, out=rh)
            rh *= h_prev
            rh *= 0.5
            np.matmul(rh, u_h, out=candidate)
            candidate += x_proj[step, :, 2 * hidden:]
            np.tanh(candidate, out=candidate)
            # h' = 0.5 ((t_z + 1) h + (1 - t_z) candidate)
            target = h_buf if sequence is None else sequence[step]
            np.add(t_z, 1.0, out=tmp)
            np.multiply(tmp, h_prev, out=target)
            np.subtract(1.0, t_z, out=tmp)
            tmp *= candidate
            target += tmp
            target *= 0.5
            h_prev, h_buf = target, h_prev
        return sequence if sequence is not None else h_prev

    def _cell_pass(
        self, index: int, x_proj: np.ndarray
    ) -> np.ndarray:
        runner = (
            self._lstm_pass
            if self._cells[index]["kind"] == "lstm"
            else self._gru_pass
        )
        return runner(index, x_proj)

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Float32 logits for integer contexts ``(batch, window, 2)``.

        No batch-of-1 padding: the quantized path makes no bitwise
        batching guarantee (its accuracy contract is the decision
        agreement gate, not ulp identity).
        """
        ids = np.asarray(x, dtype=np.int64)
        if ids.ndim != 3 or ids.shape[-1] != 2:
            raise ValueError(
                f"expected (batch, window, 2) contexts, got {ids.shape}"
            )
        batch, steps, _ = ids.shape
        # Step-major flat indices into the fused table: one fancy
        # gather yields ``x_proj (steps, batch, gates)`` with every
        # per-step slice contiguous.  (Fancy indexing beats np.take
        # with ``out=`` here by ~3x — the out= path routes through a
        # slower copy loop.)
        flat = ids[..., 0].T * self._gap_vocab + ids[..., 1].T
        x_proj = self._xproj_flat[flat]
        sequence = self._cell_pass(0, x_proj)
        cell2 = self._cells[1]
        hidden1 = sequence.shape[-1]
        gates2 = cell2["W"].shape[1]
        x_proj2 = self._buf("xproj2", (steps, batch, gates2))
        np.matmul(
            sequence.reshape(-1, hidden1),
            cell2["W"],
            out=x_proj2.reshape(-1, gates2),
        )
        x_proj2 += cell2["b"]
        final = self._cell_pass(1, x_proj2)
        logits = final @ self._dense_weight
        logits += self._dense_bias
        return logits


__all__ = [
    "QuantizedModel",
    "SCALE_SUFFIX",
    "dequantize_weights",
    "quantize_weights",
]
