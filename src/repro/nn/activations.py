"""Activation functions and their derivatives.

Derivatives are expressed in terms of the activation *output*, which is
what the backward passes cache.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

#: An activation or gradient: one ndarray in, one ndarray out.
Activation = Callable[[np.ndarray], np.ndarray]


def sigmoid(
    x: np.ndarray, out: "np.ndarray | None" = None
) -> np.ndarray:
    """Numerically stable logistic sigmoid (dtype-preserving).

    ``exp(-|x|)`` never overflows; with ``t = exp(-|x|)`` both halves
    of the classic masked formulation share the denominator ``1 + t``
    (numerator ``1`` where ``x >= 0``, else ``t``), so one divide
    covers both branches.  The numerator select runs as an exact 0/1
    arithmetic blend — ``m + (1 - m) t`` with ``m`` the comparison
    cast to 1.0/0.0 — because ``np.where``/masked assignment costs
    ~10x the surrounding ufuncs; multiplying by exact 0.0/1.0 and
    adding leaves every element bitwise ``1.0`` or bitwise ``t``, so
    results are unchanged down to the ulp (NaN propagates through the
    ``(1 - m) t`` term).  ``out`` (optional) receives the result in
    place; passing ``out=x`` is safe because ``x`` is fully consumed
    before the divide writes.
    """
    x = np.asarray(x)
    if x.dtype not in (np.float32, np.float64):
        x = x.astype(np.float64)
    exp_neg = np.exp(-np.abs(x))
    mask = np.greater_equal(x, 0).astype(x.dtype)
    numerator = 1.0 - mask
    numerator *= exp_neg
    numerator += mask
    exp_neg += 1.0
    if out is None:
        out = numerator
    return np.divide(numerator, exp_neg, out=out)


def sigmoid_grad(output: np.ndarray) -> np.ndarray:
    """d sigmoid / dx expressed via the sigmoid output."""
    return output * (1.0 - output)


def tanh(x: np.ndarray) -> np.ndarray:
    """Hyperbolic tangent activation."""
    return np.tanh(x)


def tanh_grad(output: np.ndarray) -> np.ndarray:
    """d tanh / dx expressed via the tanh output."""
    return 1.0 - output * output


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear activation."""
    return np.maximum(x, 0.0)


def relu_grad(output: np.ndarray) -> np.ndarray:
    """d relu / dx expressed via the relu output."""
    return (output > 0).astype(output.dtype)


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis``."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    return shifted - np.log(
        np.sum(np.exp(shifted), axis=axis, keepdims=True)
    )


def linear(x: np.ndarray) -> np.ndarray:
    """Identity activation."""
    return x


def linear_grad(output: np.ndarray) -> np.ndarray:
    """Gradient of the identity activation (ones)."""
    return np.ones_like(output)


# Named functions only (no lambdas): layers cache these pairs, and
# trained models must stay picklable for parallel per-group training.
_ACTIVATIONS = {
    "sigmoid": (sigmoid, sigmoid_grad),
    "tanh": (tanh, tanh_grad),
    "relu": (relu, relu_grad),
    "linear": (linear, linear_grad),
}


def get_activation(name: str) -> Tuple[Activation, Activation]:
    """Look up ``(function, gradient)`` by name."""
    try:
        return _ACTIVATIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown activation {name!r}; "
            f"choose from {sorted(_ACTIVATIONS)}"
        ) from None
