"""Loss functions.

Losses pair a scalar value with the gradient of the *mean* loss with
respect to the model output, so optimizer step sizes are independent of
batch size.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.activations import log_softmax, softmax


class Loss:
    """Base class: ``value_and_grad(outputs, targets) -> (loss, grad)``."""

    def value_and_grad(
        self, outputs: np.ndarray, targets: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """Loss value and gradient w.r.t. the predictions."""
        raise NotImplementedError


class SoftmaxCrossEntropy(Loss):
    """Categorical cross-entropy over integer class targets.

    The model's final layer outputs raw logits; softmax is fused into
    the loss, which makes the combined gradient the numerically clean
    ``softmax(logits) - onehot(target)``.  This is the paper's training
    objective ("minimize the categorical cross entropy", section 5.1).
    """

    def value_and_grad(
        self, outputs: np.ndarray, targets: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """Loss value and gradient w.r.t. the predictions."""
        if outputs.ndim != 2:
            raise ValueError(
                f"expected (batch, classes) logits, got {outputs.shape}"
            )
        targets = np.asarray(targets, dtype=np.int64)
        if targets.shape != (outputs.shape[0],):
            raise ValueError(
                f"targets shape {targets.shape} does not match batch "
                f"{outputs.shape[0]}"
            )
        batch = outputs.shape[0]
        log_probs = log_softmax(outputs, axis=-1)
        loss = -float(
            log_probs[np.arange(batch), targets].mean()
        )
        grad = softmax(outputs, axis=-1)
        grad[np.arange(batch), targets] -= 1.0
        return loss, grad / batch

    @staticmethod
    def log_likelihoods(
        outputs: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        """Per-sample log-likelihood of the target class.

        This is the anomaly score of section 4.2: a *low* value means
        the observed next template was improbable under the model.
        """
        targets = np.asarray(targets, dtype=np.int64)
        log_probs = log_softmax(outputs, axis=-1)
        return log_probs[np.arange(outputs.shape[0]), targets]


class MeanSquaredError(Loss):
    """Mean squared error, used by the autoencoder baseline."""

    def value_and_grad(
        self, outputs: np.ndarray, targets: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """Loss value and gradient w.r.t. the logits."""
        if outputs.shape != targets.shape:
            raise ValueError(
                f"outputs {outputs.shape} and targets {targets.shape} "
                "must have identical shapes"
            )
        diff = outputs - targets
        loss = float(np.mean(diff * diff))
        grad = 2.0 * diff / diff.size
        return loss, grad
