"""First-order optimizers: SGD (with momentum), RMSprop, Adam.

Optimizers update parameter arrays *in place* through a list of
``(key, param, grad)`` triples supplied by the model, keeping slot
state (momenta, second moments) per key so that freezing/unfreezing
layers does not scramble the state of the others.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

import numpy as np

ParamTriple = Tuple[str, np.ndarray, np.ndarray]


class Optimizer:
    """Base optimizer."""

    def __init__(
        self, learning_rate: float, clip_norm: float = 5.0
    ) -> None:
        if learning_rate <= 0:
            raise ValueError(
                f"learning_rate must be positive, got {learning_rate}"
            )
        if clip_norm <= 0:
            raise ValueError(f"clip_norm must be positive, got {clip_norm}")
        self.learning_rate = learning_rate
        self.clip_norm = clip_norm

    def step(self, triples: Iterable[ParamTriple]) -> None:
        """Apply one update over ``(key, param, grad)`` triples."""
        triples = list(triples)
        self._clip(triples)
        for key, param, grad in triples:
            self._update(key, param, grad)

    def _clip(self, triples: Iterable[ParamTriple]) -> None:
        """Global-norm gradient clipping, essential for LSTM training."""
        total = 0.0
        for _, _, grad in triples:
            total += float(np.sum(grad * grad))
        norm = np.sqrt(total)
        if norm > self.clip_norm:
            scale = self.clip_norm / (norm + 1e-12)
            for _, _, grad in triples:
                grad *= scale

    def _update(
        self, key: str, param: np.ndarray, grad: np.ndarray
    ) -> None:
        raise NotImplementedError

    def reset(self) -> None:
        """Drop all slot state (e.g. when starting a new fine-tune)."""


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(
        self,
        learning_rate: float = 0.1,
        momentum: float = 0.0,
        clip_norm: float = 5.0,
    ) -> None:
        super().__init__(learning_rate, clip_norm)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity: Dict[str, np.ndarray] = {}

    def _update(
        self, key: str, param: np.ndarray, grad: np.ndarray
    ) -> None:
        if self.momentum > 0.0:
            velocity = self._velocity.setdefault(
                key, np.zeros_like(param)
            )
            velocity *= self.momentum
            velocity -= self.learning_rate * grad
            param += velocity
        else:
            param -= self.learning_rate * grad

    def reset(self) -> None:
        """Clear accumulated momentum state."""
        self._velocity.clear()


class RMSprop(Optimizer):
    """RMSprop (Tieleman & Hinton), Keras-default flavor."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        rho: float = 0.9,
        epsilon: float = 1e-7,
        clip_norm: float = 5.0,
    ) -> None:
        super().__init__(learning_rate, clip_norm)
        self.rho = rho
        self.epsilon = epsilon
        self._second_moment: Dict[str, np.ndarray] = {}

    def _update(
        self, key: str, param: np.ndarray, grad: np.ndarray
    ) -> None:
        moment = self._second_moment.setdefault(
            key, np.zeros_like(param)
        )
        moment *= self.rho
        moment += (1.0 - self.rho) * grad * grad
        param -= (
            self.learning_rate * grad / (np.sqrt(moment) + self.epsilon)
        )

    def reset(self) -> None:
        """Clear the accumulated squared-gradient state."""
        self._second_moment.clear()


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        learning_rate: float = 0.002,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        clip_norm: float = 5.0,
    ) -> None:
        super().__init__(learning_rate, clip_norm)
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._first_moment: Dict[str, np.ndarray] = {}
        self._second_moment: Dict[str, np.ndarray] = {}
        self._steps: Dict[str, int] = {}

    def _update(
        self, key: str, param: np.ndarray, grad: np.ndarray
    ) -> None:
        first = self._first_moment.setdefault(key, np.zeros_like(param))
        second = self._second_moment.setdefault(key, np.zeros_like(param))
        step = self._steps.get(key, 0) + 1
        self._steps[key] = step
        first *= self.beta1
        first += (1.0 - self.beta1) * grad
        second *= self.beta2
        second += (1.0 - self.beta2) * grad * grad
        corrected_first = first / (1.0 - self.beta1**step)
        corrected_second = second / (1.0 - self.beta2**step)
        param -= (
            self.learning_rate
            * corrected_first
            / (np.sqrt(corrected_second) + self.epsilon)
        )

    def reset(self) -> None:
        """Clear the moment estimates and step counter."""
        self._first_moment.clear()
        self._second_moment.clear()
        self._steps.clear()
