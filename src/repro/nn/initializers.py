"""Weight initializers.

All initializers take an explicit :class:`numpy.random.Generator`, so a
model built twice from the same seed has identical weights — a property
both the tests and the transfer-learning experiments rely on.

Every initializer accepts a ``dtype`` (default float64).  Random draws
always happen in float64 so the same seed yields the same weights up to
rounding regardless of the requested precision; the cast to ``dtype``
happens last.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: Default parameter precision; float32 is the opt-in fast path.
DEFAULT_DTYPE = np.float64


def zeros(
    shape: Tuple[int, ...], dtype: np.dtype = DEFAULT_DTYPE
) -> np.ndarray:
    """All-zero initialization (biases)."""
    return np.zeros(shape, dtype=dtype)


def glorot_uniform(
    shape: Tuple[int, int],
    rng: np.random.Generator,
    dtype: np.dtype = DEFAULT_DTYPE,
) -> np.ndarray:
    """Glorot/Xavier uniform initialization for dense kernels."""
    fan_in, fan_out = shape
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(dtype, copy=False)


def orthogonal(
    shape: Tuple[int, int],
    rng: np.random.Generator,
    dtype: np.dtype = DEFAULT_DTYPE,
) -> np.ndarray:
    """Orthogonal initialization, standard for recurrent kernels."""
    rows, cols = shape
    size = max(rows, cols)
    gaussian = rng.standard_normal((size, size))
    q, r = np.linalg.qr(gaussian)
    # Sign correction makes the decomposition unique and the
    # distribution uniform over orthogonal matrices.
    q *= np.sign(np.diag(r))
    return q[:rows, :cols].astype(dtype, copy=False)


def uniform_scaled(
    shape: Tuple[int, ...],
    rng: np.random.Generator,
    scale: float = 0.05,
    dtype: np.dtype = DEFAULT_DTYPE,
) -> np.ndarray:
    """Small uniform initialization (embeddings)."""
    return rng.uniform(-scale, scale, size=shape).astype(dtype, copy=False)
