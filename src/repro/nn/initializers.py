"""Weight initializers.

All initializers take an explicit :class:`numpy.random.Generator`, so a
model built twice from the same seed has identical weights — a property
both the tests and the transfer-learning experiments rely on.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zero initialization (biases)."""
    return np.zeros(shape, dtype=np.float64)


def glorot_uniform(
    shape: Tuple[int, int], rng: np.random.Generator
) -> np.ndarray:
    """Glorot/Xavier uniform initialization for dense kernels."""
    fan_in, fan_out = shape
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def orthogonal(
    shape: Tuple[int, int], rng: np.random.Generator
) -> np.ndarray:
    """Orthogonal initialization, standard for recurrent kernels."""
    rows, cols = shape
    size = max(rows, cols)
    gaussian = rng.standard_normal((size, size))
    q, r = np.linalg.qr(gaussian)
    # Sign correction makes the decomposition unique and the
    # distribution uniform over orthogonal matrices.
    q *= np.sign(np.diag(r))
    return q[:rows, :cols]


def uniform_scaled(
    shape: Tuple[int, ...], rng: np.random.Generator, scale: float = 0.05
) -> np.ndarray:
    """Small uniform initialization (embeddings)."""
    return rng.uniform(-scale, scale, size=shape)
