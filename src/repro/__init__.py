"""repro: reproduction of "Predictive Analysis in Network Function
Virtualization" (IMC 2018).

The package builds, end to end, the paper's predictive-analysis system
for NFV deployments:

* a synthetic 38-vPE / 18-month deployment trace -- syslogs, faults,
  maintenance, software updates and trouble tickets
  (:mod:`repro.synthesis`, substituting the proprietary dataset);
* signature-tree template mining over raw syslog text
  (:mod:`repro.logs`);
* an LSTM template-language-model anomaly detector with minority
  over-sampling, K-means vPE grouping, incremental learning and
  transfer-learning adaptation (:mod:`repro.core`), built on a pure
  numpy deep-learning stack (:mod:`repro.nn`);
* autoencoder / one-class-SVM / PCA baselines
  (:mod:`repro.core.baselines`);
* anomaly-to-ticket mapping and the paper's evaluation metrics
  (:mod:`repro.core.mapping`, :mod:`repro.evaluation`).
"""

from repro.core import (
    LSTMAnomalyDetector,
    PipelineConfig,
    RollingPipeline,
    map_anomalies,
    sweep_thresholds,
)
from repro.logs import SyslogMessage, TemplateStore
from repro.synthesis import FleetDataset, FleetSimulator, SimulationConfig
from repro.tickets import RootCause, TroubleTicket
from repro.version import __version__

__all__ = [
    "__version__",
    "LSTMAnomalyDetector",
    "PipelineConfig",
    "RollingPipeline",
    "map_anomalies",
    "sweep_thresholds",
    "SyslogMessage",
    "TemplateStore",
    "FleetDataset",
    "FleetSimulator",
    "SimulationConfig",
    "RootCause",
    "TroubleTicket",
]
