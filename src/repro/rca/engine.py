"""The streaming root-cause analysis engine.

:class:`RcaEngine` consumes per-device anomaly decisions at tick
boundaries — from a :class:`~repro.runtime.service.MonitorService`'s
scored batches, or from any time-ordered event feed — and groups
temporally co-occurring anomalies into fleet **incidents**:

* a new anomalous device joins an open incident iff it arrives within
  ``cluster_gap`` of the incident's newest anomaly *and* shares a
  covering :class:`~repro.topology.FleetTopology` element with a
  device already in it (same circuit, site, cable or software
  cohort); without a topology every device gets its own incident;
* an incident **closes** once the stream watermark moves more than
  ``cluster_gap`` past its newest anomaly, at which point the engine
  walks the topology to the lowest common ancestor of the incident's
  devices and attaches a ranked :class:`~repro.core.incident.
  CauseHypothesis` — ``confidence`` is the fraction of the blamed
  element's covered devices that actually joined the incident, and
  ties break toward the nearest (lowest) element;
* everything the engine holds between ticks is JSON-safe
  (:meth:`RcaEngine.state_dict`), so it rides service checkpoints and
  WAL replay reproduces the exact incident stream of an
  uninterrupted run — closed-incident CSV rows carry ``repr(float)``
  fields precisely so ``sort -u`` collapses replayed duplicates.

The per-event path is allocation-light by design: ancestry element
sets are cached per device and membership checks use
``frozenset.isdisjoint``, so a tick's anomaly loop does no per-event
container builds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.core.incident import CauseHypothesis, Incident
from repro.logs.message import SyslogMessage
from repro.topology.graph import FleetTopology, KIND_DEVICE

#: Version key stamped into :meth:`RcaEngine.state_dict`; bumped on
#: incompatible layout changes.
RCA_STATE_VERSION = 1

#: Default quiet gap (seconds of stream time) after which an open
#: incident closes and is attributed.
DEFAULT_CLUSTER_GAP = 3600.0

#: Histogram bucket edges for incident device counts.
_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

#: Histogram bucket edges for onset-to-attribution stream seconds.
_LATENCY_BUCKETS = (
    60.0,
    300.0,
    900.0,
    1800.0,
    3600.0,
    7200.0,
    21600.0,
    86400.0,
)

#: Column order of one closed-incident CSV row (no header is written:
#: rows must stay ``sort -u``-collapsible across replayed runs).
INCIDENT_CSV_COLUMNS = (
    "incident_id",
    "first_time",
    "last_time",
    "closed_at",
    "devices",
    "n_anomalies",
    "peak_score",
    "cause_kind",
    "cause_element",
    "confidence",
)


@dataclass(frozen=True)
class IncidentReport:
    """One closed, attributed incident.

    Attributes:
        incident_id: engine-assigned id, stable across crash replay.
        incident: the incident body, ``cause`` attached.
        closed_at: stream watermark when the incident closed.
    """

    incident_id: int
    incident: Incident
    closed_at: float


def incident_row(report: IncidentReport) -> str:
    """One CSV line for a closed incident (see ``INCIDENT_CSV_COLUMNS``).

    Floats are rendered with ``repr`` so a replayed incident produces
    a bitwise-identical row and ``sort -u`` over concatenated run
    outputs collapses the duplicates — the same parity contract the
    runtime's score CSVs follow.
    """
    incident = report.incident
    cause = incident.cause
    assert cause is not None
    return (
        f"{report.incident_id},{incident.first_time!r},"
        f"{incident.last_time!r},{report.closed_at!r},"
        f"{';'.join(incident.devices)},{incident.n_anomalies},"
        f"{incident.peak_score!r},{cause.kind},{cause.element},"
        f"{cause.confidence!r}\n"
    )


class RcaEngine:
    """Streaming incident clustering and root-cause attribution.

    Args:
        topology: the fleet graph to cluster and attribute over;
            ``None`` degrades to per-device incidents blamed on the
            device itself.
        cluster_gap: quiet seconds (stream time) that end an incident;
            also the max spacing for a device to join one.

    Feed it either through :meth:`observe_tick` (service-shaped: a
    scored batch plus the live threshold) or :meth:`ingest` /
    :meth:`advance` directly (event-shaped).  Events must arrive in
    the service's deterministic tick order for replay to reproduce
    identical incidents.
    """

    def __init__(
        self,
        topology: Optional[FleetTopology] = None,
        cluster_gap: float = DEFAULT_CLUSTER_GAP,
    ) -> None:
        if cluster_gap <= 0:
            raise ValueError("cluster_gap must be positive")
        self.topology = topology
        self.cluster_gap = float(cluster_gap)
        self._open: Dict[int, Incident] = {}
        self._open_elements: Dict[int, set] = {}
        self._device_incident: Dict[str, int] = {}
        self._ancestry: Dict[str, frozenset] = {}
        self._next_id = 1
        self._watermark: Optional[float] = None
        self._n_opened = 0
        self._n_closed = 0
        self._opened_unpublished = 0
        self._drained: List[IncidentReport] = []

    # -- introspection ---------------------------------------------------

    @property
    def open_incidents(self) -> Tuple[int, ...]:
        """Ids of currently open incidents, oldest first."""
        return tuple(self._open)

    @property
    def watermark(self) -> Optional[float]:
        """Newest stream time observed (``None`` before any event)."""
        return self._watermark

    def _ancestry_set(self, device: str) -> frozenset:
        """Cached non-device covering elements of ``device``.

        Empty for devices the topology does not know (or with no
        topology at all), which disables shared-element joins for
        them — they cluster alone.
        """
        cached = self._ancestry.get(device)
        if cached is not None:
            return cached
        if self.topology is None or device not in self.topology:
            elements: frozenset = frozenset()
        else:
            elements = frozenset(self.topology.ancestry(device)[1:])
        self._ancestry[device] = elements
        return elements

    # -- the streaming path ----------------------------------------------

    def ingest(
        self,
        device: str,
        time: float,
        score: float,
        tick: Optional[int] = None,
    ) -> None:
        """Fold one anomaly decision into the open incident set."""
        elements = self._ancestry_set(device)
        incident_id = self._device_incident.get(device)
        if incident_id is not None:
            incident = self._open.get(incident_id)
            if (
                incident is not None
                and incident.last_time is not None
                and time - incident.last_time <= self.cluster_gap
            ):
                incident.record(device, time, score, tick)
                self._open_elements[incident_id].update(elements)
                return
        if elements:
            # Oldest-first scan: a device joining two eligible
            # incidents folds into the earlier one, deterministically.
            for candidate_id, incident in self._open.items():
                if (
                    incident.last_time is not None
                    and time - incident.last_time <= self.cluster_gap
                    and not elements.isdisjoint(
                        self._open_elements[candidate_id]
                    )
                ):
                    incident.record(device, time, score, tick)
                    self._open_elements[candidate_id].update(elements)
                    self._device_incident[device] = candidate_id
                    return
        incident = Incident()
        incident.record(device, time, score, tick)
        incident_id = self._next_id
        self._next_id += 1
        self._open[incident_id] = incident
        self._open_elements[incident_id] = set(elements)
        self._device_incident[device] = incident_id
        self._n_opened += 1
        self._opened_unpublished += 1

    def advance(self, watermark: float) -> List[IncidentReport]:
        """Move stream time forward; close and attribute quiet incidents.

        Returns the incidents closed by this call (also retained for
        :meth:`drain_closed`).  The watermark is monotonic: passing an
        older time is a no-op on it.  A closed incident's ``closed_at``
        is the *logical* close time — last anomaly plus the quiet gap
        — not the watermark that noticed it, so sparse streams don't
        inflate attribution latency (and replays that advance in
        different strides stamp identical rows).
        """
        if self._watermark is None or watermark > self._watermark:
            self._watermark = watermark
        mark = self._watermark
        closed: List[IncidentReport] = []
        for incident_id in list(self._open):
            incident = self._open[incident_id]
            last = incident.last_time
            if last is not None and mark - last > self.cluster_gap:
                closed.append(
                    self._close(incident_id, last + self.cluster_gap)
                )
        if closed or self._opened_unpublished:
            self._publish(closed)
        return closed

    def flush(self) -> List[IncidentReport]:
        """Close every open incident (graceful shutdown)."""
        closed = []
        for incident_id in list(self._open):
            incident = self._open[incident_id]
            mark = incident.last_time or 0.0
            if self._watermark is not None:
                mark = max(mark, self._watermark)
            closed.append(self._close(incident_id, mark))
        if closed:
            self._publish(closed)
        return closed

    def drain_closed(self) -> List[IncidentReport]:
        """Pop every report closed since the previous drain."""
        drained = self._drained
        self._drained = []
        return drained

    def _close(
        self, incident_id: int, closed_at: float
    ) -> IncidentReport:
        incident = self._open.pop(incident_id)
        self._open_elements.pop(incident_id)
        for device in incident.devices:
            if self._device_incident.get(device) == incident_id:
                del self._device_incident[device]
        incident.cause = self._attribute(incident)
        self._n_closed += 1
        report = IncidentReport(
            incident_id=incident_id,
            incident=incident,
            closed_at=float(closed_at),
        )
        self._drained.append(report)
        return report

    # -- attribution -----------------------------------------------------

    def _attribute(self, incident: Incident) -> CauseHypothesis:
        """The lowest-common-ancestor cause hypothesis for an incident."""
        devices = incident.devices
        topology = self.topology
        known = topology is not None and all(
            device in topology for device in devices
        )
        if known:
            assert topology is not None
            candidates = topology.common_elements(devices)
            best: Optional[str] = None
            best_confidence = 0.0
            for element in candidates:
                confidence = len(devices) / len(
                    topology.covered(element)
                )
                # Strict > keeps the nearest element on ties: the
                # candidate chain is already lowest-first.
                if confidence > best_confidence:
                    best = element
                    best_confidence = confidence
            if best is not None:
                return CauseHypothesis(
                    kind=topology.kind(best),
                    element=best,
                    confidence=best_confidence,
                )
        # Per-device fallback: no topology, unknown devices, or no
        # common element (independent bursts that merged through a
        # chain of pairwise overlaps).  Blame the loudest device.
        loudest = min(
            devices,
            key=lambda device: (-incident.scores[device], device),
        )
        return CauseHypothesis(
            kind=KIND_DEVICE,
            element=loudest,
            confidence=1.0 / len(devices),
        )

    # -- the service adapter ---------------------------------------------

    def observe_tick(
        self,
        tick: int,
        messages: Sequence[SyslogMessage],
        scores: np.ndarray,
        kept: np.ndarray,
        threshold: float,
    ) -> List[IncidentReport]:
        """Fold one scored service tick; returns incidents it closed.

        ``scores``/``kept`` align with ``messages`` (the
        :class:`~repro.core.stream.StreamBatch` layout); an anomaly is
        a kept message scoring strictly above ``threshold`` (NaN
        warm-up scores never qualify).  The tick's last message stamps
        the watermark — ticks arrive time-ordered, and the watermark's
        own monotonicity absorbs any intra-tick disorder at the cost
        of a close deferred by at most one tick.
        """
        if len(messages):
            anomalous = np.flatnonzero(kept & (scores > threshold))
            watermark = messages[-1].timestamp
            for index in anomalous:  # repro: hot-path
                message = messages[index]
                self.ingest(
                    message.host,
                    message.timestamp,
                    float(scores[index]),
                    tick,
                )
                if message.timestamp > watermark:
                    watermark = message.timestamp
            return self.advance(float(watermark))
        if self._watermark is not None:
            return self.advance(self._watermark)
        return []

    # -- telemetry -------------------------------------------------------

    def _publish(self, closed: Sequence[IncidentReport]) -> None:
        """Batch-boundary telemetry: open/close deltas, close shapes."""
        registry = telemetry.default_registry()
        registry.counter("rca.incidents_opened").inc(
            self._opened_unpublished
        )
        self._opened_unpublished = 0
        registry.gauge("rca.incidents_open").set(len(self._open))
        if not closed:
            return
        registry.counter("rca.incidents_closed").inc(len(closed))
        sizes = np.fromiter(
            (len(report.incident.devices) for report in closed),
            dtype=np.float64,
            count=len(closed),
        )
        registry.histogram(
            "rca.incident_devices", edges=_SIZE_BUCKETS
        ).observe_array(sizes)
        latencies = np.fromiter(
            (
                report.closed_at - (report.incident.first_time or 0.0)
                for report in closed
            ),
            dtype=np.float64,
            count=len(closed),
        )
        registry.histogram(
            "rca.attribution_seconds", edges=_LATENCY_BUCKETS
        ).observe_array(latencies)

    # -- durability ------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot riding the service checkpoint."""
        return {
            "version": RCA_STATE_VERSION,
            "next_id": self._next_id,
            "watermark": self._watermark,
            "open": [
                [incident_id, incident.to_state()]
                for incident_id, incident in self._open.items()
            ],
            "device_incident": dict(self._device_incident),
            "n_opened": self._n_opened,
            "n_closed": self._n_closed,
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot (element sets rebuilt)."""
        version = state.get("version")
        if version != RCA_STATE_VERSION:
            raise ValueError(
                f"rca state version {version!r} is not supported "
                f"(expected {RCA_STATE_VERSION})"
            )
        self._open = {}
        self._open_elements = {}
        for incident_id, raw in state["open"]:
            incident = Incident.from_state(raw)
            self._open[int(incident_id)] = incident
            elements: set = set()
            for device in incident.devices:
                elements.update(self._ancestry_set(device))
            self._open_elements[int(incident_id)] = elements
        self._device_incident = {
            str(device): int(incident_id)
            for device, incident_id in state["device_incident"].items()
        }
        self._next_id = int(state["next_id"])
        raw_watermark = state.get("watermark")
        self._watermark = (
            None if raw_watermark is None else float(raw_watermark)
        )
        self._n_opened = int(state["n_opened"])
        self._n_closed = int(state["n_closed"])
        self._opened_unpublished = 0
        self._drained = []


__all__ = [
    "DEFAULT_CLUSTER_GAP",
    "INCIDENT_CSV_COLUMNS",
    "IncidentReport",
    "RCA_STATE_VERSION",
    "RcaEngine",
    "incident_row",
]
