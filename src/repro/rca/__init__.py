"""Streaming topology-aware root-cause analysis.

Groups per-device anomaly decisions into fleet incidents and walks
the :mod:`repro.topology` graph to a lowest-common-ancestor cause
hypothesis; see :mod:`repro.rca.engine` for the clustering and
attribution rules and the replay/durability contract.
"""

from repro.rca.engine import (
    DEFAULT_CLUSTER_GAP,
    INCIDENT_CSV_COLUMNS,
    RCA_STATE_VERSION,
    IncidentReport,
    RcaEngine,
    incident_row,
)

__all__ = [
    "DEFAULT_CLUSTER_GAP",
    "INCIDENT_CSV_COLUMNS",
    "IncidentReport",
    "RCA_STATE_VERSION",
    "RcaEngine",
    "incident_row",
]
