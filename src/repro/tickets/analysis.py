"""Ticket analytics reproducing section 3.2 of the paper.

Three analyses drive the paper's motivation:

* Figure 1(a): monthly mix of ticket root causes (maintenance
  dominates; duplicates and circuit next).
* Figure 1(b): CDF of inter-arrival times of non-duplicated tickets
  per vPE (all > 40 minutes; 80% > 10 hours; 25% > 1000 hours).
* Figure 2: non-maintenance tickets scattered across time × vPE,
  showing skew toward a few vPEs and rare fleet-wide events.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.tickets.ticket import RootCause, TroubleTicket
from repro.timeutil import HOUR, MONTH, TRACE_START, month_index


def non_duplicated(
    tickets: Sequence[TroubleTicket],
) -> List[TroubleTicket]:
    """Drop DUPLICATE follow-ups, keeping original tickets only."""
    return [ticket for ticket in tickets if not ticket.is_duplicate]


def tickets_per_vpe(
    tickets: Sequence[TroubleTicket],
) -> Dict[str, List[TroubleTicket]]:
    """Group tickets by vPE, each group sorted by report time."""
    grouped: Dict[str, List[TroubleTicket]] = defaultdict(list)
    for ticket in tickets:
        grouped[ticket.vpe].append(ticket)
    for group in grouped.values():
        group.sort(key=lambda ticket: ticket.report_time)
    return dict(grouped)


def monthly_type_mix(
    tickets: Sequence[TroubleTicket],
    n_months: int,
    origin: float = TRACE_START,
) -> Dict[RootCause, np.ndarray]:
    """Monthly fraction of tickets per root cause — Figure 1(a).

    Returns, per root cause, an array of length ``n_months`` whose entry
    ``i`` is the fraction of month-``i`` tickets with that cause.
    Months without tickets get all-zero rows.
    """
    counts = {cause: np.zeros(n_months) for cause in RootCause}
    totals = np.zeros(n_months)
    for ticket in tickets:
        month = month_index(ticket.report_time, origin)
        if month >= n_months:
            continue
        counts[ticket.root_cause][month] += 1
        totals[month] += 1
    safe_totals = np.where(totals > 0, totals, 1.0)
    return {
        cause: values / safe_totals for cause, values in counts.items()
    }


def interarrival_hours(
    tickets: Sequence[TroubleTicket],
) -> np.ndarray:
    """Per-vPE inter-arrival times of non-duplicated tickets, in hours.

    Consecutive gaps are computed within each vPE (the paper's
    "inter-arrival time of non-duplicated tickets per vPE") and pooled.
    """
    gaps: List[float] = []
    for group in tickets_per_vpe(non_duplicated(tickets)).values():
        times = [ticket.report_time for ticket in group]
        gaps.extend(
            (later - earlier) / HOUR
            for earlier, later in zip(times, times[1:])
        )
    return np.asarray(gaps, dtype=np.float64)


def interarrival_cdf(
    tickets: Sequence[TroubleTicket],
) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of non-duplicated inter-arrival times — Fig. 1(b).

    Returns ``(hours, cdf)`` arrays; ``cdf[i]`` is the fraction of gaps
    ``<= hours[i]``.
    """
    gaps = np.sort(interarrival_hours(tickets))
    if gaps.size == 0:
        return np.empty(0), np.empty(0)
    cdf = np.arange(1, gaps.size + 1, dtype=np.float64) / gaps.size
    return gaps, cdf


def ticket_scatter(
    tickets: Sequence[TroubleTicket],
    origin: float = TRACE_START,
    bin_width: float = MONTH / 30,
) -> List[Tuple[int, int]]:
    """Non-maintenance ticket occupancy as ``(time_bin, vpe_rank)`` — Fig. 2.

    vPEs are ranked by their ticket volume (rank 0 = most tickets), as
    in the figure's "sort by ticket #" y-axis.  Each returned pair marks
    a (time bin, vPE) cell that contains at least one ticket.
    """
    relevant = [
        ticket
        for ticket in tickets
        if ticket.root_cause is not RootCause.MAINTENANCE
    ]
    by_vpe = tickets_per_vpe(relevant)
    ranked = sorted(
        by_vpe, key=lambda vpe: len(by_vpe[vpe]), reverse=True
    )
    rank_of = {vpe: rank for rank, vpe in enumerate(ranked)}
    cells = {
        (
            int((ticket.report_time - origin) // bin_width),
            rank_of[ticket.vpe],
        )
        for ticket in relevant
    }
    return sorted(cells)


def fleet_wide_events(
    tickets: Sequence[TroubleTicket],
    window: float = HOUR,
    min_vpes: int = 4,
) -> List[Tuple[float, int]]:
    """Detect intervals where many vPEs ticketed together (Fig. 2 bars).

    Returns ``(window_start, n_vpes)`` for every ``window``-sized bin in
    which at least ``min_vpes`` distinct vPEs reported non-maintenance
    tickets — the core-router disruptions the paper calls out as rare.
    """
    bins: Dict[int, set] = defaultdict(set)
    for ticket in non_duplicated(tickets):
        if ticket.root_cause is RootCause.MAINTENANCE:
            continue
        bins[int(ticket.report_time // window)].add(ticket.vpe)
    return sorted(
        (bin_index * window, len(vpes))
        for bin_index, vpes in bins.items()
        if len(vpes) >= min_vpes
    )
