"""Trouble-ticket data model.

Section 2 of the paper ("Network Trouble Tickets") defines the record:
time of occurrence, root cause, duration, with six root-cause
categories.  Section 4.1 adds the two evaluation windows anchored on a
ticket — the *predictive period* before the report and the *infected
period* between report and repair finish.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.timeutil import DAY


class RootCause(enum.Enum):
    """The paper's six trouble-ticket root-cause categories."""

    MAINTENANCE = "maintenance"
    CIRCUIT = "circuit"
    CABLE = "cable"
    HARDWARE = "hardware"
    SOFTWARE = "software"
    DUPLICATE = "duplicate"

    @property
    def is_predictable_by_schedule(self) -> bool:
        """Maintenance tickets are pre-scheduled, hence predictable."""
        return self is RootCause.MAINTENANCE


_ticket_counter = itertools.count(1)


@dataclass(frozen=True)
class TroubleTicket:
    """One trouble ticket.

    Attributes:
        vpe: name of the vPE the ticket is filed against.
        root_cause: one of the six categories.
        report_time: POSIX seconds when the ticket was opened.  Per the
            paper this is *at or after* the first symptom, because the
            ticketing flow adds verification latency.
        repair_time: POSIX seconds when the repair finished.
        fault_time: when the underlying fault actually began (known to
            the simulator; production systems do not record it).  Used
            only for diagnostics, never by the detector.
        original_ticket_id: for DUPLICATE tickets, the id of the ticket
            they follow up on.
    """

    vpe: str
    root_cause: RootCause
    report_time: float
    repair_time: float
    fault_time: Optional[float] = None
    original_ticket_id: Optional[int] = None
    ticket_id: int = field(
        default_factory=lambda: next(_ticket_counter), compare=False
    )

    def __post_init__(self) -> None:
        if self.repair_time < self.report_time:
            raise ValueError(
                f"repair_time {self.repair_time} precedes report_time "
                f"{self.report_time}"
            )
        if self.fault_time is not None and self.fault_time > self.report_time:
            raise ValueError("fault_time must not follow report_time")
        if (
            self.root_cause is RootCause.DUPLICATE
            and self.original_ticket_id is None
        ):
            raise ValueError("DUPLICATE tickets need original_ticket_id")

    @property
    def duration(self) -> float:
        """Ticket duration: report to repair finish, in seconds."""
        return self.repair_time - self.report_time

    @property
    def is_duplicate(self) -> bool:
        """Whether this ticket duplicates an earlier one."""
        return self.root_cause is RootCause.DUPLICATE

    def timeline(self, predictive_period: float = DAY) -> "TicketTimeline":
        """The evaluation windows anchored on this ticket (Figure 4)."""
        return TicketTimeline(
            ticket=self, predictive_period=predictive_period
        )


@dataclass(frozen=True)
class TicketTimeline:
    """Predictive / infected periods of a ticket (Figure 4).

    * anomalies in ``[report - predictive_period, report)`` are *early
      warnings*;
    * anomalies in ``[report, repair]`` are *errors*;
    * anomalies elsewhere are false alarms (relative to this ticket).
    """

    ticket: TroubleTicket
    predictive_period: float = DAY

    def __post_init__(self) -> None:
        if self.predictive_period < 0:
            raise ValueError("predictive_period must be non-negative")

    @property
    def predictive_start(self) -> float:
        """Start of the predictive period before the report time."""
        return self.ticket.report_time - self.predictive_period

    def contains(self, timestamp: float) -> bool:
        """Whether a timestamp falls in either evaluation window."""
        return self.predictive_start <= timestamp <= self.ticket.repair_time

    def is_early_warning(self, timestamp: float) -> bool:
        """Whether ``timestamp`` falls in the predictive period."""
        return self.predictive_start <= timestamp < self.ticket.report_time

    def is_error(self, timestamp: float) -> bool:
        """Whether ``timestamp`` falls between report and repair."""
        return self.ticket.report_time <= timestamp <= self.ticket.repair_time

    def lead_time(self, timestamp: float) -> float:
        """Seconds by which a detection precedes the ticket report.

        Positive values mean the anomaly came first (an early signal),
        negative values mean it trailed the report.
        """
        return self.ticket.report_time - timestamp
