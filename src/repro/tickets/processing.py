"""Operations ticketing pipeline.

Section 2: "trouble tickets are triggered by signals from various
network monitoring systems matching against known problem signatures
via a series of ticket processing logic, such as pattern matching,
event correlation, reoccurrence and duration verification."  The flow
adds delay between the first symptom and the ticket report time, and
unresolved troubles spawn DUPLICATE follow-up tickets.

:class:`TicketProcessor` models that flow over a stream of
:class:`MonitoringSignal` events: signals are matched against known
signatures, correlated within a window, verified for re-occurrence /
minimum duration (which is where the report delay comes from), and
then opened as tickets.  Unresolved faults re-enter the flow and come
out as duplicates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.tickets.ticket import RootCause, TroubleTicket
from repro.timeutil import HOUR, MINUTE


@dataclass(frozen=True)
class MonitoringSignal:
    """One event from a monitoring system feeding the ticket flow.

    Attributes:
        timestamp: when the monitoring system saw the symptom.
        vpe: the device the symptom is attributed to.
        signature: the known-problem signature the signal matched
            (e.g. ``"circuit-down"``); the processor only opens tickets
            for signatures in its policy table.
        root_cause: ground-truth root cause carried by the simulator so
            the opened ticket is labelled; a production flow infers it.
        fault_id: groups signals belonging to one underlying fault.
        clears_at: when the underlying condition clears (drives the
            repair-finish time and duplicate generation).
    """

    timestamp: float
    vpe: str
    signature: str
    root_cause: RootCause
    fault_id: int
    clears_at: float


@dataclass(frozen=True)
class TicketingPolicy:
    """Tunable knobs of the ticket-processing flow.

    Attributes:
        verification_delay: intentional delay between matching a
            signature and opening the ticket, used by operations to
            suppress transients (section 5.3, scenario three).
        reoccurrence_count: how many signals of one fault must be seen
            before a ticket opens (re-occurrence verification).
        correlation_window: signals of the same fault within this
            window are correlated into one candidate ticket.
        duplicate_interval: when a fault stays uncleared, a DUPLICATE
            follow-up ticket opens every interval.
        max_duplicates: cap on follow-ups per original ticket.
        suppression_window: a new (non-duplicate) ticket on a device is
            suppressed when it would open within this window of the
            device's previous ticket — near-simultaneous symptoms are
            correlated into the open ticket instead.  This is why the
            paper observes no non-duplicated tickets closer than ~40
            minutes (section 3.2).
    """

    verification_delay: float = 5 * MINUTE
    reoccurrence_count: int = 2
    correlation_window: float = 15 * MINUTE
    duplicate_interval: float = 3 * HOUR
    max_duplicates: int = 3
    suppression_window: float = 45 * MINUTE

    def __post_init__(self) -> None:
        if self.verification_delay < 0:
            raise ValueError("verification_delay must be non-negative")
        if self.reoccurrence_count < 1:
            raise ValueError("reoccurrence_count must be >= 1")
        if self.correlation_window <= 0:
            raise ValueError("correlation_window must be positive")
        if self.duplicate_interval <= 0:
            raise ValueError("duplicate_interval must be positive")
        if self.max_duplicates < 0:
            raise ValueError("max_duplicates must be non-negative")
        if self.suppression_window < 0:
            raise ValueError("suppression_window must be non-negative")


@dataclass
class _FaultState:
    """Correlation state for one in-flight fault."""

    signals: List[MonitoringSignal] = field(default_factory=list)
    ticket_opened: bool = False


class TicketProcessor:
    """Turn monitoring signals into trouble tickets.

    The processor is deterministic: given the same signal stream and
    policy it emits the same tickets.  Signals must be fed in timestamp
    order (as a batch via :meth:`process`).
    """

    def __init__(self, policy: Optional[TicketingPolicy] = None) -> None:
        self.policy = policy or TicketingPolicy()

    def process(
        self, signals: Iterable[MonitoringSignal]
    ) -> List[TroubleTicket]:
        """Run the full flow over a signal stream, returning tickets.

        Tickets are returned sorted by report time; duplicates carry
        the original ticket id.
        """
        ordered = sorted(signals, key=lambda signal: signal.timestamp)
        states: Dict[int, _FaultState] = {}
        tickets: List[TroubleTicket] = []
        for signal in ordered:
            state = states.setdefault(signal.fault_id, _FaultState())
            if state.ticket_opened:
                continue
            state.signals = [
                seen
                for seen in state.signals
                if signal.timestamp - seen.timestamp
                <= self.policy.correlation_window
            ]
            state.signals.append(signal)
            if len(state.signals) >= self.policy.reoccurrence_count:
                tickets.extend(self._open_ticket(state.signals))
                state.ticket_opened = True
        tickets.sort(key=lambda ticket: ticket.report_time)
        return self._suppress_near_simultaneous(tickets)

    def _suppress_near_simultaneous(
        self, tickets: List[TroubleTicket]
    ) -> List[TroubleTicket]:
        """Drop per-device tickets opening inside the suppression window.

        A suppressed original ticket takes its duplicate follow-ups
        with it.  Duplicates of kept tickets are never suppressed (they
        are intentional re-notifications of the same fault).
        """
        if self.policy.suppression_window == 0:
            return tickets
        kept: List[TroubleTicket] = []
        last_report: Dict[str, float] = {}
        suppressed_ids: set = set()
        for ticket in tickets:
            if ticket.is_duplicate:
                if ticket.original_ticket_id not in suppressed_ids:
                    kept.append(ticket)
                continue
            previous = last_report.get(ticket.vpe)
            if (
                previous is not None
                and ticket.report_time - previous
                < self.policy.suppression_window
            ):
                suppressed_ids.add(ticket.ticket_id)
                continue
            last_report[ticket.vpe] = ticket.report_time
            kept.append(ticket)
        return kept

    def _open_ticket(
        self, correlated: Sequence[MonitoringSignal]
    ) -> List[TroubleTicket]:
        """Open the original ticket plus any duplicate follow-ups."""
        first = correlated[0]
        trigger = correlated[-1]
        report_time = trigger.timestamp + self.policy.verification_delay
        repair_time = max(first.clears_at, report_time)
        original = TroubleTicket(
            vpe=first.vpe,
            root_cause=first.root_cause,
            report_time=report_time,
            repair_time=repair_time,
            fault_time=first.timestamp,
        )
        tickets = [original]
        # Long-lived faults generate duplicate follow-ups while open
        # (section 3.2: "duplicated tickets often arrive in bursts").
        follow_up_time = report_time + self.policy.duplicate_interval
        emitted = 0
        while (
            follow_up_time < repair_time
            and emitted < self.policy.max_duplicates
        ):
            tickets.append(
                TroubleTicket(
                    vpe=first.vpe,
                    root_cause=RootCause.DUPLICATE,
                    report_time=follow_up_time,
                    repair_time=repair_time,
                    fault_time=first.timestamp,
                    original_ticket_id=original.ticket_id,
                )
            )
            emitted += 1
            follow_up_time += self.policy.duplicate_interval
        return tickets
