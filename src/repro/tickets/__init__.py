"""Trouble-ticket substrate: data model, processing flow, analytics.

Trouble tickets are the (approximate) ground truth of the paper: every
actionable network event at the 38 vPEs, with a root cause in six
categories, a report time and a repair-finish time.  This package
models the ticket record (``ticket.py``), the operations ticketing
pipeline that turns monitoring signals into tickets with verification
delays and duplicate follow-ups (``processing.py``), and the analyses
of section 3.2 (``analysis.py``).
"""

from repro.tickets.ticket import RootCause, TicketTimeline, TroubleTicket
from repro.tickets.processing import (
    MonitoringSignal,
    TicketingPolicy,
    TicketProcessor,
)
from repro.tickets.analysis import (
    interarrival_cdf,
    monthly_type_mix,
    non_duplicated,
    ticket_scatter,
    tickets_per_vpe,
)

__all__ = [
    "RootCause",
    "TicketTimeline",
    "TroubleTicket",
    "MonitoringSignal",
    "TicketingPolicy",
    "TicketProcessor",
    "interarrival_cdf",
    "monthly_type_mix",
    "non_duplicated",
    "ticket_scatter",
    "tickets_per_vpe",
]
