"""Bootstrap confidence intervals for detection metrics.

The benchmarks run single seeded traces, so point estimates of
precision/recall/F carry sampling noise — especially recall, whose
denominator (tickets) is small.  These helpers quantify that noise by
resampling detections (for precision) and tickets (for recall) with
replacement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from repro.evaluation.metrics import f_measure

if TYPE_CHECKING:  # avoid a circular import at runtime
    from repro.core.mapping import MappingResult


@dataclass(frozen=True)
class ConfidenceInterval:
    """A point estimate with a percentile bootstrap interval."""

    point: float
    low: float
    high: float
    confidence: float = 0.95

    def __post_init__(self) -> None:
        if not self.low <= self.point <= self.high:
            raise ValueError(
                f"interval [{self.low}, {self.high}] must bracket the "
                f"point estimate {self.point}"
            )

    def __str__(self) -> str:
        return (
            f"{self.point:.3f} "
            f"[{self.low:.3f}, {self.high:.3f}]"
        )


def _percentile_interval(
    samples: np.ndarray, point: float, confidence: float
) -> ConfidenceInterval:
    alpha = (1.0 - confidence) / 2.0
    low = float(np.quantile(samples, alpha))
    high = float(np.quantile(samples, 1.0 - alpha))
    return ConfidenceInterval(
        point=point,
        low=min(low, point),
        high=max(high, point),
        confidence=confidence,
    )


def bootstrap_detection_metrics(
    mapping: "MappingResult",
    n_boot: int = 1000,
    confidence: float = 0.95,
    rng: Optional[np.random.Generator] = None,
) -> Dict[str, ConfidenceInterval]:
    """Bootstrap precision / recall / F from a mapping result.

    Precision resamples the detection records; recall resamples the
    ticket population; F combines paired draws.  Returns a dict with
    keys ``"precision"``, ``"recall"``, ``"f_measure"``.
    """
    from repro.core.mapping import AnomalyKind

    if n_boot < 1:
        raise ValueError("n_boot must be >= 1")
    rng = rng or np.random.default_rng(0)
    record_hits = np.array(
        [
            record.kind is not AnomalyKind.FALSE_ALARM
            for record in mapping.records
        ],
        dtype=np.float64,
    )
    ticket_hits = np.array(
        [
            bool(mapping.ticket_hits.get(ticket.ticket_id))
            for ticket in mapping.tickets
        ],
        dtype=np.float64,
    )
    counts = mapping.counts
    if record_hits.size == 0 or ticket_hits.size == 0:
        zero = ConfidenceInterval(0.0, 0.0, 0.0, confidence)
        return {
            "precision": zero,
            "recall": zero,
            "f_measure": zero,
        }
    precision_samples = np.empty(n_boot)
    recall_samples = np.empty(n_boot)
    f_samples = np.empty(n_boot)
    for index in range(n_boot):
        precision = float(
            np.mean(
                record_hits[
                    rng.integers(
                        record_hits.size, size=record_hits.size
                    )
                ]
            )
        )
        recall = float(
            np.mean(
                ticket_hits[
                    rng.integers(
                        ticket_hits.size, size=ticket_hits.size
                    )
                ]
            )
        )
        precision_samples[index] = precision
        recall_samples[index] = recall
        f_samples[index] = f_measure(precision, recall)
    return {
        "precision": _percentile_interval(
            precision_samples, counts.precision, confidence
        ),
        "recall": _percentile_interval(
            recall_samples, counts.recall, confidence
        ),
        "f_measure": _percentile_interval(
            f_samples, counts.f_measure, confidence
        ),
    }
