"""Detection metrics: precision, recall, F-measure, PRC (section 5.2).

The paper's definitions:

* *Precision* — fraction of detected anomalies that are true anomalies
  (fall inside a ticket's predictive or infected period);
* *Recall* — fraction of tickets (the approximate ground truth) whose
  periods contain at least one detected anomaly;
* *F-measure* — their harmonic mean;
* the *PRC* is swept by varying the LSTM log-likelihood threshold, and
  the operating point maximizes F-measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class DetectionCounts:
    """Raw counts from mapping anomalies to tickets.

    Attributes:
        true_anomalies: detections inside some ticket's periods.
        false_alarms: detections outside every ticket's periods.
        tickets_detected: tickets covered by >= 1 detection.
        tickets_total: tickets considered.
    """

    true_anomalies: int
    false_alarms: int
    tickets_detected: int
    tickets_total: int

    def __post_init__(self) -> None:
        if min(
            self.true_anomalies,
            self.false_alarms,
            self.tickets_detected,
            self.tickets_total,
        ) < 0:
            raise ValueError("counts must be non-negative")
        if self.tickets_detected > self.tickets_total:
            raise ValueError(
                "tickets_detected cannot exceed tickets_total"
            )

    @property
    def precision(self) -> float:
        """Fraction of detections that match a real ticket."""
        detected = self.true_anomalies + self.false_alarms
        if detected == 0:
            return 0.0
        return self.true_anomalies / detected

    @property
    def recall(self) -> float:
        """Fraction of tickets covered by a detection."""
        if self.tickets_total == 0:
            return 0.0
        return self.tickets_detected / self.tickets_total

    @property
    def f_measure(self) -> float:
        """Harmonic mean of precision and recall."""
        return f_measure(self.precision, self.recall)


def precision_recall(counts: DetectionCounts) -> Tuple[float, float]:
    """Convenience accessor returning ``(precision, recall)``."""
    return counts.precision, counts.recall


def f_measure(precision: float, recall: float) -> float:
    """Harmonic mean of precision and recall (F1)."""
    if precision < 0 or recall < 0:
        raise ValueError("precision and recall must be non-negative")
    if precision + recall == 0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


@dataclass(frozen=True)
class PrecisionRecallPoint:
    """One PRC point: the threshold and the metrics it produced."""

    threshold: float
    precision: float
    recall: float

    @property
    def f_measure(self) -> float:
        """Harmonic mean of precision and recall."""
        return f_measure(self.precision, self.recall)


def best_operating_point(
    curve: Sequence[PrecisionRecallPoint],
) -> PrecisionRecallPoint:
    """The PRC point maximizing F-measure (the paper's operating point)."""
    if not curve:
        raise ValueError("empty PRC")
    return max(curve, key=lambda point: point.f_measure)


def auc_pr(curve: Sequence[PrecisionRecallPoint]) -> float:
    """Area under the PR curve via trapezoidal integration over recall.

    Points are sorted by recall; duplicated recall values keep the max
    precision, the usual convention.
    """
    if not curve:
        return 0.0
    by_recall: dict = {}
    for point in curve:
        existing = by_recall.get(point.recall)
        if existing is None or point.precision > existing:
            by_recall[point.recall] = point.precision
    recalls = np.array(sorted(by_recall))
    precisions = np.array([by_recall[r] for r in recalls])
    if recalls.size == 1:
        return float(precisions[0] * recalls[0])
    return float(np.trapezoid(precisions, recalls))
