"""Evaluation: detection metrics, PRC sweeps, bootstrap CIs, tables."""

from repro.evaluation.bootstrap import (
    ConfidenceInterval,
    bootstrap_detection_metrics,
)
from repro.evaluation.metrics import (
    DetectionCounts,
    PrecisionRecallPoint,
    auc_pr,
    best_operating_point,
    f_measure,
    precision_recall,
)
from repro.evaluation.rca import (
    KindScore,
    RcaEvaluation,
    anomaly_events,
    attribute_dataset,
    evaluate_rca,
    score_rca,
)
from repro.evaluation.reporting import format_series, format_table

__all__ = [
    "KindScore",
    "RcaEvaluation",
    "anomaly_events",
    "attribute_dataset",
    "evaluate_rca",
    "score_rca",
    "ConfidenceInterval",
    "bootstrap_detection_metrics",
    "DetectionCounts",
    "PrecisionRecallPoint",
    "precision_recall",
    "f_measure",
    "best_operating_point",
    "auc_pr",
    "format_table",
    "format_series",
]
