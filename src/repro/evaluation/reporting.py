"""Plain-text tables and series for benchmark output.

Benchmarks print the same rows/series the paper's figures show; these
helpers keep that output consistent and readable in a terminal.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned monospace table."""
    string_rows: List[List[str]] = [
        [_cell(value) for value in row] for row in rows
    ]
    widths = [len(header) for header in headers]
    for row in string_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(headers)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(
            header.ljust(widths[index])
            for index, header in enumerate(headers)
        )
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in string_rows:
        lines.append(
            "  ".join(
                cell.ljust(widths[index])
                for index, cell in enumerate(row)
            )
        )
    return "\n".join(lines)


def format_series(
    name: str, values: Sequence[float], precision: int = 3
) -> str:
    """Render a named numeric series on one line."""
    rendered = ", ".join(f"{value:.{precision}f}" for value in values)
    return f"{name}: [{rendered}]"


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
