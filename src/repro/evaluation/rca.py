"""Root-cause attribution scored as a classification problem.

The correlated-outage scenario (:mod:`repro.synthesis.outage`) labels
every planned outage with its ground-truth cause — ``(cause_kind,
cause_element)`` plus the devices it actually touched — so RCA
quality reduces to classification: run the streaming engine over the
trace's anomaly stream, match its closed incidents to the labels by
time/device overlap, and score cause-kind precision/recall/F1 per
kind (macro-F1 is the headline number, gated by the ``rca``
benchmark), plus exact-element accuracy and the onset-to-detection /
onset-to-attribution latencies.

Matching is label-centric: each ground-truth outage is attributed by
the overlapping predicted incident sharing the most devices; further
predicted incidents overlapping the same outage are *fragments*
(reported, not penalized), while predicted incidents overlapping no
label at all are *spurious* and count against their predicted kind's
precision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.logs.message import Severity
from repro.rca.engine import (
    DEFAULT_CLUSTER_GAP,
    IncidentReport,
    RcaEngine,
)
from repro.synthesis.catalog import FAULT_SYMPTOM_TEMPLATES
from repro.synthesis.correlated import GroundTruthIncident
from repro.synthesis.dataset import FleetDataset


@dataclass(frozen=True)
class KindScore:
    """Detection counts and derived rates for one cause kind."""

    kind: str
    tp: int
    fp: int
    fn: int

    @property
    def precision(self) -> float:
        """``tp / (tp + fp)`` with an empty-denominator floor of 0."""
        total = self.tp + self.fp
        return self.tp / total if total else 0.0

    @property
    def recall(self) -> float:
        """``tp / (tp + fn)`` with an empty-denominator floor of 0."""
        total = self.tp + self.fn
        return self.tp / total if total else 0.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall (0 when both are 0)."""
        denominator = self.precision + self.recall
        if denominator == 0.0:
            return 0.0
        return 2.0 * self.precision * self.recall / denominator


@dataclass(frozen=True)
class RcaEvaluation:
    """The scored outcome of one RCA run against ground truth.

    Attributes:
        per_kind: per-cause-kind detection counts, keyed by kind.
        macro_f1: unweighted mean F1 over the kinds present in truth.
        n_truth: labeled outages in the trace.
        n_predicted: incidents the engine closed.
        n_matched: labeled outages attributed by some incident.
        n_spurious: predicted incidents overlapping no label.
        n_fragments: extra predicted incidents overlapping an
            already-attributed label.
        element_accuracy: fraction of correctly-kinded attributions
            that also blamed the exact ground-truth element.
        mean_detection_seconds: mean onset-to-first-anomaly latency
            over matched outages.
        mean_attribution_seconds: mean onset-to-incident-close
            latency over matched outages.
    """

    per_kind: Dict[str, KindScore]
    macro_f1: float
    n_truth: int
    n_predicted: int
    n_matched: int
    n_spurious: int
    n_fragments: int
    element_accuracy: float
    mean_detection_seconds: float
    mean_attribution_seconds: float


def _symptom_keys() -> frozenset:
    """Identity keys of actionable fault-symptom templates.

    A rendered message is recognised by ``(process, severity, text
    prefix before the first colon)``.  Only templates at WARNING or
    worse qualify: the NOTICE-level maintenance templates describe
    planned work a detector is trained to ignore, and routine traffic
    (e.g. the plain ``UI_COMMIT`` config-commit template) shares
    prefixes only with those NOTICE symptoms.
    """
    keys = set()
    for group in FAULT_SYMPTOM_TEMPLATES.values():
        for spec in group:
            if spec.severity <= Severity.WARNING:
                keys.add(
                    (
                        spec.process,
                        int(spec.severity),
                        spec.pattern.split(":")[0],
                    )
                )
    return frozenset(keys)


def anomaly_events(
    dataset: FleetDataset,
) -> List[Tuple[float, str, float]]:
    """Time-sorted ``(time, device, score)`` anomaly proxies.

    Messages rendered from actionable fault-symptom templates are the
    trace's anomaly ground truth (routine vPE traffic includes benign
    WARNING chatter such as SNMP traps that a converged detector
    models as normal), scored by inverted severity so a louder symptom
    carries a higher score.  This feeds the engine the decisions an
    oracle detector would emit, which is what lets the evaluation
    isolate *attribution* quality from detector quality.
    """
    symptoms = _symptom_keys()
    events: List[Tuple[float, str, float]] = []
    for vpe, stream in dataset.messages.items():
        for message in stream:
            key = (
                message.process,
                int(message.severity),
                message.text.split(":")[0],
            )
            if key in symptoms:
                events.append(
                    (
                        message.timestamp,
                        vpe,
                        float(Severity.DEBUG - message.severity),
                    )
                )
    events.sort()
    return events


def attribute_dataset(
    dataset: FleetDataset,
    cluster_gap: float = DEFAULT_CLUSTER_GAP,
) -> List[IncidentReport]:
    """Run the streaming engine over a dataset's anomaly stream."""
    engine = RcaEngine(
        topology=dataset.topology, cluster_gap=cluster_gap
    )
    reports: List[IncidentReport] = []
    for time, device, score in anomaly_events(dataset):
        engine.ingest(device, time, score)
        reports.extend(engine.advance(time))
    reports.extend(engine.flush())
    return reports


def _overlaps(
    report: IncidentReport,
    truth: GroundTruthIncident,
    pad: float,
) -> int:
    """Shared device count iff the spans overlap (0 otherwise)."""
    first = report.incident.first_time
    last = report.incident.last_time
    if first is None or last is None:
        return 0
    if first > truth.clears_at + pad or last < truth.onset - pad:
        return 0
    return len(set(report.incident.devices) & set(truth.devices))


def score_rca(
    predicted: Sequence[IncidentReport],
    truth: Sequence[GroundTruthIncident],
    pad: float = DEFAULT_CLUSTER_GAP,
) -> RcaEvaluation:
    """Match predicted incidents to labels and score per cause kind.

    ``pad`` widens each label's ``[onset, clears_at]`` window on both
    sides before the time-overlap test, absorbing per-hop propagation
    delay and the engine's quiet-gap close.
    """
    tp: Dict[str, int] = {}
    fp: Dict[str, int] = {}
    fn: Dict[str, int] = {}
    consumed: Dict[int, int] = {}
    matched = fragments = element_hits = 0
    detection: List[float] = []
    attribution: List[float] = []
    for index, label in enumerate(truth):
        fn.setdefault(label.cause_kind, 0)
        best: Optional[IncidentReport] = None
        best_overlap = 0
        for report in predicted:
            overlap = _overlaps(report, label, pad)
            if overlap > best_overlap:
                best = report
                best_overlap = overlap
        if best is None:
            fn[label.cause_kind] = fn.get(label.cause_kind, 0) + 1
            continue
        matched += 1
        consumed[best.incident_id] = index
        cause = best.incident.cause
        assert cause is not None
        if cause.kind == label.cause_kind:
            tp[cause.kind] = tp.get(cause.kind, 0) + 1
            if cause.element == label.cause_element:
                element_hits += 1
        else:
            fp[cause.kind] = fp.get(cause.kind, 0) + 1
            fn[label.cause_kind] = fn.get(label.cause_kind, 0) + 1
        first = best.incident.first_time
        if first is not None:
            detection.append(first - label.onset)
        attribution.append(best.closed_at - label.onset)
    spurious = 0
    for report in predicted:
        if report.incident_id in consumed:
            continue
        if any(_overlaps(report, label, pad) for label in truth):
            fragments += 1
            continue
        spurious += 1
        cause = report.incident.cause
        assert cause is not None
        fp[cause.kind] = fp.get(cause.kind, 0) + 1
    kinds = sorted(set(tp) | set(fp) | set(fn))
    per_kind = {
        kind: KindScore(
            kind=kind,
            tp=tp.get(kind, 0),
            fp=fp.get(kind, 0),
            fn=fn.get(kind, 0),
        )
        for kind in kinds
    }
    truth_kinds = sorted({label.cause_kind for label in truth})
    if truth_kinds:
        macro_f1 = sum(
            per_kind[kind].f1 if kind in per_kind else 0.0
            for kind in truth_kinds
        ) / len(truth_kinds)
    else:
        macro_f1 = 0.0
    correct = sum(score.tp for score in per_kind.values())
    return RcaEvaluation(
        per_kind=per_kind,
        macro_f1=macro_f1,
        n_truth=len(truth),
        n_predicted=len(predicted),
        n_matched=matched,
        n_spurious=spurious,
        n_fragments=fragments,
        element_accuracy=(
            element_hits / correct if correct else 0.0
        ),
        mean_detection_seconds=(
            sum(detection) / len(detection) if detection else 0.0
        ),
        mean_attribution_seconds=(
            sum(attribution) / len(attribution) if attribution else 0.0
        ),
    )


def evaluate_rca(
    dataset: FleetDataset,
    cluster_gap: float = DEFAULT_CLUSTER_GAP,
    pad: float = DEFAULT_CLUSTER_GAP,
) -> RcaEvaluation:
    """End-to-end: attribute a labeled dataset, score the result."""
    return score_rca(
        attribute_dataset(dataset, cluster_gap=cluster_gap),
        dataset.incidents,
        pad=pad,
    )


__all__ = [
    "KindScore",
    "RcaEvaluation",
    "anomaly_events",
    "attribute_dataset",
    "evaluate_rca",
    "score_rca",
]
