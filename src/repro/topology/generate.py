"""Deterministic fleet topology synthesis.

Builds a :class:`~repro.topology.graph.FleetTopology` over a named
device fleet with the same reproducibility contract as the rest of
the synthesizer: every draw comes from one ``--seed``-derived
:class:`numpy.random.Generator`, so the same ``(devices, seed)``
produces the same graph in every process and interpreter run (no
``hash()``, no OS entropy).

The shape mirrors a small ISP edge deployment: a handful of vPEs per
access circuit, a few circuits terminating per site, sites paired
onto shared long-haul cables, and the fleet split across a small
number of software versions (rollouts are never perfectly uniform,
so version cohort sizes are drawn, not chunked).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.topology.graph import FleetTopology

#: Seed-stream tag for topology generation: every draw below comes
#: from ``default_rng([seed, TOPOLOGY_SEED_TAG])``, keeping the
#: stream disjoint from the simulator's per-vPE and fleet streams.
TOPOLOGY_SEED_TAG = 23


@dataclass(frozen=True)
class TopologyConfig:
    """Shape knobs for :func:`generate_topology`.

    Attributes:
        devices_per_circuit: mean vPEs attached to one circuit.
        circuits_per_site: mean circuits terminating at one site.
        sites_per_cable: mean sites sharing one long-haul cable.
        n_software_versions: distinct software versions deployed.
        seed: master seed; the generator derives its stream as
            ``[seed, TOPOLOGY_SEED_TAG]``.
    """

    devices_per_circuit: int = 4
    circuits_per_site: int = 3
    sites_per_cable: int = 2
    n_software_versions: int = 3
    seed: int = 7

    def __post_init__(self) -> None:
        for name in (
            "devices_per_circuit",
            "circuits_per_site",
            "sites_per_cable",
            "n_software_versions",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")


def _group_count(n_children: int, per_parent: int) -> int:
    """Parents needed for ``n_children`` at ``per_parent`` each."""
    return max(1, (n_children + per_parent - 1) // per_parent)


def _assign(
    children: Sequence[str],
    parents: Sequence[str],
    rng: np.random.Generator,
) -> List[str]:
    """Shuffle children into parents, round-robin over a permutation.

    Round-robin keeps every parent non-empty (each parent covers at
    least one child while children outnumber parents); the shuffled
    order makes which children share a parent a seed-derived draw.
    """
    order = rng.permutation(len(children))
    assignment = [""] * len(children)
    for position, child_index in enumerate(order):
        assignment[child_index] = parents[position % len(parents)]
    return assignment


def generate_topology(
    devices: Sequence[str],
    config: TopologyConfig,
) -> FleetTopology:
    """Build the fleet graph for a device list, deterministically.

    Args:
        devices: device (vPE) names; order does not affect the graph
            (assignment keys off the sorted list).
        config: shape knobs plus the master seed.

    Returns:
        A validated :class:`FleetTopology` covering every device.
    """
    if not devices:
        raise ValueError("cannot build a topology over zero devices")
    ordered = sorted(devices)
    if len(set(ordered)) != len(ordered):
        raise ValueError("duplicate device names in topology input")
    rng = np.random.default_rng([config.seed, TOPOLOGY_SEED_TAG])

    n_circuits = _group_count(
        len(ordered), config.devices_per_circuit
    )
    circuits = [f"circuit-{i:03d}" for i in range(n_circuits)]
    device_circuit = dict(
        zip(ordered, _assign(ordered, circuits, rng))
    )

    n_sites = _group_count(n_circuits, config.circuits_per_site)
    sites = [f"site-{i:03d}" for i in range(n_sites)]
    circuit_site = dict(zip(circuits, _assign(circuits, sites, rng)))

    n_cables = _group_count(n_sites, config.sites_per_cable)
    cables = [f"cable-{i:03d}" for i in range(n_cables)]
    site_cable = dict(zip(sites, _assign(sites, cables, rng)))

    versions = [
        f"sw-v{i + 1}.0" for i in range(config.n_software_versions)
    ]
    # Rollouts are lumpy: draw each device's version instead of
    # round-robin chunking, so cohort sizes vary with the seed.
    picks = rng.integers(0, len(versions), size=len(ordered))
    device_software = {
        device: versions[int(pick)]
        for device, pick in zip(ordered, picks)
    }

    return FleetTopology(
        device_circuit=device_circuit,
        circuit_site=circuit_site,
        site_cable=site_cable,
        device_software=device_software,
    )


__all__ = [
    "TOPOLOGY_SEED_TAG",
    "TopologyConfig",
    "generate_topology",
]
