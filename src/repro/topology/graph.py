"""The fleet topology graph: what devices share, and how far apart.

The paper's trouble tickets blame faults on shared infrastructure —
circuits, cables, sites, software versions — but the reproduction's
per-device streams carry none of that structure.  This module adds
it: a :class:`FleetTopology` is two overlay trees over the vPE fleet,

* a **physical** chain ``device -> circuit -> site -> cable`` (a vPE
  rides a circuit, circuits terminate at a site, sites share a
  long-haul cable), and
* a **software** cohort ``device -> version`` (devices running the
  same image fail together under a bad rollout).

Every non-device element *covers* the set of devices beneath it;
root-cause analysis walks these edges upward to find the lowest
element covering an incident, and fault injection walks them
downward to spread a correlated outage.  The graph is deliberately
dependency-free (plain dicts, no networkx) and JSON-serializable
with a versioned envelope so it can sit next to the synthesis
manifest.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Dict, Iterable, List, Optional, Tuple, Union

#: Version of the serialized topology layout; bumped on
#: incompatible changes.
TOPOLOGY_VERSION = 1

#: Element kinds, doubling as the RCA cause taxonomy: a fault at a
#: ``circuit``/``cable``/``software`` element maps onto the ticket
#: root causes of the same name, a ``site`` fault surfaces as
#: (planned or unplanned) site maintenance, and a ``device`` fault is
#: local hardware.
KIND_DEVICE = "device"
KIND_CIRCUIT = "circuit"
KIND_SITE = "site"
KIND_CABLE = "cable"
KIND_SOFTWARE = "software"

#: Hop distance from an element down to a covered device, used as the
#: attenuation exponent during correlated fault injection.
_ELEMENT_HOPS = {
    KIND_DEVICE: 0,
    KIND_CIRCUIT: 1,
    KIND_SITE: 2,
    KIND_CABLE: 3,
    KIND_SOFTWARE: 1,
}


class TopologyError(ValueError):
    """An inconsistent or unreadable topology description."""


class FleetTopology:
    """Immutable fleet graph over named devices.

    Args:
        device_circuit: device -> circuit attachment (every device).
        circuit_site: circuit -> terminating site (every circuit).
        site_cable: site -> shared long-haul cable (every site).
        device_software: device -> running software version (every
            device).

    The constructor validates referential integrity: each map must
    cover exactly the elements referenced by the layer below it.
    """

    def __init__(
        self,
        device_circuit: Dict[str, str],
        circuit_site: Dict[str, str],
        site_cable: Dict[str, str],
        device_software: Dict[str, str],
    ) -> None:
        if set(device_circuit) != set(device_software):
            raise TopologyError(
                "device_circuit and device_software must cover the "
                "same device set"
            )
        missing = set(device_circuit.values()) - set(circuit_site)
        if missing:
            raise TopologyError(
                f"circuits without a site: {sorted(missing)}"
            )
        missing = set(circuit_site.values()) - set(site_cable)
        if missing:
            raise TopologyError(
                f"sites without a cable: {sorted(missing)}"
            )
        self._device_circuit = dict(device_circuit)
        self._circuit_site = dict(circuit_site)
        self._site_cable = dict(site_cable)
        self._device_software = dict(device_software)
        # Element -> covered device set, precomputed once: the RCA
        # hot path intersects these on every attribution.
        members: Dict[str, frozenset] = {}
        kinds: Dict[str, str] = {}
        grouped: Dict[str, List[str]] = {}
        for device, circuit in self._device_circuit.items():
            kinds[device] = KIND_DEVICE
            members[device] = frozenset((device,))
            site = self._circuit_site[circuit]
            cable = self._site_cable[site]
            software = self._device_software[device]
            for element, kind in (
                (circuit, KIND_CIRCUIT),
                (site, KIND_SITE),
                (cable, KIND_CABLE),
                (software, KIND_SOFTWARE),
            ):
                kinds.setdefault(element, kind)
                grouped.setdefault(element, []).append(device)
        for element, devices in grouped.items():
            members[element] = frozenset(devices)
        self._members = members
        self._kinds = kinds

    # -- introspection ---------------------------------------------------

    @property
    def devices(self) -> Tuple[str, ...]:
        """All device names, sorted."""
        return tuple(sorted(self._device_circuit))

    @property
    def elements(self) -> Tuple[str, ...]:
        """All element ids (devices included), sorted."""
        return tuple(sorted(self._kinds))

    def __contains__(self, element: str) -> bool:
        return element in self._kinds

    def __len__(self) -> int:
        return len(self._device_circuit)

    def kind(self, element: str) -> str:
        """The ``KIND_*`` of an element id."""
        try:
            return self._kinds[element]
        except KeyError:
            raise TopologyError(f"unknown element: {element!r}")

    def hops(self, element: str) -> int:
        """Edge count from an element down to one covered device."""
        return _ELEMENT_HOPS[self.kind(element)]

    def covered(self, element: str) -> frozenset:
        """The devices an element covers (itself, for a device)."""
        try:
            return self._members[element]
        except KeyError:
            raise TopologyError(f"unknown element: {element!r}")

    def ancestry(self, device: str) -> Tuple[str, ...]:
        """Elements covering a device, nearest first.

        The chain is ``(device, circuit, software, site, cable)`` —
        physical parents interleaved with the software cohort in
        increasing hop order, so a lowest-common-ancestor scan can
        simply take the first hit.
        """
        try:
            circuit = self._device_circuit[device]
        except KeyError:
            raise TopologyError(f"unknown device: {device!r}")
        site = self._circuit_site[circuit]
        return (
            device,
            circuit,
            self._device_software[device],
            site,
            self._site_cable[site],
        )

    def common_elements(
        self, devices: Iterable[str]
    ) -> Tuple[str, ...]:
        """Elements covering *every* given device, nearest first.

        Order follows the first device's ancestry (hop order, ties
        physical-before-software as laid out by :meth:`ancestry`), so
        the first entry is a lowest common ancestor.  Empty when the
        devices share nothing (independent outages).
        """
        ordered = list(devices)
        if not ordered:
            return ()
        chain = self.ancestry(ordered[0])
        rest = ordered[1:]
        return tuple(
            element
            for element in chain
            if all(d in self._members[element] for d in rest)
        )

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Versioned JSON-safe description (see :meth:`from_dict`)."""
        return {
            "version": TOPOLOGY_VERSION,
            "device_circuit": dict(self._device_circuit),
            "circuit_site": dict(self._circuit_site),
            "site_cable": dict(self._site_cable),
            "device_software": dict(self._device_software),
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "FleetTopology":
        """Validate and rebuild a :meth:`to_dict` description."""
        version = raw.get("version")
        if version != TOPOLOGY_VERSION:
            raise TopologyError(
                f"topology version {version!r} is not supported "
                f"(expected {TOPOLOGY_VERSION})"
            )
        try:
            return cls(
                device_circuit=dict(raw["device_circuit"]),
                circuit_site=dict(raw["circuit_site"]),
                site_cable=dict(raw["site_cable"]),
                device_software=dict(raw["device_software"]),
            )
        except KeyError as error:
            raise TopologyError(f"missing topology key: {error}")

    def save(self, path: Union[str, pathlib.Path]) -> None:
        """Write the topology as JSON (atomic same-directory rename)."""
        target = pathlib.Path(path)
        tmp = target.with_name(target.name + ".tmp")
        try:
            tmp.write_text(
                json.dumps(self.to_dict(), indent=2, sort_keys=True)
                + "\n"
            )
            os.replace(tmp, target)
        finally:
            if tmp.exists():  # pragma: no cover - error path
                tmp.unlink()

    @classmethod
    def load(
        cls, path: Union[str, pathlib.Path]
    ) -> "FleetTopology":
        """Read a topology written by :meth:`save`."""
        try:
            raw = json.loads(pathlib.Path(path).read_text())
        except (OSError, ValueError) as error:
            raise TopologyError(f"cannot read topology: {error}")
        return cls.from_dict(raw)


def cause_kind_for(
    topology: Optional[FleetTopology], element: str
) -> str:
    """Map an element to its RCA cause-taxonomy kind.

    With no topology every element is treated as a device (the
    per-device attribution fallback).
    """
    if topology is None or element not in topology:
        return KIND_DEVICE
    return topology.kind(element)


__all__ = [
    "FleetTopology",
    "TopologyError",
    "TOPOLOGY_VERSION",
    "KIND_CABLE",
    "KIND_CIRCUIT",
    "KIND_DEVICE",
    "KIND_SITE",
    "KIND_SOFTWARE",
    "cause_kind_for",
]
