"""Fleet topology: shared-infrastructure graph over the vPE fleet.

See :mod:`repro.topology.graph` for the graph model and
:mod:`repro.topology.generate` for the deterministic synthesizer.
"""

from repro.topology.generate import (
    TOPOLOGY_SEED_TAG,
    TopologyConfig,
    generate_topology,
)
from repro.topology.graph import (
    KIND_CABLE,
    KIND_CIRCUIT,
    KIND_DEVICE,
    KIND_SITE,
    KIND_SOFTWARE,
    TOPOLOGY_VERSION,
    FleetTopology,
    TopologyError,
    cause_kind_for,
)

__all__ = [
    "FleetTopology",
    "TopologyError",
    "TopologyConfig",
    "generate_topology",
    "cause_kind_for",
    "TOPOLOGY_SEED_TAG",
    "TOPOLOGY_VERSION",
    "KIND_CABLE",
    "KIND_CIRCUIT",
    "KIND_DEVICE",
    "KIND_SITE",
    "KIND_SOFTWARE",
]
