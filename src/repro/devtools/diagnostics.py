"""Diagnostic records emitted by the invariant checks.

A :class:`Diagnostic` is one finding anchored to a file position; the
JSON exporter is the schema the CI ``invariant-check`` job uploads as
its artifact, so its shape is pinned by ``tests/devtools``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, List, Sequence

#: Schema version of :func:`diagnostics_to_json` output.
JSON_SCHEMA_VERSION = 1


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: a code anchored to a source position.

    Attributes:
        path: file the finding is in (as given to the analyzer).
        line: 1-based line of the offending node.
        col: 0-based column of the offending node.
        code: diagnostic code (``RPRnnn``).
        message: human-readable description of this occurrence.
    """

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        """The one-line ``path:line:col: CODE message`` rendering."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def diagnostics_to_json(
    diagnostics: Sequence[Diagnostic],
    n_files: int,
    n_suppressed: int,
    indent: int = 2,
) -> str:
    """Serialize a run's findings as the CI artifact document.

    The document carries a schema version, per-code counts and the
    individual findings sorted by position, so diffs between uploaded
    artifacts are stable and reviewable.
    """
    ordered = sorted(diagnostics)
    by_code: Dict[str, int] = {}
    for diagnostic in ordered:
        by_code[diagnostic.code] = by_code.get(diagnostic.code, 0) + 1
    document = {
        "version": JSON_SCHEMA_VERSION,
        "counts": {
            "files": n_files,
            "diagnostics": len(ordered),
            "suppressed": n_suppressed,
            "by_code": by_code,
        },
        "diagnostics": [asdict(diagnostic) for diagnostic in ordered],
    }
    return json.dumps(document, indent=indent)


def format_text(diagnostics: Sequence[Diagnostic]) -> List[str]:
    """Sorted one-line renderings of ``diagnostics``."""
    return [diagnostic.format() for diagnostic in sorted(diagnostics)]
