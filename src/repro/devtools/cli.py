"""``python -m repro check``: the invariant checker's command line.

Exit codes follow linter convention: 0 clean, 1 diagnostics found,
2 usage error (argparse).  ``--format json`` emits the artifact schema
the CI ``invariant-check`` job uploads, ``--format sarif`` the SARIF
2.1.0 log code-scanning UIs ingest; ``--list`` prints every registered
code with its one-line rationale (the README codes table is tested
against this output).  Warm runs reuse the on-disk project-index
cache; ``--no-cache`` forces a full re-parse.
"""

from __future__ import annotations

import argparse
import pathlib
from typing import Dict, List

from repro.devtools.analyzer import META_RATIONALES, run_check
from repro.devtools.base import all_checks, all_project_checks
from repro.devtools.cache import default_cache_dir
from repro.devtools.diagnostics import diagnostics_to_json, format_text
from repro.devtools.sarif import diagnostics_to_sarif


def code_rationales() -> Dict[str, str]:
    """Every registered code mapped to its one-line rationale.

    Project checks register after per-file checks so a shared code
    (interprocedural RPR201/202 reuse the hot-path codes) keeps the
    per-file rationale — the two phases enforce one invariant.
    """
    rationales = dict(META_RATIONALES)
    for check_class in all_project_checks():
        rationales[check_class.code] = check_class.rationale
    for check_class in all_checks():
        rationales[check_class.code] = check_class.rationale
    return dict(sorted(rationales.items()))


def list_codes() -> str:
    """The ``--list`` rendering: one ``CODE  rationale`` line per code."""
    lines = [
        f"{code}  {rationale}"
        for code, rationale in code_rationales().items()
    ]
    return "\n".join(lines)


def _split_codes(raw: List[str]) -> List[str]:
    codes: List[str] = []
    for chunk in raw:
        codes.extend(
            code.strip().upper() for code in chunk.split(",") if code.strip()
        )
    for code in codes:
        # Prefix filters must at least head towards a real code;
        # silently selecting nothing would report a clean run that
        # checked nothing.
        if not any(known.startswith(code) for known in code_rationales()):
            raise ValueError(f"unknown code or prefix: {code}")
    return codes


def add_check_parser(sub: "argparse._SubParsersAction") -> None:
    """Register the ``check`` subcommand on the repro CLI parser."""
    parser = sub.add_parser(
        "check",
        help="run the static invariant checks (RPR diagnostics)",
        description=(
            "AST-based invariant checker: determinism (RPR1xx), "
            "hot-path allocation (RPR2xx, including interprocedural "
            "reachability), telemetry discipline (RPR3xx), API "
            "hygiene (RPR4xx), fork/process safety (RPR5xx), "
            "resource/exception safety (RPR6xx), protocol-version "
            "drift (RPR7xx)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to check (default: src)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="CODES",
        help="comma-separated code prefixes to enable (e.g. RPR1,RPR30)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=None,
        metavar="CODES",
        help="comma-separated code prefixes to disable",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="diagnostic output format",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="write the report to a file instead of stdout",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="re-parse every file instead of using the index cache",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_codes",
        help="print the registered codes with their rationales and exit",
    )
    parser.set_defaults(func=cmd_check)


def cmd_check(args: argparse.Namespace) -> int:
    """Entry point for ``python -m repro check``."""
    if args.list_codes:
        print(list_codes())
        return 0
    try:
        select = _split_codes(args.select) if args.select else None
        ignore = _split_codes(args.ignore) if args.ignore else None
    except ValueError as error:
        print(f"repro check: {error}")
        return 2
    cache_dir = None if args.no_cache else default_cache_dir()
    try:
        report = run_check(
            args.paths, select=select, ignore=ignore, cache_dir=cache_dir
        )
    except FileNotFoundError as error:
        print(f"repro check: {error}")
        return 2
    diagnostics = report.diagnostics
    if args.format == "json":
        rendered = diagnostics_to_json(
            diagnostics, report.n_files, report.n_suppressed
        )
    elif args.format == "sarif":
        rendered = diagnostics_to_sarif(diagnostics, code_rationales())
    else:
        lines = format_text(diagnostics)
        lines.append(
            f"checked {report.n_files} files "
            f"({report.files_cached} cached): "
            f"{len(diagnostics)} diagnostics, "
            f"{report.n_suppressed} suppressed"
        )
        rendered = "\n".join(lines)
    if args.out:
        pathlib.Path(args.out).write_text(rendered + "\n")
        print(
            f"wrote {len(diagnostics)} diagnostics "
            f"({report.n_files} files) to {args.out}"
        )
    else:
        print(rendered)
    return 1 if diagnostics else 0
