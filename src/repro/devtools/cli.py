"""``python -m repro check``: the invariant checker's command line.

Exit codes follow linter convention: 0 clean, 1 diagnostics found,
2 usage error (argparse).  ``--format json`` emits the artifact schema
the CI ``invariant-check`` job uploads; ``--list`` prints every
registered code with its one-line rationale (the README codes table is
tested against this output).
"""

from __future__ import annotations

import argparse
import pathlib
from typing import Dict, List

from repro.devtools.analyzer import META_RATIONALES, check_paths
from repro.devtools.base import all_checks
from repro.devtools.diagnostics import diagnostics_to_json, format_text


def code_rationales() -> Dict[str, str]:
    """Every registered code mapped to its one-line rationale."""
    rationales = dict(META_RATIONALES)
    for check_class in all_checks():
        rationales[check_class.code] = check_class.rationale
    return dict(sorted(rationales.items()))


def list_codes() -> str:
    """The ``--list`` rendering: one ``CODE  rationale`` line per code."""
    lines = [
        f"{code}  {rationale}"
        for code, rationale in code_rationales().items()
    ]
    return "\n".join(lines)


def _split_codes(raw: List[str]) -> List[str]:
    codes: List[str] = []
    for chunk in raw:
        codes.extend(
            code.strip().upper() for code in chunk.split(",") if code.strip()
        )
    for code in codes:
        # Prefix filters must at least head towards a real code;
        # silently selecting nothing would report a clean run that
        # checked nothing.
        if not any(known.startswith(code) for known in code_rationales()):
            raise ValueError(f"unknown code or prefix: {code}")
    return codes


def add_check_parser(sub: "argparse._SubParsersAction") -> None:
    """Register the ``check`` subcommand on the repro CLI parser."""
    parser = sub.add_parser(
        "check",
        help="run the static invariant checks (RPR diagnostics)",
        description=(
            "AST-based invariant checker: determinism (RPR1xx), "
            "hot-path allocation (RPR2xx), telemetry discipline "
            "(RPR3xx), API hygiene (RPR4xx)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to check (default: src)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="CODES",
        help="comma-separated code prefixes to enable (e.g. RPR1,RPR30)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=None,
        metavar="CODES",
        help="comma-separated code prefixes to disable",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="diagnostic output format",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="write the report to a file instead of stdout",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_codes",
        help="print the registered codes with their rationales and exit",
    )
    parser.set_defaults(func=cmd_check)


def cmd_check(args: argparse.Namespace) -> int:
    """Entry point for ``python -m repro check``."""
    if args.list_codes:
        print(list_codes())
        return 0
    try:
        select = _split_codes(args.select) if args.select else None
        ignore = _split_codes(args.ignore) if args.ignore else None
    except ValueError as error:
        print(f"repro check: {error}")
        return 2
    try:
        diagnostics, n_files, n_suppressed = check_paths(
            args.paths, select=select, ignore=ignore
        )
    except FileNotFoundError as error:
        print(f"repro check: {error}")
        return 2
    if args.format == "json":
        rendered = diagnostics_to_json(diagnostics, n_files, n_suppressed)
    else:
        lines = format_text(diagnostics)
        lines.append(
            f"checked {n_files} files: {len(diagnostics)} diagnostics, "
            f"{n_suppressed} suppressed"
        )
        rendered = "\n".join(lines)
    if args.out:
        pathlib.Path(args.out).write_text(rendered + "\n")
        print(
            f"wrote {len(diagnostics)} diagnostics "
            f"({n_files} files) to {args.out}"
        )
    else:
        print(rendered)
    return 1 if diagnostics else 0
