"""Whole-program index: symbol table, import graph, call graph.

The per-file checks see one AST at a time; the failure modes PRs 5-8
introduced (forked workers touching module state, teardown paths that
leak a lock when an earlier close raises, writer/reader protocol
constants drifting apart) are *cross-module*.  This module parses the
tree once into JSON-serializable :class:`ModuleSummary` records and
assembles them into a :class:`ProjectIndex` that the project-level
checks (RPR5xx/6xx/7xx and the interprocedural RPR2xx upgrade) query.

Summaries deliberately carry *facts*, not ASTs: the index cache
(:mod:`repro.devtools.cache`) can then rehydrate an unchanged file
from JSON without re-parsing it.  Name resolution (imports, ``self``
methods, locally-typed receivers) happens at query time against the
assembled index, so a summary never depends on other files' content.
"""

from __future__ import annotations

import ast
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.devtools.config import CheckConfig


def _numpy_allocators() -> Tuple[frozenset, Tuple[str, ...]]:
    """The per-file RPR201 allocator set, imported lazily.

    ``checks.hotpath`` is the single source of truth for which NumPy
    calls allocate; importing it at module scope would cycle through
    the checks package (whose project checks import this module), so
    the lookup defers to first use.
    """
    from repro.devtools.checks.hotpath import (
        ALLOCATING_NUMPY_CALLS,
        _NUMPY_ALIASES,
    )

    return ALLOCATING_NUMPY_CALLS, _NUMPY_ALIASES

#: Method names that mutate a container in place.
_MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "add", "update", "setdefault",
        "pop", "popitem", "remove", "discard", "clear", "sort",
        "appendleft", "extendleft",
    }
)

#: Constructors whose module-level result is mutable shared state.
_MUTABLE_CONSTRUCTORS = frozenset(
    {"dict", "list", "set", "defaultdict", "OrderedDict", "deque", "Counter"}
)

#: Callable base names that start a thread in this process.
_THREAD_SPAWNERS = frozenset({"Thread", "ThreadPoolExecutor"})

#: Callable base names / dotted paths that fork a process.
_PROCESS_SPAWNERS = frozenset({"Process", "ProcessPoolExecutor"})

#: Release-method names recorded as candidate release events; the
#: RPR6xx checks filter them by resolved receiver type.
_RELEASE_METHODS = frozenset({"close", "release"})


def _dotted(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` attribute chains as name tuples (None otherwise)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _annotation_class(node: Optional[ast.AST]) -> Optional[str]:
    """The class name a parameter annotation pins (None if opaque).

    Handles ``Name``, ``mod.Name``, string annotations and one level
    of ``Optional[...]`` — the shapes this codebase actually uses.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.strip("'\"")
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        dotted = _dotted(node)
        return ".".join(dotted) if dotted else None
    if isinstance(node, ast.Subscript):
        base = node.value
        if isinstance(base, ast.Name) and base.id == "Optional":
            inner = node.slice
            if isinstance(inner, ast.Index):  # pragma: no cover (py<3.9)
                inner = inner.value
            return _annotation_class(inner)
    return None


def module_name_for_path(path: str) -> str:
    """Dotted module name inferred from a file path.

    Anything after a ``src/`` component maps onto the package tree;
    other files (fixtures, scripts) use their stem.
    """
    normalized = path.replace("\\", "/")
    parts = [part for part in normalized.split("/") if part]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else "module"


class FunctionSummary:
    """Facts about one function, serializable for the index cache."""

    __slots__ = (
        "name", "qualname", "class_name", "lineno", "col",
        "local_types", "calls", "allocations", "global_accesses",
        "module_attr_accesses", "thread_spawns", "process_spawns",
        "pipe_sends", "resource_events", "replace_sites",
        "version_key_sites",
    )

    def __init__(self, name: str, class_name: Optional[str], lineno: int, col: int) -> None:
        self.name = name
        self.class_name = class_name
        self.qualname = f"{class_name}.{name}" if class_name else name
        self.lineno = lineno
        self.col = col
        #: local var -> lexical class reference ("WriteAheadLog",
        #: "mod.Class"), from annotations and constructor assignments.
        self.local_types: Dict[str, str] = {}
        #: [{dotted, lineno, col, in_data_loop}]
        self.calls: List[Dict[str, Any]] = []
        #: [{kind: "numpy"|"comprehension", detail, lineno, col}]
        self.allocations: List[Dict[str, Any]] = []
        #: [{name, kind: "read"|"write", lineno, col}] over this
        #: module's own mutable globals.
        self.global_accesses: List[Dict[str, Any]] = []
        #: [{alias, attr, kind, lineno, col}] candidate accesses to
        #: other modules' globals via an import alias.
        self.module_attr_accesses: List[Dict[str, Any]] = []
        self.thread_spawns: List[Dict[str, Any]] = []
        #: [{dotted, lineno, col, arg_classes: [classref...]}]
        self.process_spawns: List[Dict[str, Any]] = []
        #: [{lineno, col, arg_class}]
        self.pipe_sends: List[Dict[str, Any]] = []
        #: Ordered events: {kind: "acquire"|"release"|"call", ...}
        self.resource_events: List[Dict[str, Any]] = []
        #: [{lineno, col, tmp_kind}] for os.replace/Path.replace calls.
        self.replace_sites: List[Dict[str, Any]] = []
        #: [{context: "dict"|"compare", lineno, col, is_literal}]
        self.version_key_sites: List[Dict[str, Any]] = []

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (qualname is re-derived on load)."""
        return {slot: getattr(self, slot) for slot in self.__slots__ if slot != "qualname"}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FunctionSummary":
        """Rehydrate a summary produced by :meth:`to_dict`."""
        summary = cls(
            data["name"], data["class_name"], data["lineno"], data["col"]
        )
        for slot in cls.__slots__:
            if slot in ("name", "qualname", "class_name", "lineno", "col"):
                continue
            setattr(summary, slot, data[slot])
        return summary


class ModuleSummary:
    """Facts about one module, serializable for the index cache."""

    __slots__ = (
        "path", "module", "is_hot_path", "imports", "constants",
        "protocol_constants", "mutable_globals", "classes", "functions",
    )

    def __init__(self, path: str, module: str, is_hot_path: bool) -> None:
        self.path = path
        self.module = module
        self.is_hot_path = is_hot_path
        #: local name -> dotted target ("np" -> "numpy").
        self.imports: Dict[str, str] = {}
        #: module-level NAME -> literal (constant propagation input).
        self.constants: Dict[str, Any] = {}
        #: [{name, value_repr, lineno, col, scope}] for *_MAGIC /
        #: *_VERSION definitions at module and class scope.
        self.protocol_constants: List[Dict[str, Any]] = []
        #: name -> {lineno, col, empty} for module-level mutable state.
        self.mutable_globals: Dict[str, Dict[str, Any]] = {}
        #: class name -> {methods: [..], bases: [..], attr_types: {..}}
        self.classes: Dict[str, Dict[str, Any]] = {}
        #: local qualname ("func", "Class.method") -> FunctionSummary.
        self.functions: Dict[str, FunctionSummary] = {}

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form for the index cache."""
        return {
            "path": self.path,
            "module": self.module,
            "is_hot_path": self.is_hot_path,
            "imports": self.imports,
            "constants": self.constants,
            "protocol_constants": self.protocol_constants,
            "mutable_globals": self.mutable_globals,
            "classes": self.classes,
            "functions": {
                key: summary.to_dict()
                for key, summary in self.functions.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ModuleSummary":
        """Rehydrate a summary produced by :meth:`to_dict`."""
        summary = cls(data["path"], data["module"], data["is_hot_path"])
        summary.imports = data["imports"]
        summary.constants = data["constants"]
        summary.protocol_constants = data["protocol_constants"]
        summary.mutable_globals = data["mutable_globals"]
        summary.classes = data["classes"]
        summary.functions = {
            key: FunctionSummary.from_dict(raw)
            for key, raw in data["functions"].items()
        }
        return summary


# -- summary construction --------------------------------------------------


class _ParentMap:
    """Child -> parent links for one tree (loop/finally ancestry)."""

    def __init__(self, tree: ast.AST) -> None:
        self.parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent

    def in_data_loop(self, node: ast.AST, stop: ast.AST) -> bool:
        """Inside a non-constant-trip loop *body* below ``stop``."""
        child = node
        parent = self.parents.get(child)
        while parent is not None and child is not stop:
            if isinstance(parent, (ast.For, ast.While)) and (
                any(child is stmt for stmt in parent.body)
                or any(child is stmt for stmt in parent.orelse)
            ):
                if not (
                    isinstance(parent, ast.For)
                    and isinstance(parent.iter, (ast.Tuple, ast.List))
                ):
                    return True
            child = parent
            parent = self.parents.get(child)
        return False

    def in_finally(self, node: ast.AST, stop: ast.AST) -> bool:
        """Whether ``node`` sits (transitively) in a ``finally`` body."""
        child = node
        parent = self.parents.get(child)
        while parent is not None and child is not stop:
            if isinstance(parent, ast.Try) and any(
                child is stmt for stmt in parent.finalbody
            ):
                return True
            child = parent
            parent = self.parents.get(child)
        return False

    def in_with(self, node: ast.AST, stop: ast.AST) -> bool:
        child = node
        parent = self.parents.get(child)
        while parent is not None and child is not stop:
            if isinstance(parent, ast.With):
                return True
            child = parent
            parent = self.parents.get(child)
        return False


def _is_mutable_initializer(node: ast.AST) -> Optional[bool]:
    """None if not mutable; else whether the initializer is *empty*.

    Empty containers at module scope are runtime-filled caches (the
    fork-divergence hazard); populated displays are lookup tables.
    """
    if isinstance(node, (ast.Dict,)):
        return len(node.keys) == 0
    if isinstance(node, (ast.List, ast.Set)):
        return len(node.elts) == 0
    if isinstance(node, ast.Call):
        dotted = _dotted(node.func)
        if dotted and dotted[-1] in _MUTABLE_CONSTRUCTORS:
            return len(node.args) == 0 and len(node.keywords) == 0
    return None


def _literal_value(node: ast.AST) -> Optional[Any]:
    """The literal behind simple constant expressions (None if none)."""
    if isinstance(node, ast.Constant) and isinstance(
        node.value, (int, float, str, bytes, bool)
    ):
        return node.value
    return None


def _call_class_ref(node: ast.AST) -> Optional[str]:
    """Class reference a call expression constructs, lexically.

    ``ClassName(...)`` and ``ClassName.open(...)`` / ``.acquire(...)``
    both pin the local to ``ClassName``; ``open(...)`` pins the
    builtin file type, named ``"open"`` in the lifecycle table.
    Conditional expressions take whichever arm constructs.
    """
    if isinstance(node, ast.IfExp):
        return _call_class_ref(node.body) or _call_class_ref(node.orelse)
    if not isinstance(node, ast.Call):
        return None
    dotted = _dotted(node.func)
    if dotted is None:
        return None
    if dotted[-1] in ("open", "acquire") and len(dotted) > 1:
        dotted = dotted[:-1]
    return ".".join(dotted)


class _FunctionScanner:
    """Collects one function's :class:`FunctionSummary` facts."""

    def __init__(
        self,
        node: ast.AST,
        class_name: Optional[str],
        module: "ModuleSummary",
        parents: _ParentMap,
        config: CheckConfig,
    ) -> None:
        self.node = node
        self.module = module
        self.parents = parents
        self.config = config
        self.summary = FunctionSummary(
            node.name, class_name, node.lineno, node.col_offset
        )
        self.locals: Set[str] = set()
        self.globals_declared: Set[str] = set()

    def scan(self) -> FunctionSummary:
        self._bind_parameters()
        self._collect_bindings()
        for child in ast.walk(self.node):
            if child is self.node:
                continue
            if isinstance(child, ast.Call):
                self._scan_call(child)
            elif isinstance(
                child, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                self.summary.allocations.append(
                    {
                        "kind": "comprehension",
                        "detail": type(child).__name__,
                        "lineno": child.lineno,
                        "col": child.col_offset,
                    }
                )
            elif isinstance(child, ast.Dict):
                self._scan_dict_display(child)
            elif isinstance(child, ast.Compare):
                self._scan_compare(child)
            elif isinstance(child, ast.Name):
                self._scan_name(child)
            elif isinstance(child, (ast.Subscript, ast.Attribute)):
                self._scan_store_target(child)
        self._scan_resource_events()
        return self.summary

    # -- bindings --------------------------------------------------------

    def _bind_parameters(self) -> None:
        arguments = self.node.args
        for arg in (
            list(arguments.posonlyargs)
            + list(arguments.args)
            + list(arguments.kwonlyargs)
            + ([arguments.vararg] if arguments.vararg else [])
            + ([arguments.kwarg] if arguments.kwarg else [])
        ):
            self.locals.add(arg.arg)
            ref = _annotation_class(arg.annotation)
            if ref is not None:
                self.summary.local_types[arg.arg] = ref

    def _collect_bindings(self) -> None:
        for child in ast.walk(self.node):
            if isinstance(child, ast.Global):
                self.globals_declared.update(child.names)
            elif isinstance(child, ast.Assign):
                for target in child.targets:
                    self._bind_target(target, child.value)
            elif isinstance(child, ast.AnnAssign) and child.value is not None:
                self._bind_target(child.target, child.value)
            elif isinstance(child, (ast.For, ast.comprehension)):
                self._bind_target(child.target, None)
            elif isinstance(child, ast.withitem) and child.optional_vars:
                context_call = child.context_expr
                self._bind_target(child.optional_vars, context_call)
            elif isinstance(child, ast.ExceptHandler) and child.name:
                self.locals.add(child.name)
            elif isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ) and child is not self.node:
                self.locals.add(child.name)

    def _bind_target(self, target: ast.AST, value: Optional[ast.AST]) -> None:
        if isinstance(target, ast.Name):
            if target.id not in self.globals_declared:
                self.locals.add(target.id)
            if value is not None:
                ref = _call_class_ref(value)
                if ref is not None:
                    self.summary.local_types[target.id] = ref
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, None)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, None)

    # -- per-node scans --------------------------------------------------

    def _scan_call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is None:
            return
        self.summary.calls.append(
            {
                "dotted": list(dotted),
                "lineno": node.lineno,
                "col": node.col_offset,
                "in_data_loop": self.parents.in_data_loop(node, self.node),
            }
        )
        # Allocating NumPy constructor (no out=): hot-path fact.
        allocating_calls, numpy_aliases = _numpy_allocators()
        if (
            len(dotted) == 2
            and dotted[0] in numpy_aliases
            and dotted[1] in allocating_calls
            and not any(keyword.arg == "out" for keyword in node.keywords)
        ):
            self.summary.allocations.append(
                {
                    "kind": "numpy",
                    "detail": f"np.{dotted[1]}",
                    "lineno": node.lineno,
                    "col": node.col_offset,
                }
            )
        base = dotted[-1]
        if base in _THREAD_SPAWNERS:
            self.summary.thread_spawns.append(
                {
                    "dotted": list(dotted),
                    "lineno": node.lineno,
                    "col": node.col_offset,
                }
            )
        if base in _PROCESS_SPAWNERS or dotted in (("os", "fork"),):
            self.summary.process_spawns.append(
                {
                    "dotted": list(dotted),
                    "lineno": node.lineno,
                    "col": node.col_offset,
                    "arg_classes": self._spawn_arg_classes(node),
                }
            )
        if base == "send" and len(dotted) >= 2 and len(node.args) == 1:
            arg_class = self._value_class(node.args[0])
            if arg_class is not None:
                self.summary.pipe_sends.append(
                    {
                        "lineno": node.lineno,
                        "col": node.col_offset,
                        "arg_class": arg_class,
                    }
                )
        if base == "replace" and len(node.args) >= 2:
            # os.replace(tmp, dst) — Path.replace is single-arg and
            # checked via its receiver below.
            self.summary.replace_sites.append(
                {
                    "lineno": node.lineno,
                    "col": node.col_offset,
                    "tmp_kind": self._tmp_kind(node.args[0]),
                }
            )
        if base in _MUTATOR_METHODS and len(dotted) >= 2:
            self._record_mutation(dotted[:-1], node)

    def _spawn_arg_classes(self, node: ast.Call) -> List[str]:
        classes: List[str] = []
        for keyword in node.keywords:
            if keyword.arg == "args" and isinstance(
                keyword.value, (ast.Tuple, ast.List)
            ):
                for element in keyword.value.elts:
                    ref = self._value_class(element)
                    if ref is not None:
                        classes.append(ref)
        return classes

    def _value_class(self, node: ast.AST) -> Optional[str]:
        """Class reference of an expression's value, if inferable."""
        if isinstance(node, ast.Call):
            return _call_class_ref(node)
        if isinstance(node, ast.Name):
            return self.summary.local_types.get(node.id)
        return None

    def _tmp_kind(self, node: ast.AST) -> str:
        """Classify the temp-file argument of an ``os.replace`` call."""
        if isinstance(node, ast.Attribute):
            node = node.value  # handle.name -> classify handle
        if isinstance(node, ast.Name):
            assigned = self.summary.local_types.get(node.id)
            if assigned is not None:
                base = assigned.split(".")[-1]
                if base in ("NamedTemporaryFile", "mktemp", "mkstemp", "TemporaryFile"):
                    return "tempfile_default"
            origin = self._name_origins.get(node.id)
            if origin is not None:
                return origin
            return "unknown"
        return self._classify_tmp_expr(node)

    @property
    def _name_origins(self) -> Dict[str, str]:
        origins: Dict[str, str] = {}
        for child in ast.walk(self.node):
            if isinstance(child, ast.Assign) and len(child.targets) == 1:
                target = child.targets[0]
                if isinstance(target, ast.Name):
                    origins[target.id] = self._classify_tmp_expr(child.value)
        return origins

    def _classify_tmp_expr(self, node: ast.AST) -> str:
        constant = _literal_value(node)
        if isinstance(constant, str):
            return (
                "foreign_literal"
                if constant.startswith(("/tmp", "/var/tmp"))
                else "unknown"
            )
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted is not None:
                base = dotted[-1]
                if base in ("with_name", "with_suffix"):
                    return "same_dir"
                if dotted[0] == "tempfile" or base in (
                    "NamedTemporaryFile", "mktemp", "mkstemp", "TemporaryFile"
                ):
                    if any(keyword.arg == "dir" for keyword in node.keywords):
                        return "same_dir"
                    return "tempfile_default"
        if isinstance(node, ast.BinOp):
            # path.parent / "name" and str concatenation of a path
            # with a suffix both stay in the destination directory.
            return "same_dir"
        if isinstance(node, ast.JoinedStr):
            return "unknown"
        if isinstance(node, ast.Subscript):
            value = node.value
            if isinstance(value, ast.Call):
                dotted = _dotted(value.func)
                if dotted is not None and dotted[-1] == "mkstemp":
                    if not any(k.arg == "dir" for k in value.keywords):
                        return "tempfile_default"
        return "unknown"

    def _record_mutation(self, receiver: Tuple[str, ...], node: ast.AST) -> None:
        if len(receiver) == 1:
            name = receiver[0]
            if name in self.locals or name in self.summary.local_types:
                return
            if name in self.module.mutable_globals or name in self.globals_declared:
                self.summary.global_accesses.append(
                    {
                        "name": name,
                        "kind": "write",
                        "lineno": node.lineno,
                        "col": node.col_offset,
                    }
                )
        elif len(receiver) == 2 and receiver[0] in self.module.imports:
            self.summary.module_attr_accesses.append(
                {
                    "alias": receiver[0],
                    "attr": receiver[1],
                    "kind": "write",
                    "lineno": node.lineno,
                    "col": node.col_offset,
                }
            )

    def _scan_name(self, node: ast.Name) -> None:
        name = node.id
        if name in self.locals:
            return
        if name not in self.module.mutable_globals:
            return
        if isinstance(node.ctx, ast.Store) or isinstance(node.ctx, ast.Del):
            kind = "write"
        else:
            parent = self.parents.parents.get(node)
            if isinstance(parent, (ast.Subscript, ast.Attribute)) and isinstance(
                getattr(parent, "ctx", None), (ast.Store, ast.Del)
            ):
                kind = "write"
            elif isinstance(parent, ast.AugAssign) and parent.target is node:
                kind = "write"
            else:
                kind = "read"
        self.summary.global_accesses.append(
            {
                "name": name,
                "kind": kind,
                "lineno": node.lineno,
                "col": node.col_offset,
            }
        )

    def _scan_store_target(self, node: ast.AST) -> None:
        """Subscript/attribute stores through an import alias."""
        if not isinstance(getattr(node, "ctx", None), (ast.Store, ast.Del)):
            return
        base = node.value if isinstance(node, (ast.Subscript, ast.Attribute)) else None
        dotted = _dotted(base) if base is not None else None
        if (
            dotted is not None
            and len(dotted) == 2
            and dotted[0] in self.module.imports
            and dotted[0] not in self.locals
        ):
            self.summary.module_attr_accesses.append(
                {
                    "alias": dotted[0],
                    "attr": dotted[1],
                    "kind": "write",
                    "lineno": node.lineno,
                    "col": node.col_offset,
                }
            )

    def _scan_dict_display(self, node: ast.Dict) -> None:
        for key, value in zip(node.keys, node.values):
            if (
                isinstance(key, ast.Constant)
                and key.value == "version"
                and value is not None
            ):
                self.summary.version_key_sites.append(
                    {
                        "context": "dict",
                        "lineno": value.lineno,
                        "col": value.col_offset,
                        "is_literal": _literal_value(value) is not None,
                    }
                )

    def _scan_compare(self, node: ast.Compare) -> None:
        if len(node.comparators) != 1 or not isinstance(
            node.ops[0], (ast.Eq, ast.NotEq)
        ):
            return
        sides = (node.left, node.comparators[0])
        if not any(self._is_version_lookup(side) for side in sides):
            return
        for side in sides:
            if _literal_value(side) is not None:
                self.summary.version_key_sites.append(
                    {
                        "context": "compare",
                        "lineno": side.lineno,
                        "col": side.col_offset,
                        "is_literal": True,
                    }
                )

    def _is_version_lookup(self, node: ast.AST) -> bool:
        """``x["version"]`` / ``x.get("version")`` or a local bound to one."""
        if isinstance(node, ast.Subscript):
            key = node.slice
            if isinstance(key, ast.Index):  # pragma: no cover (py<3.9)
                key = key.value
            return isinstance(key, ast.Constant) and key.value == "version"
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            return (
                dotted is not None
                and dotted[-1] == "get"
                and len(node.args) >= 1
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value == "version"
            )
        if isinstance(node, ast.Name):
            return node.id in self._version_locals
        return False

    @property
    def _version_locals(self) -> Set[str]:
        names: Set[str] = set()
        for child in ast.walk(self.node):
            if isinstance(child, ast.Assign) and len(child.targets) == 1:
                target = child.targets[0]
                if isinstance(target, ast.Name) and self._is_version_lookup_expr(
                    child.value
                ):
                    names.add(target.id)
        return names

    def _is_version_lookup_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Subscript, ast.Call)):
            try:
                return self._is_version_lookup(node)
            except RecursionError:  # pragma: no cover
                return False
        return False

    # -- resource events -------------------------------------------------

    def _scan_resource_events(self) -> None:
        events: List[Dict[str, Any]] = []
        body = getattr(self.node, "body", [])
        for statement in body:
            self._scan_statement_events(statement, events)
        events.sort(key=lambda event: (event["lineno"], event["col"]))
        self.summary.resource_events = events

    def _scan_statement_events(
        self, statement: ast.stmt, events: List[Dict[str, Any]]
    ) -> None:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        recorded_calls: Set[int] = set()
        for node in ast.walk(statement):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                ref = _call_class_ref(node.value)
                if isinstance(target, ast.Name) and ref is not None:
                    events.append(
                        {
                            "kind": "acquire",
                            "var": target.id,
                            "cls": ref,
                            "lineno": node.lineno,
                            "col": node.col_offset,
                            "in_with": False,
                        }
                    )
                    recorded_calls.add(id(node.value))
            elif isinstance(node, ast.withitem):
                ref = _call_class_ref(node.context_expr)
                if ref is not None and isinstance(
                    node.optional_vars, (ast.Name, type(None))
                ):
                    var = (
                        node.optional_vars.id
                        if isinstance(node.optional_vars, ast.Name)
                        else "_"
                    )
                    events.append(
                        {
                            "kind": "acquire",
                            "var": var,
                            "cls": ref,
                            "lineno": node.context_expr.lineno,
                            "col": node.context_expr.col_offset,
                            "in_with": True,
                        }
                    )
                    recorded_calls.add(id(node.context_expr))
            elif isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if (
                    dotted is not None
                    and len(dotted) >= 2
                    and dotted[-1] in _RELEASE_METHODS
                ):
                    events.append(
                        {
                            "kind": "release",
                            "var": ".".join(dotted[:-1]),
                            "method": dotted[-1],
                            "lineno": node.lineno,
                            "col": node.col_offset,
                            "in_finally": self.parents.in_finally(
                                node, self.node
                            ),
                        }
                    )
                    recorded_calls.add(id(node))
                elif (
                    dotted is not None
                    and dotted[-1] == "acquire"
                    and len(dotted) == 2
                    and dotted[0] in self.summary.local_types
                ):
                    events.append(
                        {
                            "kind": "acquire",
                            "var": dotted[0],
                            "cls": self.summary.local_types[dotted[0]],
                            "lineno": node.lineno,
                            "col": node.col_offset,
                            "in_with": self.parents.in_with(node, self.node),
                        }
                    )
                    recorded_calls.add(id(node))
                elif id(node) not in recorded_calls:
                    events.append(
                        {
                            "kind": "call",
                            "lineno": node.lineno,
                            "col": node.col_offset,
                        }
                    )


def summarize_module(
    path: str, source: str, tree: ast.Module, config: CheckConfig
) -> ModuleSummary:
    """Build one module's :class:`ModuleSummary` from its parsed AST."""
    summary = ModuleSummary(
        path, module_name_for_path(path), config.is_hot_path(path, source)
    )
    parents = _ParentMap(tree)
    suffixes = tuple(config.protocol_constant_suffixes)

    def record_constant_targets(
        node: ast.stmt, scope: str
    ) -> None:
        targets: List[ast.AST] = []
        value: Optional[ast.AST] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            return
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            literal = _literal_value(value)
            if scope == "module" and literal is not None:
                summary.constants[name] = literal
            if (
                name.upper() == name
                and name.endswith(suffixes)
                and literal is not None
            ):
                summary.protocol_constants.append(
                    {
                        "name": name,
                        "value_repr": repr(literal),
                        "lineno": target.lineno,
                        "col": target.col_offset,
                        "scope": scope,
                    }
                )
            if scope == "module":
                empty = _is_mutable_initializer(value)
                if empty is not None and name != "__all__":
                    summary.mutable_globals[name] = {
                        "lineno": target.lineno,
                        "col": target.col_offset,
                        "empty": empty,
                    }

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                summary.imports[local] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname is None:
                    summary.imports[local] = alias.name.split(".")[0]
                    # Record full dotted path too for `a.b` usage.
                    summary.imports.setdefault(alias.name, alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue
            for alias in node.names:
                summary.imports[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )

    for node in tree.body:
        record_constant_targets(node, "module")

    def scan_function(
        node: ast.AST, class_name: Optional[str]
    ) -> None:
        scanner = _FunctionScanner(node, class_name, summary, parents, config)
        function = scanner.scan()
        summary.functions[function.qualname] = function

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scan_function(node, None)
        elif isinstance(node, ast.ClassDef):
            methods: List[str] = []
            bases: List[str] = []
            for base in node.bases:
                dotted = _dotted(base)
                if dotted is not None:
                    bases.append(".".join(dotted))
            attr_types: Dict[str, str] = {}
            for member in node.body:
                record_constant_targets(member, f"class {node.name}")
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods.append(member.name)
            summary.classes[node.name] = {
                "methods": methods,
                "bases": bases,
                "attr_types": attr_types,
            }
            for member in node.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    scan_function(member, node.name)
            # Attribute types: self.X = <ctor or annotated param>.
            for member in node.body:
                if not isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                method = summary.functions[f"{node.name}.{member.name}"]
                for child in ast.walk(member):
                    if not isinstance(child, ast.Assign):
                        continue
                    for target in child.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            ref = _call_class_ref(child.value)
                            if ref is None and isinstance(child.value, ast.Name):
                                ref = method.local_types.get(child.value.id)
                            if ref is not None:
                                attr_types.setdefault(target.attr, ref)
    return summary


# -- the assembled index ---------------------------------------------------


class CallResolution:
    """Call-graph resolution result: candidates plus confidence."""

    __slots__ = ("candidates", "confident")

    def __init__(self, candidates: List[str], confident: bool) -> None:
        #: Function keys ``"module::qualname"``.
        self.candidates = candidates
        self.confident = confident


class ProjectIndex:
    """The whole-program symbol table the project checks query."""

    def __init__(self, config: Optional[CheckConfig] = None) -> None:
        self.config = config or CheckConfig()
        self.modules: Dict[str, ModuleSummary] = {}
        self._by_function_name: Optional[Dict[str, List[str]]] = None
        self._by_class_name: Optional[Dict[str, List[str]]] = None

    def add(self, summary: ModuleSummary) -> None:
        """Index one module (lookup tables rebuild lazily)."""
        self.modules[summary.module] = summary
        self._by_function_name = None
        self._by_class_name = None

    # -- lookup tables ---------------------------------------------------

    def _function_table(self) -> Dict[str, List[str]]:
        if self._by_function_name is None:
            table: Dict[str, List[str]] = {}
            for module in self.modules.values():
                for qualname, function in module.functions.items():
                    key = f"{module.module}::{qualname}"
                    table.setdefault(function.name, []).append(key)
            self._by_function_name = table
        return self._by_function_name

    def _class_table(self) -> Dict[str, List[str]]:
        if self._by_class_name is None:
            table: Dict[str, List[str]] = {}
            for module in self.modules.values():
                for class_name in module.classes:
                    table.setdefault(class_name, []).append(module.module)
            self._by_class_name = table
        return self._by_class_name

    def function(self, key: str) -> Optional[FunctionSummary]:
        """The summary behind a ``module::qualname`` key, if indexed."""
        module_name, _, qualname = key.partition("::")
        module = self.modules.get(module_name)
        if module is None:
            return None
        return module.functions.get(qualname)

    def functions(self) -> Iterator[Tuple[str, ModuleSummary, FunctionSummary]]:
        """Every function as ``(key, module, summary)``."""
        for module in self.modules.values():
            for qualname, function in module.functions.items():
                yield f"{module.module}::{qualname}", module, function

    # -- resolution ------------------------------------------------------

    def resolve_class(
        self, module: ModuleSummary, classref: Optional[str]
    ) -> Optional[Tuple[str, str]]:
        """``(module_name, class_name)`` for a lexical class reference."""
        if not classref:
            return None
        parts = classref.split(".")
        base = parts[-1]
        if len(parts) == 1:
            if base in module.classes:
                return module.module, base
            target = module.imports.get(base)
            if target is not None:
                owner = self._module_defining_class(target, base)
                if owner is not None:
                    return owner, base
        # Unique-basename fallback: one definition project-wide is an
        # unambiguous match even when the import path is re-exported.
        owners = self._class_table().get(base, [])
        if len(owners) == 1:
            return owners[0], base
        return None

    def _module_defining_class(
        self, dotted_target: str, class_name: str
    ) -> Optional[str]:
        # `from a.b import C` binds target "a.b.C": the module is the
        # prefix; re-exports fall back to the unique-name table.
        if dotted_target.endswith("." + class_name):
            module_name = dotted_target[: -(len(class_name) + 1)]
            module = self.modules.get(module_name)
            if module is not None and class_name in module.classes:
                return module_name
        return None

    def _resolve_method(
        self, class_owner: str, class_name: str, method: str
    ) -> Optional[str]:
        module = self.modules.get(class_owner)
        if module is None:
            return None
        info = module.classes.get(class_name)
        if info is None:
            return None
        if method in info["methods"]:
            return f"{class_owner}::{class_name}.{method}"
        for base in info["bases"]:
            resolved = self.resolve_class(module, base)
            if resolved is not None:
                found = self._resolve_method(resolved[0], resolved[1], method)
                if found is not None:
                    return found
        return None

    def resolve_call(
        self,
        module: ModuleSummary,
        function: FunctionSummary,
        dotted: Sequence[str],
    ) -> CallResolution:
        """Resolve one call site to function keys.

        Confident resolutions: direct module-level names, imported
        project functions, ``self`` methods, ``Class.method``, and
        receivers whose type a local binding pins.  Unknown receivers
        fall back to the conservative candidate set (every project
        function of that name) with ``confident=False``.
        """
        dotted = tuple(dotted)
        if not dotted:
            return CallResolution([], True)
        head, tail = dotted[0], dotted[1:]
        if not tail:
            name = head
            if name in module.functions:
                return CallResolution([f"{module.module}::{name}"], True)
            if name in module.classes:
                key = self._resolve_method(module.module, name, "__init__")
                return CallResolution([key] if key else [], True)
            target = module.imports.get(name)
            if target is not None:
                resolved = self._resolve_imported_callable(target, name)
                if resolved is not None:
                    return CallResolution([resolved], True)
                resolved_class = self.resolve_class(module, name)
                if resolved_class is not None:
                    key = self._resolve_method(
                        resolved_class[0], resolved_class[1], "__init__"
                    )
                    return CallResolution([key] if key else [], True)
                return CallResolution([], True)  # external callable
            candidates = self._function_table().get(name, [])
            return CallResolution(list(candidates), len(candidates) <= 1)
        if head == "self" and function.class_name is not None:
            return self._resolve_self_call(module, function, tail)
        # ClassName.method / alias.method / typed-receiver.method
        method = tail[-1]
        receiver_class: Optional[str] = None
        if head in function.local_types and len(tail) >= 1:
            receiver_class = self._chase_attr_chain(
                module, function.local_types[head], tail[:-1]
            )
        elif head in module.classes or (
            head in module.imports and self.resolve_class(module, head)
        ):
            if len(tail) == 1 and head[:1].isupper():
                receiver_class = head
        elif head in module.imports and len(tail) == 1:
            # module alias: mod.func(...)
            target = module.imports[head]
            owner = self.modules.get(target)
            if owner is not None and method in owner.functions:
                return CallResolution([f"{target}::{method}"], True)
            return CallResolution([], True)  # external module
        if receiver_class is not None:
            resolved_class = self.resolve_class(module, receiver_class)
            if resolved_class is not None:
                key = self._resolve_method(
                    resolved_class[0], resolved_class[1], method
                )
                return CallResolution([key] if key else [], True)
            return CallResolution([], True)  # external class
        # Conservative fallback: any project method with this name.
        candidates = [
            key
            for key in self._function_table().get(method, [])
            if "." in key.split("::")[1]
        ]
        return CallResolution(candidates, False)

    def _resolve_imported_callable(
        self, dotted_target: str, name: str
    ) -> Optional[str]:
        if dotted_target.endswith("." + name):
            module_name = dotted_target[: -(len(name) + 1)]
            module = self.modules.get(module_name)
            if module is not None and name in module.functions:
                return f"{module_name}::{name}"
        table = self._function_table().get(name, [])
        module_level = [key for key in table if "." not in key.split("::")[1]]
        if len(module_level) == 1:
            return module_level[0]
        return None

    def _resolve_self_call(
        self,
        module: ModuleSummary,
        function: FunctionSummary,
        tail: Tuple[str, ...],
    ) -> CallResolution:
        class_name = function.class_name or ""
        if len(tail) == 1:
            key = self._resolve_method(module.module, class_name, tail[0])
            if key is not None:
                return CallResolution([key], True)
            return CallResolution([], True)
        # self.attr...method(): chase the attribute's pinned type.
        info = module.classes.get(class_name, {"attr_types": {}})
        attr_ref = info["attr_types"].get(tail[0])
        chased = self._chase_attr_chain(module, attr_ref, tail[1:-1])
        if chased is not None:
            resolved_class = self.resolve_class(module, chased)
            if resolved_class is not None:
                key = self._resolve_method(
                    resolved_class[0], resolved_class[1], tail[-1]
                )
                return CallResolution([key] if key else [], True)
            return CallResolution([], True)
        candidates = [
            key
            for key in self._function_table().get(tail[-1], [])
            if "." in key.split("::")[1]
        ]
        return CallResolution(candidates, False)

    def _chase_attr_chain(
        self,
        module: ModuleSummary,
        classref: Optional[str],
        attrs: Tuple[str, ...],
    ) -> Optional[str]:
        """Follow ``x.a.b`` through pinned attribute types."""
        current = classref
        for attr in attrs:
            resolved = self.resolve_class(module, current)
            if resolved is None:
                return None
            owner = self.modules[resolved[0]]
            current = owner.classes[resolved[1]]["attr_types"].get(attr)
            if current is None:
                return None
        return current

    # -- reachability ----------------------------------------------------

    def reachable_from(
        self, roots: Sequence[str], confident_only: bool = True
    ) -> Dict[str, str]:
        """Function keys reachable from ``roots`` (cycle-safe BFS).

        Returns ``{reached_key: root_key}`` attributing each function
        to the entrypoint that first reached it.
        """
        reached: Dict[str, str] = {}
        frontier: List[Tuple[str, str]] = [(root, root) for root in roots]
        while frontier:
            key, root = frontier.pop()
            if key in reached:
                continue
            reached[key] = root
            function = self.function(key)
            if function is None:
                continue
            module = self.modules[key.partition("::")[0]]
            for call in function.calls:
                resolution = self.resolve_call(module, function, call["dotted"])
                if confident_only and not resolution.confident:
                    continue
                for candidate in resolution.candidates:
                    if candidate not in reached:
                        frontier.append((candidate, root))
        return reached

    def allocations_reachable(
        self, key: str, kind: str, max_depth: int = 3
    ) -> Optional[Tuple[str, Dict[str, Any]]]:
        """First allocation of ``kind`` reachable from function ``key``.

        Bounded-depth, confident-edges-only walk; returns the owning
        function key and the allocation record, or None.
        """
        seen: Set[str] = set()
        frontier: List[Tuple[str, int]] = [(key, 0)]
        while frontier:
            current, depth = frontier.pop(0)
            if current in seen:
                continue
            seen.add(current)
            function = self.function(current)
            if function is None:
                continue
            for allocation in function.allocations:
                if allocation["kind"] == kind:
                    return current, allocation
            if depth >= max_depth:
                continue
            module = self.modules[current.partition("::")[0]]
            for call in function.calls:
                resolution = self.resolve_call(module, function, call["dotted"])
                if not resolution.confident:
                    continue
                for candidate in resolution.candidates:
                    if candidate not in seen:
                        frontier.append((candidate, depth + 1))
        return None

    def import_closure(self, module_name: str) -> Set[str]:
        """Project modules transitively imported by ``module_name``."""
        closure: Set[str] = set()
        frontier = [module_name]
        while frontier:
            current = frontier.pop()
            if current in closure:
                continue
            closure.add(current)
            module = self.modules.get(current)
            if module is None:
                continue
            for target in module.imports.values():
                for candidate in (target, target.rpartition(".")[0]):
                    if candidate in self.modules and candidate not in closure:
                        frontier.append(candidate)
        return closure


__all__ = [
    "CallResolution",
    "FunctionSummary",
    "ModuleSummary",
    "ProjectIndex",
    "module_name_for_path",
    "summarize_module",
]
