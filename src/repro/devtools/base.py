"""Check plugin protocol and registries.

A per-file check is a class with a ``code``, a one-line ``rationale``
(shown by ``python -m repro check --list`` and mirrored in the README
codes table) and a ``run`` method yielding :class:`Diagnostic` records
for one parsed file.  A *project* check runs once per invocation over
the assembled :class:`~repro.devtools.project.ProjectIndex` instead;
the two kinds live in separate registries so an interprocedural
upgrade may share a code with the per-file check it extends (RPR201/
RPR202 do exactly that).  Registration is a decorator either way --
the registries, the CLI, ``--list`` and the fixture-driven tests all
pick a new check up automatically.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set, Type

from repro.devtools.config import CheckConfig
from repro.devtools.diagnostics import Diagnostic

if TYPE_CHECKING:  # pragma: no cover
    from repro.devtools.project import ProjectIndex

_REGISTRY: Dict[str, Type["Check"]] = {}
_PROJECT_REGISTRY: Dict[str, Type["ProjectCheck"]] = {}


def _validate_code(code: str, owner: str) -> None:
    if not code.startswith("RPR") or not code[3:].isdigit():
        raise ValueError(f"bad diagnostic code {code!r} on {owner}")


def register(check_class: Type["Check"]) -> Type["Check"]:
    """Class decorator adding a per-file check to the registry."""
    code = check_class.code
    _validate_code(code, check_class.__name__)
    existing = _REGISTRY.get(code)
    if existing is not None and existing is not check_class:
        raise ValueError(f"duplicate diagnostic code {code}")
    _REGISTRY[code] = check_class
    return check_class


def register_project(
    check_class: Type["ProjectCheck"],
) -> Type["ProjectCheck"]:
    """Class decorator adding a project-wide check to the registry.

    A project check may share its code with a per-file check (the
    interprocedural RPR2xx upgrades do); it must still be unique among
    project checks.
    """
    code = check_class.code
    _validate_code(code, check_class.__name__)
    existing = _PROJECT_REGISTRY.get(code)
    if existing is not None and existing is not check_class:
        raise ValueError(f"duplicate project diagnostic code {code}")
    _PROJECT_REGISTRY[code] = check_class
    return check_class


def all_checks() -> List[Type["Check"]]:
    """Registered per-file check classes, sorted by code."""
    _ensure_loaded()
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def all_project_checks() -> List[Type["ProjectCheck"]]:
    """Registered project check classes, sorted by code."""
    _ensure_loaded()
    return [_PROJECT_REGISTRY[code] for code in sorted(_PROJECT_REGISTRY)]


def registered_codes() -> List[str]:
    """All registered diagnostic codes (both kinds), sorted."""
    _ensure_loaded()
    return sorted(set(_REGISTRY) | set(_PROJECT_REGISTRY))


def get_check(code: str) -> Type["Check"]:
    """The per-file check class for ``code`` (KeyError if none)."""
    _ensure_loaded()
    return _REGISTRY[code]


def _ensure_loaded() -> None:
    # Importing the checks package populates the registry; deferred to
    # first use so base <-> checks never import-cycle.
    import repro.devtools.checks  # noqa: F401


class FileContext:
    """Everything the checks need to know about one parsed file.

    Built once per file by the analyzer and shared by every check:
    the AST plus parent links, loop ancestry, the module's telemetry
    imports and its hot-path designation.
    """

    def __init__(
        self,
        path: str,
        source: str,
        tree: ast.Module,
        config: CheckConfig,
    ) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.config = config
        self.parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        self.is_hot_path = config.is_hot_path(path, source)
        self.telemetry_names: Set[str] = self._telemetry_imports()
        self.is_instrumented = bool(self.telemetry_names)

    def _telemetry_imports(self) -> Set[str]:
        """Local names bound to ``repro.telemetry`` (or members of it)."""
        names: Set[str] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "repro.telemetry":
                        names.add(alias.asname or "repro")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "repro" and any(
                    alias.name == "telemetry" for alias in node.names
                ):
                    for alias in node.names:
                        if alias.name == "telemetry":
                            names.add(alias.asname or "telemetry")
                elif node.module == "repro.telemetry":
                    for alias in node.names:
                        names.add(alias.asname or alias.name)
        return names

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The AST parent of ``node`` (None for the module root)."""
        return self.parents.get(node)

    def enclosing_loops(self, node: ast.AST) -> List[ast.AST]:
        """``for``/``while`` statements whose *body* contains ``node``.

        A node sitting in a loop's iterable or condition expression is
        not "inside" that loop body: ``for x in np.zeros(n):`` runs the
        allocation once, so only descendants of ``body``/``orelse``
        count.
        """
        loops: List[ast.AST] = []
        child = node
        parent = self.parents.get(child)
        while parent is not None:
            if isinstance(parent, (ast.For, ast.While)) and (
                any(child is stmt for stmt in parent.body)
                or any(child is stmt for stmt in parent.orelse)
            ):
                loops.append(parent)
            child = parent
            parent = self.parents.get(child)
        return loops

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        """The nearest enclosing function/lambda (None at module scope)."""
        parent = self.parents.get(node)
        while parent is not None:
            if isinstance(
                parent, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                return parent
            parent = self.parents.get(parent)
        return None


class Check:
    """Base class for one diagnostic code.

    Subclasses set :attr:`code` and :attr:`rationale` and implement
    :meth:`run`; ``rationale`` must be one line -- it is the ``--list``
    output and the README codes table.
    """

    #: Diagnostic code, e.g. ``"RPR101"``.
    code: str = ""
    #: One-line reason this contract exists.
    rationale: str = ""

    def run(self, context: FileContext) -> Iterator[Diagnostic]:
        """Yield diagnostics for one parsed file."""
        raise NotImplementedError

    def diagnostic(
        self, context: FileContext, node: ast.AST, message: str
    ) -> Diagnostic:
        """A :class:`Diagnostic` of this check's code anchored at ``node``."""
        return Diagnostic(
            path=context.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        )


class ProjectCheck:
    """Base class for one whole-program diagnostic code.

    Subclasses set :attr:`code`/:attr:`rationale` and implement
    :meth:`run` over the assembled index; diagnostics may point at any
    indexed file (a reader site can be flagged for a writer's drift).
    Inline suppressions apply exactly as for per-file checks: at the
    flagged line, in the flagged file.
    """

    #: Diagnostic code, e.g. ``"RPR501"``.
    code: str = ""
    #: One-line reason this contract exists.
    rationale: str = ""

    def run(self, index: "ProjectIndex") -> Iterator[Diagnostic]:
        """Yield diagnostics for the whole indexed project."""
        raise NotImplementedError

    def diagnostic(
        self, path: str, lineno: int, col: int, message: str
    ) -> Diagnostic:
        """A :class:`Diagnostic` of this check's code at a position."""
        return Diagnostic(
            path=path, line=lineno, col=col, code=self.code, message=message
        )
