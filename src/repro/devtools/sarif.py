"""SARIF 2.1.0 export for ``repro check`` findings.

SARIF is the interchange format code-scanning UIs ingest, so the CI
``invariant-check`` job can upload one artifact that both humans (the
JSON document) and annotation tooling (this one) understand.  The
emitted document is the minimal conforming subset: one run, a tool
driver listing every registered rule with its rationale, and one
result per diagnostic with a physical location.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping, Sequence

from repro.devtools.diagnostics import Diagnostic
from repro.version import __version__

#: The schema URI SARIF consumers validate against.
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

SARIF_VERSION = "2.1.0"


def diagnostics_to_sarif(
    diagnostics: Sequence[Diagnostic],
    rationales: Mapping[str, str],
    indent: int = 2,
) -> str:
    """Serialize findings as a SARIF 2.1.0 log.

    Args:
        diagnostics: the run's findings (sorted on output).
        rationales: code -> rationale for every registered code; all
            of them are listed as rules so rule metadata is stable
            regardless of which codes fired.
        indent: JSON indentation.
    """
    rule_ids = sorted(rationales)
    rule_index = {code: position for position, code in enumerate(rule_ids)}
    rules = [
        {
            "id": code,
            "shortDescription": {"text": rationales[code]},
        }
        for code in rule_ids
    ]
    results = []
    for diagnostic in sorted(diagnostics):
        result: Dict[str, Any] = {
            "ruleId": diagnostic.code,
            "level": "error",
            "message": {"text": diagnostic.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": diagnostic.path},
                        "region": {
                            "startLine": diagnostic.line,
                            # SARIF columns are 1-based.
                            "startColumn": diagnostic.col + 1,
                        },
                    }
                }
            ],
        }
        if diagnostic.code in rule_index:
            result["ruleIndex"] = rule_index[diagnostic.code]
        results.append(result)
    document = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-check",
                        "version": __version__,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=indent)


__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "diagnostics_to_sarif"]
