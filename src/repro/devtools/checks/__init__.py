"""Check plugins: importing this package populates the registries."""

from repro.devtools.checks import (
    api,
    determinism,
    hotpath,
    interprocedural,
    process_safety,
    protocol_drift,
    resource_safety,
    telemetry_discipline,
)
from repro.devtools.checks.api import AllResolvesCheck, AnnotationsCheck, DocstringCheck
from repro.devtools.checks.determinism import (
    EntropyRngCheck,
    LegacyNumpyRandomCheck,
    ModuleLevelRngCheck,
    StdlibRandomCheck,
    WallClockCheck,
)
from repro.devtools.checks.hotpath import InLoopAllocationCheck, InLoopComprehensionCheck
from repro.devtools.checks.interprocedural import (
    ReachableComprehensionCheck,
    ReachableNumpyAllocationCheck,
)
from repro.devtools.checks.process_safety import (
    ForkAfterThreadCheck,
    PipePayloadCheck,
    WorkerSharedStateCheck,
)
from repro.devtools.checks.protocol_drift import (
    DuplicateProtocolConstantCheck,
    ProtocolConstantDriftCheck,
    VersionKeyLiteralCheck,
)
from repro.devtools.checks.resource_safety import (
    AtomicReplaceCheck,
    ScopedResourceCheck,
    TeardownOrderCheck,
)
from repro.devtools.checks.telemetry_discipline import PerItemTelemetryCheck

__all__ = [
    "AllResolvesCheck",
    "AnnotationsCheck",
    "AtomicReplaceCheck",
    "DocstringCheck",
    "DuplicateProtocolConstantCheck",
    "EntropyRngCheck",
    "ForkAfterThreadCheck",
    "InLoopAllocationCheck",
    "InLoopComprehensionCheck",
    "LegacyNumpyRandomCheck",
    "ModuleLevelRngCheck",
    "PerItemTelemetryCheck",
    "PipePayloadCheck",
    "ProtocolConstantDriftCheck",
    "ReachableComprehensionCheck",
    "ReachableNumpyAllocationCheck",
    "ScopedResourceCheck",
    "StdlibRandomCheck",
    "TeardownOrderCheck",
    "VersionKeyLiteralCheck",
    "WallClockCheck",
    "WorkerSharedStateCheck",
    "api",
    "determinism",
    "hotpath",
    "interprocedural",
    "process_safety",
    "protocol_drift",
    "resource_safety",
    "telemetry_discipline",
]
