"""Check plugins: importing this package populates the registry."""

from repro.devtools.checks import api, determinism, hotpath, telemetry_discipline
from repro.devtools.checks.api import AllResolvesCheck, AnnotationsCheck, DocstringCheck
from repro.devtools.checks.determinism import (
    EntropyRngCheck,
    LegacyNumpyRandomCheck,
    ModuleLevelRngCheck,
    StdlibRandomCheck,
    WallClockCheck,
)
from repro.devtools.checks.hotpath import InLoopAllocationCheck, InLoopComprehensionCheck
from repro.devtools.checks.telemetry_discipline import PerItemTelemetryCheck

__all__ = [
    "AllResolvesCheck",
    "AnnotationsCheck",
    "DocstringCheck",
    "EntropyRngCheck",
    "InLoopAllocationCheck",
    "InLoopComprehensionCheck",
    "LegacyNumpyRandomCheck",
    "ModuleLevelRngCheck",
    "PerItemTelemetryCheck",
    "StdlibRandomCheck",
    "WallClockCheck",
    "api",
    "determinism",
    "hotpath",
    "telemetry_discipline",
]
