"""RPR1xx: determinism contracts.

The reproduction's guarantees -- bitwise float64 parity across
refactors, stable anomaly scores gating ticket creation, monthly
retrains that can be replayed -- all rest on one discipline: every
source of randomness is an injected, seeded ``numpy.random.Generator``
and library code never reads wall-clock entropy.  These checks make
the discipline mechanical.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.devtools.base import Check, FileContext, register
from repro.devtools.diagnostics import Diagnostic

#: ``np.random`` attributes that are *not* the legacy global RNG:
#: types, constructors and seeding helpers that deterministic code
#: legitimately names.
_NUMPY_RANDOM_SANCTIONED = frozenset(
    {"Generator", "default_rng", "SeedSequence", "BitGenerator", "PCG64",
     "Philox", "SFC64", "MT19937", "RandomState"}
)

#: ``random``-module members whose module-qualified call is flagged.
#: Anything callable on the module draws from the hidden global state.
_STDLIB_RANDOM_MODULE = "random"

#: Wall-clock reads; monotonic/perf clocks are fine (durations only).
_WALL_CLOCK_ATTRS = frozenset({"time", "time_ns"})


def _dotted(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` as ``("a", "b", "c")``; None for non-name chains."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _is_numpy_random(prefix: Tuple[str, ...]) -> bool:
    """Whether a dotted prefix names the ``numpy.random`` module."""
    return prefix in (("np", "random"), ("numpy", "random"))


@register
class EntropyRngCheck(Check):
    """RPR101: entropy-seeded generators break replayability."""

    code = "RPR101"
    rationale = (
        "np.random.default_rng() with no seed draws OS entropy; "
        "results cannot be replayed"
    )

    def run(self, context: FileContext) -> Iterator[Diagnostic]:
        """Yield determinism diagnostics for one parsed file."""
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            is_default_rng = dotted[-1] == "default_rng" and (
                len(dotted) == 1 or _is_numpy_random(dotted[:-1])
            )
            if is_default_rng and not node.args and not node.keywords:
                yield self.diagnostic(
                    context,
                    node,
                    "default_rng() without a seed is entropy-seeded; "
                    "inject a Generator or derive the seed",
                )


@register
class LegacyNumpyRandomCheck(Check):
    """RPR102: the legacy ``np.random.*`` global RNG is shared state."""

    code = "RPR102"
    rationale = (
        "legacy np.random.<dist> calls mutate one hidden global "
        "stream; pass a Generator instead"
    )

    def run(self, context: FileContext) -> Iterator[Diagnostic]:
        """Yield determinism diagnostics for one parsed file."""
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if (
                dotted is not None
                and len(dotted) >= 3
                and _is_numpy_random(dotted[:2])
                and dotted[2] not in _NUMPY_RANDOM_SANCTIONED
            ):
                yield self.diagnostic(
                    context,
                    node,
                    f"legacy global RNG call np.random.{dotted[2]}(); "
                    "use an injected Generator",
                )


@register
class StdlibRandomCheck(Check):
    """RPR103: ``random.*`` is seedless hidden state in library code."""

    code = "RPR103"
    rationale = (
        "stdlib random.* uses interpreter-global state outside the "
        "injected-Generator regime"
    )

    def run(self, context: FileContext) -> Iterator[Diagnostic]:
        """Yield determinism diagnostics for one parsed file."""
        imported = self._random_aliases(context.tree)
        if not imported:
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is not None and len(dotted) == 2 and dotted[0] in imported:
                yield self.diagnostic(
                    context,
                    node,
                    f"stdlib random call {dotted[0]}.{dotted[1]}(); "
                    "use an injected numpy Generator",
                )

    @staticmethod
    def _random_aliases(tree: ast.Module) -> frozenset:
        aliases = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == _STDLIB_RANDOM_MODULE:
                        aliases.add(alias.asname or alias.name)
        return frozenset(aliases)


@register
class WallClockCheck(Check):
    """RPR104: wall-clock reads make library behavior time-dependent."""

    code = "RPR104"
    rationale = (
        "time.time() reads the wall clock in library code; take "
        "timestamps as parameters (perf_counter for durations is fine)"
    )

    def run(self, context: FileContext) -> Iterator[Diagnostic]:
        """Yield determinism diagnostics for one parsed file."""
        if context.config.is_allowlisted(self.code, context.path):
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if (
                dotted is not None
                and len(dotted) == 2
                and dotted[0] == "time"
                and dotted[1] in _WALL_CLOCK_ATTRS
            ):
                yield self.diagnostic(
                    context,
                    node,
                    f"wall-clock read time.{dotted[1]}(); accept the "
                    "timestamp as a parameter",
                )


@register
class ModuleLevelRngCheck(Check):
    """RPR105: module-level RNG construction is an import-order hazard."""

    code = "RPR105"
    rationale = (
        "a Generator built at import time is hidden global state "
        "shared by every caller; construct it inside the consumer"
    )

    def run(self, context: FileContext) -> Iterator[Diagnostic]:
        """Yield determinism diagnostics for one parsed file."""
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None or dotted[-1] != "default_rng":
                continue
            if len(dotted) > 1 and not _is_numpy_random(dotted[:-1]):
                continue
            if context.enclosing_function(node) is None:
                yield self.diagnostic(
                    context,
                    node,
                    "default_rng(...) at module scope creates a "
                    "process-wide RNG at import time",
                )
