"""RPR2xx: hot-path allocation discipline.

PR 1's speedups came from hoisting every array allocation out of the
recurrence loops (preallocated ``(batch, steps, .)`` buffers, ``out=``
ufuncs); PR 2's streaming engine holds the same line per tick.  These
checks pin that property in the designated hot-path modules: an
allocating NumPy call or a comprehension materializing per-item
containers inside a ``for``/``while`` body is a regression unless the
author marks it as a deliberate, amortized allocation with
``# repro: noqa[RPR201]`` (a "hoist suppression").

A call passing ``out=`` writes into caller-provided storage and is
exempt; so is a loop whose iterable is a literal tuple/list, because
its trip count is a small lexical constant, not data size.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.devtools.base import Check, FileContext, register
from repro.devtools.checks.determinism import _dotted
from repro.devtools.diagnostics import Diagnostic

#: NumPy callables that always materialize a fresh array.  Searches and
#: elementwise ufuncs are excluded: their ``out=``-less use in a loop is
#: sometimes the right call shape, and the constructors below are where
#: the real per-iteration garbage comes from.
ALLOCATING_NUMPY_CALLS = frozenset(
    {
        "zeros", "empty", "ones", "full",
        "zeros_like", "empty_like", "ones_like", "full_like",
        "array", "asarray", "ascontiguousarray", "asfortranarray",
        "concatenate", "stack", "vstack", "hstack", "dstack",
        "column_stack", "block", "tile", "repeat", "copy",
        "arange", "linspace", "logspace", "eye", "identity",
        "fromiter", "frombuffer", "meshgrid", "pad",
    }
)

_NUMPY_ALIASES = ("np", "numpy")


def _constant_trip_loop(node: ast.AST) -> bool:
    """A ``for`` over a literal tuple/list: fixed, small trip count."""
    return isinstance(node, ast.For) and isinstance(
        node.iter, (ast.Tuple, ast.List)
    )


def _data_loops(context: FileContext, node: ast.AST) -> List[ast.AST]:
    """Enclosing loops that iterate over data (not literal sequences)."""
    return [
        loop
        for loop in context.enclosing_loops(node)
        if not _constant_trip_loop(loop)
    ]


@register
class InLoopAllocationCheck(Check):
    """RPR201: per-iteration array allocation in a hot-path loop."""

    code = "RPR201"
    rationale = (
        "allocating NumPy calls inside hot-path loops create "
        "per-iteration garbage; hoist the buffer or pass out="
    )

    def run(self, context: FileContext) -> Iterator[Diagnostic]:
        """Yield hot-path allocation diagnostics for one parsed file."""
        if not context.is_hot_path:
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if (
                dotted is None
                or len(dotted) != 2
                or dotted[0] not in _NUMPY_ALIASES
                or dotted[1] not in ALLOCATING_NUMPY_CALLS
            ):
                continue
            if any(keyword.arg == "out" for keyword in node.keywords):
                continue
            if _data_loops(context, node):
                yield self.diagnostic(
                    context,
                    node,
                    f"np.{dotted[1]}(...) allocates on every loop "
                    "iteration; hoist it out of the loop",
                )


@register
class InLoopComprehensionCheck(Check):
    """RPR202: per-iteration comprehensions in a hot-path loop."""

    code = "RPR202"
    rationale = (
        "comprehensions inside hot-path loops build a fresh container "
        "per iteration; vectorize or hoist them"
    )

    _KINDS = {
        ast.ListComp: "list comprehension",
        ast.SetComp: "set comprehension",
        ast.DictComp: "dict comprehension",
        ast.GeneratorExp: "generator expression",
    }

    def run(self, context: FileContext) -> Iterator[Diagnostic]:
        """Yield hot-path allocation diagnostics for one parsed file."""
        if not context.is_hot_path:
            return
        for node in ast.walk(context.tree):
            kind = self._KINDS.get(type(node))
            if kind is None:
                continue
            if _data_loops(context, node):
                yield self.diagnostic(
                    context,
                    node,
                    f"{kind} inside a hot-path loop materializes a "
                    "container per iteration",
                )
