"""RPR4xx: public API hygiene.

The CLI, the benchmark harness and the CI gates all script against
``repro.*``; an unannotated or undocumented public callable is an
interface only its author can use safely, and a stale ``__all__``
entry turns ``from repro.x import *`` and re-export docs into lies.

"Public" means: a module-level function/class whose name has no
leading underscore, or a method of such a class that is itself
public (``__init__`` and ``__call__`` count -- they are the
constructor and call signatures users actually invoke).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Union

from repro.devtools.base import Check, FileContext, register
from repro.devtools.diagnostics import Diagnostic

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Dunders that are part of a class's user-facing signature.
_SIGNATURE_DUNDERS = frozenset({"__init__", "__call__"})


def _is_public_name(name: str) -> bool:
    return not name.startswith("_") or name in _SIGNATURE_DUNDERS


def _public_functions(
    context: FileContext,
) -> Iterator[_FunctionNode]:
    """Module-level and public-class-level public functions."""
    for node in context.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _is_public_name(node.name) and node.name not in _SIGNATURE_DUNDERS:
                yield node
        elif isinstance(node, ast.ClassDef) and _is_public_name(node.name):
            for member in node.body:
                if isinstance(
                    member, (ast.FunctionDef, ast.AsyncFunctionDef)
                ) and _is_public_name(member.name):
                    yield member


def _public_classes(context: FileContext) -> Iterator[ast.ClassDef]:
    for node in context.tree.body:
        if isinstance(node, ast.ClassDef) and _is_public_name(node.name):
            yield node


def _missing_annotations(function: _FunctionNode) -> List[str]:
    """Parameter names lacking annotations (self/cls excluded)."""
    arguments = function.args
    positional = arguments.posonlyargs + arguments.args
    missing = []
    for index, arg in enumerate(positional):
        if index == 0 and arg.arg in ("self", "cls"):
            continue
        if arg.annotation is None:
            missing.append(arg.arg)
    for arg in arguments.kwonlyargs:
        if arg.annotation is None:
            missing.append(arg.arg)
    if arguments.vararg is not None and arguments.vararg.annotation is None:
        missing.append("*" + arguments.vararg.arg)
    if arguments.kwarg is not None and arguments.kwarg.annotation is None:
        missing.append("**" + arguments.kwarg.arg)
    return missing


@register
class AnnotationsCheck(Check):
    """RPR401: public callables must be fully type-annotated."""

    code = "RPR401"
    rationale = (
        "public repro.* functions without full parameter/return "
        "annotations are uncheckable interfaces"
    )

    def run(self, context: FileContext) -> Iterator[Diagnostic]:
        """Yield API-hygiene diagnostics for one parsed file."""
        for function in _public_functions(context):
            missing = _missing_annotations(function)
            if missing:
                yield self.diagnostic(
                    context,
                    function,
                    f"public function {function.name}() is missing "
                    f"annotations for: {', '.join(missing)}",
                )
            if function.returns is None:
                yield self.diagnostic(
                    context,
                    function,
                    f"public function {function.name}() is missing a "
                    "return annotation",
                )


@register
class DocstringCheck(Check):
    """RPR402: public API carries docstrings (modules included)."""

    code = "RPR402"
    rationale = (
        "public modules, classes and functions need docstrings; the "
        "API docs and reviewers read them, not the git log"
    )

    def run(self, context: FileContext) -> Iterator[Diagnostic]:
        """Yield API-hygiene diagnostics for one parsed file."""
        if ast.get_docstring(context.tree) is None:
            yield Diagnostic(
                path=context.path,
                line=1,
                col=0,
                code=self.code,
                message="module is missing a docstring",
            )
        for node in _public_classes(context):
            if ast.get_docstring(node) is None:
                yield self.diagnostic(
                    context, node,
                    f"public class {node.name} is missing a docstring",
                )
        for function in _public_functions(context):
            if function.name in _SIGNATURE_DUNDERS:
                # The class docstring documents construction/calling.
                continue
            if ast.get_docstring(function) is None:
                yield self.diagnostic(
                    context,
                    function,
                    f"public function {function.name}() is missing a "
                    "docstring",
                )


def _module_bindings(context: FileContext) -> Set[str]:
    """Names bound at module scope (descending into if/try blocks)."""
    bound: Set[str] = set()

    def visit_block(statements: List[ast.stmt]) -> None:
        for node in statements:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                bound.add(node.name)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    for name in ast.walk(target):
                        if isinstance(name, ast.Name):
                            bound.add(name.id)
            elif isinstance(node, ast.If):
                visit_block(node.body)
                visit_block(node.orelse)
            elif isinstance(node, ast.Try):
                visit_block(node.body)
                visit_block(node.orelse)
                visit_block(node.finalbody)
                for handler in node.handlers:
                    visit_block(handler.body)
            elif isinstance(node, (ast.For, ast.While, ast.With)):
                visit_block(node.body)
                if not isinstance(node, ast.With):
                    visit_block(node.orelse)

    visit_block(context.tree.body)
    return bound


def _all_entries(context: FileContext) -> Optional[List[ast.expr]]:
    """Elements of a module-level ``__all__`` list/tuple, if present."""
    for node in context.tree.body:
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                if isinstance(node.value, (ast.List, ast.Tuple)):
                    return list(node.value.elts)
    return None


@register
class AllResolvesCheck(Check):
    """RPR403: every ``__all__`` entry resolves to a module binding."""

    code = "RPR403"
    rationale = (
        "__all__ names that do not resolve break star-imports and "
        "advertise an API that does not exist"
    )

    def run(self, context: FileContext) -> Iterator[Diagnostic]:
        """Yield API-hygiene diagnostics for one parsed file."""
        entries = _all_entries(context)
        if entries is None:
            return
        bound = _module_bindings(context)
        for entry in entries:
            if not (
                isinstance(entry, ast.Constant)
                and isinstance(entry.value, str)
            ):
                yield self.diagnostic(
                    context, entry, "__all__ entries must be string literals"
                )
                continue
            if entry.value not in bound:
                yield self.diagnostic(
                    context,
                    entry,
                    f"__all__ entry {entry.value!r} does not resolve "
                    "to a module-level name",
                )
