"""RPR3xx: telemetry discipline.

PR 3's overhead bound (live registry < 3% of scoring cost) holds
because instrumented code publishes once per batch -- per tick, per
epoch, per fit -- never per message.  This check flags metric writes
lexically inside per-item loop bodies of any module that imports
``repro.telemetry``.

Two shapes are deliberately exempt: loops over literal tuples/lists
(publishing a fixed, lexically-enumerated set of metrics *is* a batch
boundary), and everything in modules that never import telemetry (the
registry implementation itself loops over its own metrics to export
them).  A loop that is per-*batch* rather than per-item -- an epoch
loop publishing one loss per epoch -- is a judgment call the checker
cannot make; mark it with ``# repro: noqa[RPR301]`` and say why.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.devtools.base import Check, FileContext, register
from repro.devtools.checks.hotpath import _data_loops
from repro.devtools.diagnostics import Diagnostic

#: Registry accessors: ``<registry>.counter(...)`` etc. create/fetch a
#: metric; calling one inside a per-item loop is a write site.
_REGISTRY_ACCESSORS = frozenset({"counter", "gauge", "histogram", "timed"})

#: Metric mutators flagged on any receiver: ``.inc``/``.observe`` are
#: unambiguous metric verbs (``.set``/``.add`` are not -- sets and
#: numbers own them -- so those are only caught via chained access).
_METRIC_MUTATORS = frozenset({"inc", "observe", "observe_array"})


def _telemetry_call_kind(
    node: ast.Call, context: FileContext
) -> Optional[str]:
    """Classify a call as a telemetry write site (None when not one).

    Three shapes count: module-level helpers (``telemetry.counter``),
    registry accessors on any receiver (``registry.histogram``), and
    mutator verbs (``metric.inc``) on any receiver -- the last covers
    metrics hoisted into locals before the loop.
    """
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    if isinstance(func.value, ast.Name) and func.value.id in context.telemetry_names:
        return f"{func.value.id}.{func.attr}"
    if func.attr in _REGISTRY_ACCESSORS:
        return f".{func.attr}"
    if func.attr in _METRIC_MUTATORS:
        return f".{func.attr}"
    return None


@register
class PerItemTelemetryCheck(Check):
    """RPR301: metric writes inside per-item loops of instrumented code."""

    code = "RPR301"
    rationale = (
        "telemetry must publish at batch boundaries; per-item "
        "inc/observe in loops reintroduces per-message overhead"
    )

    def run(self, context: FileContext) -> Iterator[Diagnostic]:
        """Yield telemetry-discipline diagnostics for one parsed file."""
        if not context.is_instrumented:
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            kind = _telemetry_call_kind(node, context)
            if kind is None:
                continue
            # `registry.counter("x").inc(n)` is one write site: report
            # the accessor and skip the chained mutator on top of it.
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _METRIC_MUTATORS
                and isinstance(func.value, ast.Call)
                and _telemetry_call_kind(func.value, context) is not None
            ):
                continue
            if _data_loops(context, node):
                yield self.diagnostic(
                    context,
                    node,
                    f"telemetry call {kind}(...) inside a per-item "
                    "loop; publish once at the batch boundary",
                )
