"""RPR5xx: fork/process-safety for the sharded runtime.

PR 6 moved serving into forked shard workers and PR 8 added a forked
fine-tune worker; both are shared-nothing by design — a worker's only
channels back to the parent are its pipe and the WAL it owns.  Module
state inherited at fork time silently diverges per process, objects
shipped over pipes must actually round-trip, and forking a process
that has started threads strands every lock those threads hold.
These checks walk the project call graph from the configured worker
entrypoints and flag each hazard at its source line.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.devtools.base import ProjectCheck, register_project
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.project import ProjectIndex


def _worker_roots(index: ProjectIndex) -> List[str]:
    """Function keys of every configured worker entrypoint."""
    roots = []
    for key, module, function in index.functions():
        if (
            function.class_name is None
            and function.name in index.config.worker_entrypoints
        ):
            roots.append(key)
    return roots


@register_project
class WorkerSharedStateCheck(ProjectCheck):
    """RPR501: module-level mutable state touched by worker code."""

    code = "RPR501"
    rationale = (
        "forked workers must be shared-nothing; module-level mutable "
        "state reachable from a worker entrypoint diverges per process"
    )

    def run(self, index: ProjectIndex) -> Iterator[Diagnostic]:
        """Yield shared-state diagnostics over the worker call graph."""
        roots = _worker_roots(index)
        if not roots:
            return
        reached = index.reachable_from(roots)
        flagged: Dict[Tuple[str, int, str], str] = {}
        for key, root in reached.items():
            function = index.function(key)
            if function is None:
                continue
            module = index.modules[key.partition("::")[0]]
            root_name = root.partition("::")[2]
            for access in function.global_accesses:
                info = module.mutable_globals.get(access["name"])
                if info is None:
                    continue
                # Populated displays are lookup tables; only their
                # mutation is a hazard.  Empty initializers are
                # runtime-filled caches: reads observe fork-time state.
                if access["kind"] == "read" and not info["empty"]:
                    continue
                site = (module.path, access["lineno"], access["name"])
                if site in flagged and access["kind"] == "read":
                    continue
                flagged[site] = access["kind"]
                verb = (
                    "mutated" if access["kind"] == "write" else "read"
                )
                yield self.diagnostic(
                    module.path,
                    access["lineno"],
                    access["col"],
                    f"module-level mutable state {access['name']} is "
                    f"{verb} by code reachable from worker entrypoint "
                    f"{root_name}(); workers are shared-nothing — pass "
                    "state explicitly",
                )
            for access in function.module_attr_accesses:
                target = module.imports.get(access["alias"])
                owner = index.modules.get(target) if target else None
                if owner is None:
                    continue
                info = owner.mutable_globals.get(access["attr"])
                if info is None:
                    continue
                yield self.diagnostic(
                    module.path,
                    access["lineno"],
                    access["col"],
                    f"{access['alias']}.{access['attr']} is mutable "
                    "module state mutated by code reachable from "
                    f"worker entrypoint {root_name}(); workers are "
                    "shared-nothing — pass state explicitly",
                )


@register_project
class PipePayloadCheck(ProjectCheck):
    """RPR502: project classes shipped over pipes without clearance."""

    code = "RPR502"
    rationale = (
        "objects crossing multiprocessing pipes or spawn args must "
        "round-trip the codec or a pickle-safe allowlisted class"
    )

    def run(self, index: ProjectIndex) -> Iterator[Diagnostic]:
        """Yield pipe-payload diagnostics for every indexed module."""
        safe = set(index.config.pipe_safe_classes)
        for key, module, function in index.functions():
            for send in function.pipe_sends:
                resolved = index.resolve_class(module, send["arg_class"])
                if resolved is None:
                    continue  # not a project class: dict/bytes/etc.
                base = resolved[1]
                if base in safe:
                    continue
                yield self.diagnostic(
                    module.path,
                    send["lineno"],
                    send["col"],
                    f"{base} instance sent over a multiprocessing "
                    "pipe; it is not on the pickle-safe allowlist — "
                    "encode it (arena codec / JSON frame) or clear "
                    "the class in CheckConfig.pipe_safe_classes",
                )
            for spawn in function.process_spawns:
                for arg_class in spawn["arg_classes"]:
                    resolved = index.resolve_class(module, arg_class)
                    if resolved is None:
                        continue
                    base = resolved[1]
                    if base in safe:
                        continue
                    yield self.diagnostic(
                        module.path,
                        spawn["lineno"],
                        spawn["col"],
                        f"{base} instance passed as spawn args; it is "
                        "not on the pickle-safe allowlist — workers "
                        "must receive primitives or cleared classes",
                    )


@register_project
class ForkAfterThreadCheck(ProjectCheck):
    """RPR503: forking after thread creation in the import closure."""

    code = "RPR503"
    rationale = (
        "fork after thread creation strands locks held by threads "
        "that do not survive into the child process"
    )

    def run(self, index: ProjectIndex) -> Iterator[Diagnostic]:
        """Yield fork-after-thread diagnostics for every spawn site."""
        threaded_modules = {
            module.module
            for module in index.modules.values()
            if any(
                function.thread_spawns
                for function in module.functions.values()
            )
        }
        if not threaded_modules:
            return
        for key, module, function in index.functions():
            if not function.process_spawns:
                continue
            closure = index.import_closure(module.module)
            culprits = sorted(closure & threaded_modules)
            if not culprits:
                continue
            for spawn in function.process_spawns:
                dotted = ".".join(spawn["dotted"])
                yield self.diagnostic(
                    module.path,
                    spawn["lineno"],
                    spawn["col"],
                    f"{dotted}(...) forks while the import closure "
                    f"({', '.join(culprits)}) creates threads; fork "
                    "after thread creation deadlocks the child on "
                    "locks the threads held",
                )


__all__ = [
    "ForkAfterThreadCheck",
    "PipePayloadCheck",
    "WorkerSharedStateCheck",
]
