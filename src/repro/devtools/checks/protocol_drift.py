"""RPR7xx: protocol-version drift across writer and reader sites.

Every durable byte in this system is prefixed by a constant the
matching reader re-checks: the tick codec's magic byte, the WAL
record header, checkpoint/``state_dict`` ``version`` keys, the store
manifest schema.  Those constants only protect anything while writer
and reader resolve to the *same literal*; a re-derived copy that
drifts turns "refuse to read the future" into silent corruption.
These checks run constant propagation over the project index: every
definition of a ``*_MAGIC``/``*_VERSION`` name is collected and
compared, and ``"version"`` keys must reference a named constant
rather than a bare literal at both the write and the compare site.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.devtools.base import ProjectCheck, register_project
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.project import ProjectIndex


def _definition_sites(
    index: ProjectIndex,
) -> Dict[str, List[Tuple[str, Dict]]]:
    """Protocol constant name -> [(module path, definition record)]."""
    sites: Dict[str, List[Tuple[str, Dict]]] = {}
    for module in index.modules.values():
        for record in module.protocol_constants:
            sites.setdefault(record["name"], []).append(
                (module.path, record)
            )
    return sites


@register_project
class ProtocolConstantDriftCheck(ProjectCheck):
    """RPR701: one protocol constant, different literals."""

    code = "RPR701"
    rationale = (
        "a protocol constant must resolve to the same literal at "
        "every writer and reader site; drifted copies corrupt reads"
    )

    def run(self, index: ProjectIndex) -> Iterator[Diagnostic]:
        """Yield drift diagnostics for conflicting definitions."""
        for name, sites in sorted(_definition_sites(index).items()):
            values = {record["value_repr"] for _, record in sites}
            if len(values) < 2:
                continue
            rendering = ", ".join(sorted(values))
            for path, record in sites:
                yield self.diagnostic(
                    path,
                    record["lineno"],
                    record["col"],
                    f"protocol constant {name} resolves to different "
                    f"literals across definition sites ({rendering}); "
                    "writers and readers must share one value",
                )


@register_project
class VersionKeyLiteralCheck(ProjectCheck):
    """RPR702: bare literals in ``version`` keys and compares."""

    code = "RPR702"
    rationale = (
        "state_dict version keys must reference a named *_VERSION "
        "constant; bare literals drift apart from their reader"
    )

    def run(self, index: ProjectIndex) -> Iterator[Diagnostic]:
        """Yield literal-version diagnostics for every module."""
        for key, module, function in index.functions():
            for site in function.version_key_sites:
                if not site["is_literal"]:
                    continue
                where = (
                    "written with a bare literal"
                    if site["context"] == "dict"
                    else "compared against a bare literal"
                )
                yield self.diagnostic(
                    module.path,
                    site["lineno"],
                    site["col"],
                    f'"version" key {where}; reference the named '
                    "*_VERSION constant so writer and reader cannot "
                    "drift",
                )


@register_project
class DuplicateProtocolConstantCheck(ProjectCheck):
    """RPR703: the same protocol constant re-derived at many sites."""

    code = "RPR703"
    rationale = (
        "a protocol constant defined in several places is one edit "
        "away from drifting; import it from its owning module"
    )

    def run(self, index: ProjectIndex) -> Iterator[Diagnostic]:
        """Yield duplicate-definition diagnostics (equal values)."""
        for name, sites in sorted(_definition_sites(index).items()):
            values = {record["value_repr"] for _, record in sites}
            if len(sites) < 2 or len(values) != 1:
                continue  # conflicts are RPR701's to report
            for path, record in sites:
                yield self.diagnostic(
                    path,
                    record["lineno"],
                    record["col"],
                    f"protocol constant {name} is defined at "
                    f"{len(sites)} sites ({record['scope']} scope "
                    "here); keep one definition and import it so the "
                    "copies cannot drift",
                )


__all__ = [
    "DuplicateProtocolConstantCheck",
    "ProtocolConstantDriftCheck",
    "VersionKeyLiteralCheck",
]
