"""Interprocedural RPR201/RPR202: allocation reached through calls.

The per-file hot-path checks (:mod:`repro.devtools.checks.hotpath`)
see an allocation only when it sits lexically inside the loop.  The
easy dodge — wrap ``np.zeros`` in a helper and call the helper per
iteration — allocates exactly as much garbage.  These project checks
close the hole: a call inside a hot-path data loop whose callee (up
to three confident call-graph hops away) contains an allocating NumPy
constructor or builds per-call containers is flagged *at the call
site*, where the existing pragma/suppression machinery applies.
"""

from __future__ import annotations

from typing import Iterator

from repro.devtools.base import ProjectCheck, register_project
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.project import ProjectIndex

#: Call-graph depth searched below a hot-loop call site.
_MAX_DEPTH = 3


class _ReachableAllocationCheck(ProjectCheck):
    """Shared engine: flag hot-loop calls reaching allocations."""

    #: Allocation kind in the function summaries.
    kind = ""
    #: Message fragment naming what the callee does per call.
    what = ""

    def run(self, index: ProjectIndex) -> Iterator[Diagnostic]:
        """Yield interprocedural hot-path diagnostics."""
        for key, module, function in index.functions():
            if not module.is_hot_path:
                continue
            for call in function.calls:
                if not call["in_data_loop"]:
                    continue
                resolution = index.resolve_call(
                    module, function, call["dotted"]
                )
                if not resolution.confident:
                    continue
                for candidate in resolution.candidates:
                    found = index.allocations_reachable(
                        candidate, self.kind, max_depth=_MAX_DEPTH
                    )
                    if found is None:
                        continue
                    owner_key, allocation = found
                    owner = index.modules[owner_key.partition("::")[0]]
                    dotted = ".".join(call["dotted"])
                    yield self.diagnostic(
                        module.path,
                        call["lineno"],
                        call["col"],
                        f"{dotted}(...) in a hot-path loop reaches "
                        f"{allocation['detail']} ({owner.path}:"
                        f"{allocation['lineno']}) — {self.what}",
                    )
                    break


@register_project
class ReachableNumpyAllocationCheck(_ReachableAllocationCheck):
    """RPR201 (interprocedural): called helper allocates arrays."""

    code = "RPR201"
    rationale = (
        "allocating NumPy calls inside hot-path loops create "
        "per-iteration garbage; hoist the buffer or pass out="
    )
    kind = "numpy"
    what = "the callee allocates per call; hoist or pass out="


@register_project
class ReachableComprehensionCheck(_ReachableAllocationCheck):
    """RPR202 (interprocedural): called helper builds containers."""

    code = "RPR202"
    rationale = (
        "comprehensions inside hot-path loops build a fresh container "
        "per iteration; vectorize or hoist them"
    )
    kind = "comprehension"
    what = "the callee builds a container per call; vectorize or hoist"


__all__ = [
    "ReachableComprehensionCheck",
    "ReachableNumpyAllocationCheck",
]
