"""RPR6xx: resource/exception-safety for the durable runtime.

The serving runtime's crash story rests on three lifecycles: WAL
segment handles flush-and-close, pid-stamped ``OwnerLock`` files
release, and atomic writes stage a temp file *next to* its
destination before ``os.replace``.  Each is trivially correct on the
fall-through path and quietly wrong when an earlier statement raises:
a close skipped by an exception leaks the handle and wedges the next
open on a lock whose owner pid is still alive.  These checks resolve
receiver types through the project index (a ``service.wal.close()``
in the CLI is a ``WriteAheadLog`` release because ``runtime/service``
says so), then demand ``with``/``finally`` shaped release paths.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.devtools.base import ProjectCheck, register_project
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.project import (
    FunctionSummary,
    ModuleSummary,
    ProjectIndex,
)


def _tracked_class(
    index: ProjectIndex, module: ModuleSummary, classref: Optional[str]
) -> Optional[str]:
    """The lifecycle-table base name for a class reference, if any."""
    if not classref:
        return None
    base = classref.split(".")[-1]
    if base in index.config.resource_classes:
        return base
    return None


def _receiver_class(
    index: ProjectIndex,
    module: ModuleSummary,
    function: FunctionSummary,
    var: str,
) -> Optional[str]:
    """Resolve a release receiver ("x", "self.attr", "x.attr") to a
    lexical class reference via locals and indexed attribute types."""
    parts = var.split(".")
    head, attrs = parts[0], parts[1:]
    if head == "self" and function.class_name is not None:
        info = module.classes.get(function.class_name)
        if info is None or not attrs:
            return None
        current = info["attr_types"].get(attrs[0])
        attrs = attrs[1:]
    else:
        current = function.local_types.get(head)
    for attr in attrs:
        resolved = index.resolve_class(module, current)
        if resolved is None:
            return None
        owner = index.modules[resolved[0]]
        current = owner.classes[resolved[1]]["attr_types"].get(attr)
    return current


@register_project
class ScopedResourceCheck(ProjectCheck):
    """RPR601: locally-owned resources released only on fall-through."""

    code = "RPR601"
    rationale = (
        "a resource acquired and released in one function must "
        "release via with/finally on every control-flow path"
    )

    def run(self, index: ProjectIndex) -> Iterator[Diagnostic]:
        """Yield scoped-lifecycle diagnostics for every function."""
        for key, module, function in index.functions():
            events = function.resource_events
            for event in events:
                if event["kind"] != "acquire" or event["in_with"]:
                    continue
                if "." in event["var"]:
                    continue  # attribute stores transfer ownership
                tracked = _tracked_class(index, module, event["cls"])
                if tracked is None:
                    continue
                release_methods = index.config.resource_classes[tracked]
                releases = [
                    other
                    for other in events
                    if other["kind"] == "release"
                    and other["var"] == event["var"]
                    and other["method"] in release_methods
                    and other["lineno"] >= event["lineno"]
                ]
                if not releases:
                    continue  # ownership leaves the function
                if any(other["in_finally"] for other in releases):
                    continue
                yield self.diagnostic(
                    module.path,
                    event["lineno"],
                    event["col"],
                    f"{tracked} acquired here is released only on the "
                    "fall-through path (line "
                    f"{releases[0]['lineno']}); an exception in "
                    "between leaks it — use with or try/finally",
                )


@register_project
class TeardownOrderCheck(ProjectCheck):
    """RPR602: teardown releases skippable by an earlier raise."""

    code = "RPR602"
    rationale = (
        "teardown paths must release every tracked resource even "
        "when an earlier close/checkpoint raises; nest try/finally"
    )

    def run(self, index: ProjectIndex) -> Iterator[Diagnostic]:
        """Yield teardown-ordering diagnostics for teardown functions."""
        teardown_names = set(index.config.teardown_names)
        for key, module, function in index.functions():
            if function.name not in teardown_names:
                continue
            events = function.resource_events
            for position, event in enumerate(events):
                if event["kind"] != "release" or event["in_finally"]:
                    continue
                tracked = _tracked_class(
                    index,
                    module,
                    _receiver_class(index, module, function, event["var"]),
                )
                if tracked is None:
                    continue
                if event["method"] not in index.config.resource_classes[tracked]:
                    continue
                fallible_before = any(
                    earlier["lineno"] < event["lineno"]
                    for earlier in events[:position]
                    if earlier["kind"] in ("call", "release", "acquire")
                )
                if not fallible_before:
                    continue
                yield self.diagnostic(
                    module.path,
                    event["lineno"],
                    event["col"],
                    f"release of {event['var']} ({tracked}."
                    f"{event['method']}) is skipped if an earlier "
                    "statement raises; move it into a finally block",
                )


@register_project
class AtomicReplaceCheck(ProjectCheck):
    """RPR603: os.replace temp files staged outside the destination."""

    code = "RPR603"
    rationale = (
        "atomic-write temp files must be created in the destination "
        "directory; cross-filesystem os.replace is not atomic"
    )

    def run(self, index: ProjectIndex) -> Iterator[Diagnostic]:
        """Yield atomic-write diagnostics for every replace site."""
        for key, module, function in index.functions():
            for site in function.replace_sites:
                if site["tmp_kind"] not in (
                    "tempfile_default",
                    "foreign_literal",
                ):
                    continue
                reason = (
                    "tempfile defaults to the system temp directory"
                    if site["tmp_kind"] == "tempfile_default"
                    else "a /tmp path is on another filesystem"
                )
                yield self.diagnostic(
                    module.path,
                    site["lineno"],
                    site["col"],
                    f"os.replace temp file staged off-directory "
                    f"({reason}); create it next to the destination "
                    "(path.with_name(... + '.tmp')) so the rename "
                    "stays atomic",
                )


__all__ = [
    "AtomicReplaceCheck",
    "ScopedResourceCheck",
    "TeardownOrderCheck",
]
