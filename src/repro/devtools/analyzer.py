"""The analyzer: parse once, run every enabled check, apply noqa.

One :class:`FileContext` is built per file and shared by all checks, so
the cost per file is one ``ast.parse`` plus linear walks.  Suppression
accounting happens here rather than in the checks: a check never sees
noqa comments, and the analyzer owns the two meta-diagnostics (RPR001
malformed suppression, RPR002 stale suppression) that keep the
suppression inventory from rotting.
"""

from __future__ import annotations

import ast
import pathlib
from typing import Iterable, Iterator, List, NamedTuple, Optional, Sequence, Tuple

from repro.devtools.base import Check, FileContext, all_checks
from repro.devtools.config import CheckConfig
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.suppress import Suppression, scan_suppressions

#: Codes the analyzer emits itself (not backed by a Check subclass).
META_RATIONALES = {
    "RPR000": (
        "a file the checker cannot parse is a file whose invariants "
        "nobody is enforcing"
    ),
    "RPR001": (
        "suppressions must name a code: bare '# repro: noqa' hides "
        "future violations indiscriminately"
    ),
    "RPR002": (
        "a suppression that no longer silences anything is stale and "
        "must be removed"
    ),
}


class FileReport(NamedTuple):
    """Outcome of checking one file."""

    path: str
    diagnostics: List[Diagnostic]
    n_suppressed: int


def _code_matches(code: str, patterns: Sequence[str]) -> bool:
    """Prefix matching: ``RPR1`` selects every RPR1xx code."""
    return any(code.startswith(pattern) for pattern in patterns)


class Analyzer:
    """Run the registered checks over files with select/ignore filters.

    Args:
        config: where each check family applies.
        select: code prefixes to enable (default: all registered).
        ignore: code prefixes to disable (applied after ``select``).
    """

    def __init__(
        self,
        config: Optional[CheckConfig] = None,
        select: Optional[Sequence[str]] = None,
        ignore: Optional[Sequence[str]] = None,
    ) -> None:
        self.config = config or CheckConfig()
        self.select = tuple(select) if select else ("RPR",)
        self.ignore = tuple(ignore) if ignore else ()
        self.checks: List[Check] = [
            check_class()
            for check_class in all_checks()
            if self._enabled(check_class.code)
        ]

    def _enabled(self, code: str) -> bool:
        return _code_matches(code, self.select) and not _code_matches(
            code, self.ignore
        )

    # -- single file ----------------------------------------------------

    def check_source(self, path: str, source: str) -> FileReport:
        """Check one in-memory source blob (the unit the tests drive)."""
        suppressions = scan_suppressions(source)
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            line = error.lineno or 1
            col = (error.offset or 1) - 1
            return FileReport(
                path,
                [
                    Diagnostic(
                        path=path,
                        line=line,
                        col=max(col, 0),
                        code="RPR000",
                        message=f"syntax error: {error.msg}",
                    )
                ],
                0,
            )
        context = FileContext(path, source, tree, self.config)
        raw: List[Diagnostic] = []
        for check in self.checks:
            raw.extend(check.run(context))
        kept, n_suppressed = _apply_suppressions(raw, suppressions)
        kept.extend(self._meta_diagnostics(path, suppressions))
        return FileReport(path, sorted(kept), n_suppressed)

    def check_file(self, path: pathlib.Path) -> FileReport:
        """Check one file on disk."""
        return self.check_source(str(path), path.read_text())

    def _meta_diagnostics(
        self, path: str, suppressions: List[Suppression]
    ) -> Iterator[Diagnostic]:
        for suppression in suppressions:
            if suppression.malformed and self._enabled("RPR001"):
                yield Diagnostic(
                    path=path,
                    line=suppression.line,
                    col=suppression.col,
                    code="RPR001",
                    message=(
                        "suppression must name its code(s): "
                        "# repro: noqa[RPRnnn]"
                    ),
                )
            elif (
                not suppression.malformed
                and not suppression.used
                and self._enabled("RPR002")
            ):
                yield Diagnostic(
                    path=path,
                    line=suppression.line,
                    col=suppression.col,
                    code="RPR002",
                    message=(
                        "stale suppression: "
                        f"[{', '.join(sorted(suppression.codes))}] "
                        "silences nothing on this line"
                    ),
                )


def _apply_suppressions(
    diagnostics: List[Diagnostic], suppressions: List[Suppression]
) -> Tuple[List[Diagnostic], int]:
    kept: List[Diagnostic] = []
    n_suppressed = 0
    for diagnostic in diagnostics:
        silenced = False
        for suppression in suppressions:
            if suppression.suppresses(diagnostic.line, diagnostic.code):
                suppression.used = True
                silenced = True
        if silenced:
            n_suppressed += 1
        else:
            kept.append(diagnostic)
    return kept, n_suppressed


# -- directory walking ----------------------------------------------------

#: Directory names never descended into.
_SKIP_DIRS = frozenset(
    {".git", "__pycache__", ".ruff_cache", ".pytest_cache", "build", "dist"}
)


def iter_python_files(paths: Sequence[str]) -> Iterator[pathlib.Path]:
    """Yield ``.py`` files under ``paths`` (files pass through as-is)."""
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_file():
            yield path
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    yield candidate
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")


def check_paths(
    paths: Iterable[str],
    config: Optional[CheckConfig] = None,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> Tuple[List[Diagnostic], int, int]:
    """Check files/directories; return (diagnostics, n_files, n_suppressed)."""
    analyzer = Analyzer(config=config, select=select, ignore=ignore)
    diagnostics: List[Diagnostic] = []
    n_files = 0
    n_suppressed = 0
    for path in iter_python_files(list(paths)):
        report = analyzer.check_file(path)
        diagnostics.extend(report.diagnostics)
        n_files += 1
        n_suppressed += report.n_suppressed
    return sorted(diagnostics), n_files, n_suppressed
