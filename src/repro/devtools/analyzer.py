"""The analyzer: parse once, run every enabled check, apply noqa.

One :class:`FileContext` is built per file and shared by all per-file
checks, so the cost per file is one ``ast.parse`` plus linear walks.
The same parse also feeds :func:`summarize_module`, whose summaries
assemble into the :class:`ProjectIndex` the whole-program checks
(RPR5xx/6xx/7xx, interprocedural RPR201/202) query after every file
has been scanned.  Suppression accounting happens here rather than in
the checks: a check never sees noqa comments, and the analyzer owns
the two meta-diagnostics (RPR001 malformed suppression, RPR002 stale
suppression) that keep the suppression inventory from rotting.
Project diagnostics anchor at the flagged file's own lines, so the
same per-line suppressions silence them.
"""

from __future__ import annotations

import ast
import pathlib
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from repro.devtools.base import (
    Check,
    FileContext,
    ProjectCheck,
    all_checks,
    all_project_checks,
)
from repro.devtools.cache import FileEntry, IndexCache
from repro.devtools.config import CheckConfig
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.project import ModuleSummary, ProjectIndex, summarize_module
from repro.devtools.suppress import Suppression, scan_suppressions

#: Codes the analyzer emits itself (not backed by a Check subclass).
META_RATIONALES = {
    "RPR000": (
        "a file the checker cannot parse is a file whose invariants "
        "nobody is enforcing"
    ),
    "RPR001": (
        "suppressions must name a code: bare '# repro: noqa' hides "
        "future violations indiscriminately"
    ),
    "RPR002": (
        "a suppression that no longer silences anything is stale and "
        "must be removed"
    ),
}


class FileReport(NamedTuple):
    """Outcome of checking one file."""

    path: str
    diagnostics: List[Diagnostic]
    n_suppressed: int


class FileScan(NamedTuple):
    """Per-file scan products, before any cross-file phase runs.

    Everything here is a pure function of (source bytes, analyzer
    configuration), which is what makes it safe to cache.
    """

    suppressions: List[Suppression]
    diagnostics: List[Diagnostic]
    summary: Optional[ModuleSummary]


class CheckReport(NamedTuple):
    """Outcome of a whole run, including cache effectiveness."""

    diagnostics: List[Diagnostic]
    n_files: int
    n_suppressed: int
    files_parsed: int
    files_cached: int


def _code_matches(code: str, patterns: Sequence[str]) -> bool:
    """Prefix matching: ``RPR1`` selects every RPR1xx code."""
    return any(code.startswith(pattern) for pattern in patterns)


class Analyzer:
    """Run the registered checks over files with select/ignore filters.

    Args:
        config: where each check family applies.
        select: code prefixes to enable (default: all registered).
        ignore: code prefixes to disable (applied after ``select``).
    """

    def __init__(
        self,
        config: Optional[CheckConfig] = None,
        select: Optional[Sequence[str]] = None,
        ignore: Optional[Sequence[str]] = None,
    ) -> None:
        self.config = config or CheckConfig()
        self.select = tuple(select) if select else ("RPR",)
        self.ignore = tuple(ignore) if ignore else ()
        self.checks: List[Check] = [
            check_class()
            for check_class in all_checks()
            if self._enabled(check_class.code)
        ]
        self.project_checks: List[ProjectCheck] = [
            check_class()
            for check_class in all_project_checks()
            if self._enabled(check_class.code)
        ]

    def _enabled(self, code: str) -> bool:
        return _code_matches(code, self.select) and not _code_matches(
            code, self.ignore
        )

    # -- single file ----------------------------------------------------

    def scan_source(self, path: str, source: str) -> FileScan:
        """Scan one file: suppressions, per-file diagnostics, summary.

        This is the cacheable unit — no cross-file knowledge enters.
        Diagnostics come back *pre-suppression* so a cached file can
        still participate in staleness accounting on a later run.
        """
        suppressions = scan_suppressions(source)
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            line = error.lineno or 1
            col = (error.offset or 1) - 1
            return FileScan(
                suppressions,
                [
                    Diagnostic(
                        path=path,
                        line=line,
                        col=max(col, 0),
                        code="RPR000",
                        message=f"syntax error: {error.msg}",
                    )
                ],
                None,
            )
        context = FileContext(path, source, tree, self.config)
        raw: List[Diagnostic] = []
        for check in self.checks:
            raw.extend(check.run(context))
        summary = summarize_module(path, source, tree, self.config)
        return FileScan(suppressions, raw, summary)

    def run_project_checks(self, index: ProjectIndex) -> List[Diagnostic]:
        """All whole-program diagnostics over an assembled index."""
        diagnostics: List[Diagnostic] = []
        for check in self.project_checks:
            diagnostics.extend(check.run(index))
        return diagnostics

    def check_source(self, path: str, source: str) -> FileReport:
        """Check one in-memory source blob (the unit the tests drive).

        Project checks run against a single-module index, so the
        cross-module codes still fire on self-contained fixtures.
        """
        scan = self.scan_source(path, source)
        raw = list(scan.diagnostics)
        if scan.summary is not None:
            index = ProjectIndex(self.config)
            index.add(scan.summary)
            raw.extend(self.run_project_checks(index))
        kept, n_suppressed = _apply_suppressions(raw, scan.suppressions)
        kept.extend(self._meta_diagnostics(path, scan.suppressions))
        return FileReport(path, sorted(kept), n_suppressed)

    def check_file(self, path: pathlib.Path) -> FileReport:
        """Check one file on disk."""
        return self.check_source(str(path), path.read_text())

    def _meta_diagnostics(
        self, path: str, suppressions: List[Suppression]
    ) -> Iterator[Diagnostic]:
        for suppression in suppressions:
            if suppression.malformed and self._enabled("RPR001"):
                yield Diagnostic(
                    path=path,
                    line=suppression.line,
                    col=suppression.col,
                    code="RPR001",
                    message=(
                        "suppression must name its code(s): "
                        "# repro: noqa[RPRnnn]"
                    ),
                )
            elif (
                not suppression.malformed
                and not suppression.used
                and self._enabled("RPR002")
            ):
                yield Diagnostic(
                    path=path,
                    line=suppression.line,
                    col=suppression.col,
                    code="RPR002",
                    message=(
                        "stale suppression: "
                        f"[{', '.join(sorted(suppression.codes))}] "
                        "silences nothing on this line"
                    ),
                )


def _apply_suppressions(
    diagnostics: List[Diagnostic], suppressions: List[Suppression]
) -> Tuple[List[Diagnostic], int]:
    kept: List[Diagnostic] = []
    n_suppressed = 0
    for diagnostic in diagnostics:
        silenced = False
        for suppression in suppressions:
            if suppression.suppresses(diagnostic.line, diagnostic.code):
                suppression.used = True
                silenced = True
        if silenced:
            n_suppressed += 1
        else:
            kept.append(diagnostic)
    return kept, n_suppressed


# -- directory walking ----------------------------------------------------

#: Directory names never descended into.
_SKIP_DIRS = frozenset(
    {".git", "__pycache__", ".ruff_cache", ".pytest_cache", "build", "dist"}
)


def iter_python_files(paths: Sequence[str]) -> Iterator[pathlib.Path]:
    """Yield ``.py`` files under ``paths`` (files pass through as-is)."""
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_file():
            yield path
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    yield candidate
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")


def run_check(
    paths: Iterable[str],
    config: Optional[CheckConfig] = None,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    cache_dir: Optional[pathlib.Path] = None,
) -> CheckReport:
    """Check files/directories with the full whole-program pipeline.

    Phase 1 scans each file (cache-aware when ``cache_dir`` is set):
    suppressions, per-file diagnostics, module summary.  Phase 2
    assembles every summary into one :class:`ProjectIndex` and runs
    the project checks.  Phase 3 merges both diagnostic streams per
    file, applies that file's suppressions to the union, and emits
    meta-diagnostics — so a noqa comment silences a cross-module
    finding exactly as it silences a per-file one.
    """
    analyzer = Analyzer(config=config, select=select, ignore=ignore)
    cache: Optional[IndexCache] = None
    if cache_dir is not None:
        cache = IndexCache(
            cache_dir,
            (
                ",".join(analyzer.select),
                ",".join(analyzer.ignore),
                analyzer.config.fingerprint(),
            ),
        )

    scans: List[Tuple[str, FileScan]] = []
    files_parsed = 0
    files_cached = 0
    for path in iter_python_files(list(paths)):
        key = str(path)
        entry: Optional[FileEntry] = None
        stat = None
        if cache is not None:
            try:
                stat = path.stat()
            except OSError:
                stat = None
            if stat is not None:
                entry = cache.get(key, stat.st_mtime_ns, stat.st_size)
        if entry is not None:
            files_cached += 1
            scans.append(
                (key, FileScan(entry.suppressions, entry.diagnostics, entry.summary))
            )
            continue
        scan = analyzer.scan_source(key, path.read_text())
        files_parsed += 1
        scans.append((key, scan))
        if cache is not None and stat is not None:
            cache.put(
                key,
                FileEntry(
                    mtime_ns=stat.st_mtime_ns,
                    size=stat.st_size,
                    suppressions=scan.suppressions,
                    diagnostics=scan.diagnostics,
                    summary=scan.summary,
                ),
            )
    if cache is not None:
        cache.save()

    index = ProjectIndex(analyzer.config)
    for _, scan in scans:
        if scan.summary is not None:
            index.add(scan.summary)
    project_by_path: Dict[str, List[Diagnostic]] = {}
    for diagnostic in analyzer.run_project_checks(index):
        project_by_path.setdefault(diagnostic.path, []).append(diagnostic)

    diagnostics: List[Diagnostic] = []
    n_suppressed = 0
    for key, scan in scans:
        merged = list(scan.diagnostics)
        merged.extend(project_by_path.get(key, ()))
        kept, suppressed = _apply_suppressions(merged, scan.suppressions)
        kept.extend(analyzer._meta_diagnostics(key, scan.suppressions))
        diagnostics.extend(kept)
        n_suppressed += suppressed
    return CheckReport(
        sorted(diagnostics),
        len(scans),
        n_suppressed,
        files_parsed,
        files_cached,
    )


def check_paths(
    paths: Iterable[str],
    config: Optional[CheckConfig] = None,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> Tuple[List[Diagnostic], int, int]:
    """Check files/directories; return (diagnostics, n_files, n_suppressed)."""
    report = run_check(paths, config=config, select=select, ignore=ignore)
    return report.diagnostics, report.n_files, report.n_suppressed
