"""Static analysis: the repo's invariants as CI-gated checks.

PRs 1-3 established contracts that reviewers were enforcing by hand:
bitwise float64 parity demands injected, seeded RNGs; the streaming
engine's throughput depends on hot-path loops staying allocation-free;
telemetry must publish at batch boundaries, never per message; and the
public API must stay typed and documented so downstream automation can
trust it.  ``repro.devtools`` turns each contract into an AST check
with a ruff-like diagnostic code:

* ``RPR1xx`` -- determinism (no entropy-seeded or global RNGs, no
  wall-clock reads in library code);
* ``RPR2xx`` -- hot-path discipline (no in-loop array allocation or
  per-item comprehensions in designated modules);
* ``RPR3xx`` -- telemetry discipline (no metric writes inside per-item
  loops of instrumented modules);
* ``RPR4xx`` -- API hygiene (annotations, docstrings, resolvable
  ``__all__``);
* ``RPR0xx`` -- checker usage (malformed or stale suppressions).

Run it as ``python -m repro check [paths]``; suppress an intentional
violation inline with ``# repro: noqa[RPRnnn]`` (the code is
mandatory).  A module outside the configured hot-path list can opt into
the RPR2xx checks with a ``# repro: hot-path`` pragma comment.
"""

from repro.devtools.analyzer import Analyzer, check_paths, iter_python_files
from repro.devtools.base import Check, all_checks, get_check, registered_codes
from repro.devtools.config import CheckConfig
from repro.devtools.diagnostics import Diagnostic, diagnostics_to_json

__all__ = [
    "Analyzer",
    "Check",
    "CheckConfig",
    "Diagnostic",
    "all_checks",
    "check_paths",
    "diagnostics_to_json",
    "get_check",
    "iter_python_files",
    "registered_codes",
]
