"""Static analysis: the repo's invariants as CI-gated checks.

PRs 1-3 established contracts that reviewers were enforcing by hand:
bitwise float64 parity demands injected, seeded RNGs; the streaming
engine's throughput depends on hot-path loops staying allocation-free;
telemetry must publish at batch boundaries, never per message; and the
public API must stay typed and documented so downstream automation can
trust it.  ``repro.devtools`` turns each contract into an AST check
with a ruff-like diagnostic code:

* ``RPR1xx`` -- determinism (no entropy-seeded or global RNGs, no
  wall-clock reads in library code);
* ``RPR2xx`` -- hot-path discipline (no in-loop array allocation or
  per-item comprehensions in designated modules, including helpers
  reached *through* the call graph from a hot loop);
* ``RPR3xx`` -- telemetry discipline (no metric writes inside per-item
  loops of instrumented modules);
* ``RPR4xx`` -- API hygiene (annotations, docstrings, resolvable
  ``__all__``);
* ``RPR5xx`` -- fork/process safety (no module-level mutable state
  reachable from worker entrypoints, only codec-safe payloads over
  multiprocessing pipes, no fork after thread creation);
* ``RPR6xx`` -- resource/exception safety (WAL handles, owner locks
  and tick writers released on every control-flow path; atomic-write
  temp files staged in the destination directory);
* ``RPR7xx`` -- protocol-version drift (``*_MAGIC``/``*_VERSION``
  constants resolve to one literal at writer and reader sites);
* ``RPR0xx`` -- checker usage (malformed or stale suppressions).

The RPR1-4xx families are per-file checks over one ``ast`` tree.  The
RPR5-7xx families (and the interprocedural half of RPR2xx) are *whole
program* checks: every file is summarized once into a
:class:`~repro.devtools.project.ProjectIndex` — symbol table, import
graph, conservative call graph — and the checks query the assembled
index.  Summaries are JSON-serializable, so warm runs rehydrate
unchanged files from an on-disk cache instead of re-parsing.

Run it as ``python -m repro check [paths]`` (``--format text|json|
sarif``, ``--no-cache``); suppress an intentional violation inline
with ``# repro: noqa[RPRnnn]`` (the code is mandatory).  A module
outside the configured hot-path list can opt into the RPR2xx checks
with a ``# repro: hot-path`` pragma comment.
"""

from repro.devtools.analyzer import (
    Analyzer,
    CheckReport,
    check_paths,
    iter_python_files,
    run_check,
)
from repro.devtools.base import (
    Check,
    ProjectCheck,
    all_checks,
    all_project_checks,
    get_check,
    registered_codes,
)
from repro.devtools.cache import IndexCache, default_cache_dir
from repro.devtools.config import CheckConfig
from repro.devtools.diagnostics import Diagnostic, diagnostics_to_json
from repro.devtools.project import ProjectIndex, summarize_module
from repro.devtools.sarif import diagnostics_to_sarif

__all__ = [
    "Analyzer",
    "Check",
    "CheckConfig",
    "CheckReport",
    "Diagnostic",
    "IndexCache",
    "ProjectCheck",
    "ProjectIndex",
    "all_checks",
    "all_project_checks",
    "check_paths",
    "default_cache_dir",
    "diagnostics_to_json",
    "diagnostics_to_sarif",
    "get_check",
    "iter_python_files",
    "registered_codes",
    "run_check",
    "summarize_module",
]
