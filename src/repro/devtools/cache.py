"""The project-index cache: warm ``repro check`` runs skip parsing.

A run's per-file work — suppression scan, per-file diagnostics, the
:class:`~repro.devtools.project.ModuleSummary` — depends only on that
file's bytes plus the (config, select, ignore) the analyzer ran with.
The cache therefore keys one JSON document per analyzer configuration
(hashed into the filename) and, inside it, one entry per file keyed
by ``(mtime_ns, size)``.  A warm run rehydrates unchanged files from
JSON and re-runs only the cheap cross-file phases (project checks,
suppression application), which is where the warm-run speedup the
benchmark test pins comes from.

The cache lives outside the checked tree (``~/.cache/repro-check``,
overridable via ``REPRO_CHECK_CACHE_DIR``) so checking never dirties
a checkout, and every failure mode — unreadable file, stale schema,
torn write — degrades to a cold parse, never to a wrong report.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import Any, Dict, List, Optional, Sequence

from repro.devtools.diagnostics import Diagnostic
from repro.devtools.project import ModuleSummary
from repro.devtools.suppress import Suppression

#: Bumped whenever summaries, diagnostics or this file's layout
#: change shape; old documents are ignored wholesale.
CACHE_SCHEMA = 1

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_CHECK_CACHE_DIR"


def default_cache_dir() -> Optional[pathlib.Path]:
    """The cache directory for CLI runs (None disables caching)."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return pathlib.Path(override)
    try:
        home = pathlib.Path.home()
    except (RuntimeError, OSError):
        return None
    return home / ".cache" / "repro-check"


class FileEntry:
    """One cached file: stat key plus the per-file scan products."""

    __slots__ = ("mtime_ns", "size", "suppressions", "diagnostics", "summary")

    def __init__(
        self,
        mtime_ns: int,
        size: int,
        suppressions: List[Suppression],
        diagnostics: List[Diagnostic],
        summary: Optional[ModuleSummary],
    ) -> None:
        self.mtime_ns = mtime_ns
        self.size = size
        self.suppressions = suppressions
        self.diagnostics = diagnostics
        self.summary = summary


def _suppression_to_dict(suppression: Suppression) -> Dict[str, Any]:
    return {
        "line": suppression.line,
        "col": suppression.col,
        "codes": sorted(suppression.codes),
        "malformed": suppression.malformed,
    }


def _suppression_from_dict(data: Dict[str, Any]) -> Suppression:
    return Suppression(
        line=data["line"],
        col=data["col"],
        codes=set(data["codes"]),
        malformed=data["malformed"],
    )


def _diagnostic_to_dict(diagnostic: Diagnostic) -> Dict[str, Any]:
    return {
        "path": diagnostic.path,
        "line": diagnostic.line,
        "col": diagnostic.col,
        "code": diagnostic.code,
        "message": diagnostic.message,
    }


def _diagnostic_from_dict(data: Dict[str, Any]) -> Diagnostic:
    return Diagnostic(
        path=data["path"],
        line=data["line"],
        col=data["col"],
        code=data["code"],
        message=data["message"],
    )


class IndexCache:
    """Load/store per-file scan products for one analyzer key."""

    def __init__(
        self, directory: pathlib.Path, key_parts: Sequence[str]
    ) -> None:
        self.directory = directory
        digest = hashlib.sha256(
            json.dumps([CACHE_SCHEMA, *key_parts]).encode()
        ).hexdigest()[:24]
        self.path = directory / f"index-{digest}.json"
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            document = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return
        if document.get("schema") != CACHE_SCHEMA:
            return
        files = document.get("files")
        if isinstance(files, dict):
            self._entries = files

    def get(self, path: str, mtime_ns: int, size: int) -> Optional[FileEntry]:
        """The cached entry for ``path`` if its stat key still matches."""
        raw = self._entries.get(path)
        if raw is None:
            return None
        if raw.get("mtime_ns") != mtime_ns or raw.get("size") != size:
            return None
        try:
            summary_raw = raw["summary"]
            return FileEntry(
                mtime_ns=mtime_ns,
                size=size,
                suppressions=[
                    _suppression_from_dict(item)
                    for item in raw["suppressions"]
                ],
                diagnostics=[
                    _diagnostic_from_dict(item)
                    for item in raw["diagnostics"]
                ],
                summary=(
                    ModuleSummary.from_dict(summary_raw)
                    if summary_raw is not None
                    else None
                ),
            )
        except (KeyError, TypeError):
            return None

    def put(self, path: str, entry: FileEntry) -> None:
        """Record a freshly parsed file's scan products."""
        self._entries[path] = {
            "mtime_ns": entry.mtime_ns,
            "size": entry.size,
            "suppressions": [
                _suppression_to_dict(item) for item in entry.suppressions
            ],
            "diagnostics": [
                _diagnostic_to_dict(item) for item in entry.diagnostics
            ],
            "summary": (
                entry.summary.to_dict() if entry.summary is not None else None
            ),
        }
        self._dirty = True

    def save(self) -> None:
        """Persist atomically; cache-write failures are non-fatal."""
        if not self._dirty:
            return
        document = {"schema": CACHE_SCHEMA, "files": self._entries}
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            tmp = self.path.with_name(self.path.name + ".tmp")
            tmp.write_text(json.dumps(document))
            os.replace(tmp, self.path)
        except OSError:
            return
        self._dirty = False


__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_SCHEMA",
    "FileEntry",
    "IndexCache",
    "default_cache_dir",
]
