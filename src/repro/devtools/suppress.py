"""Inline suppression comments: ``# repro: noqa[RPRnnn]``.

A suppression silences diagnostics of the named codes on its physical
line (for a multi-line statement, the line the diagnostic anchors to --
the statement's first line).  The code is mandatory: a bare
``# repro: noqa`` is itself a diagnostic (RPR001), and a suppression
that silences nothing is stale (RPR002) -- both keep the suppression
inventory honest as the code underneath changes.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Iterator, List, Set, Tuple

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?P<codes>\[(?P<body>[^\]]*)\])?",
    re.IGNORECASE,
)
_CODE_RE = re.compile(r"^RPR\d{3}$")


@dataclass
class Suppression:
    """One ``# repro: noqa[...]`` comment.

    Attributes:
        line: 1-based line the comment sits on (and silences).
        col: 0-based column of the comment.
        codes: the codes it names (empty when bare/malformed).
        malformed: True for a bare ``noqa`` or an unparseable code list.
        used: set by the analyzer when a diagnostic was silenced.
    """

    line: int
    col: int
    codes: Set[str] = field(default_factory=set)
    malformed: bool = False
    used: bool = False

    def suppresses(self, line: int, code: str) -> bool:
        """Whether this comment silences ``code`` on ``line``."""
        return line == self.line and code in self.codes


def scan_suppressions(source: str) -> List[Suppression]:
    """All suppression comments in ``source``, in line order.

    Scans real ``COMMENT`` tokens (so prose inside docstrings that
    *mentions* the directive is not a directive), falling back to a
    per-line regex when the file does not tokenize -- the analyzer
    still reports a syntax diagnostic for such files, but suppression
    scanning must never raise.
    """
    suppressions: List[Suppression] = []
    for lineno, col, text in _comment_tokens(source):
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        codes, malformed = _parse_codes(match)
        suppressions.append(
            Suppression(
                line=lineno,
                col=col + match.start(),
                codes=codes,
                malformed=malformed,
            )
        )
    return suppressions


def _comment_tokens(source: str) -> Iterator[Tuple[int, int, str]]:
    """(line, col, text) of each comment; line-based regex fallback."""
    try:
        tokens = list(
            tokenize.generate_tokens(io.StringIO(source).readline)
        )
    except (tokenize.TokenError, SyntaxError, IndentationError):
        for lineno, line in enumerate(source.splitlines(), start=1):
            index = line.find("#")
            if index >= 0:
                yield lineno, index, line[index:]
        return
    for token in tokens:
        if token.type == tokenize.COMMENT:
            yield token.start[0], token.start[1], token.string


def _parse_codes(match: "re.Match[str]") -> Tuple[Set[str], bool]:
    if match.group("codes") is None:
        return set(), True
    codes: Set[str] = set()
    for raw in match.group("body").split(","):
        code = raw.strip().upper()
        if not code or not _CODE_RE.match(code):
            return set(), True
        codes.add(code)
    if not codes:
        return set(), True
    return codes, False
