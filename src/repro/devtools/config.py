"""Checker configuration: which modules carry which contracts.

The defaults encode the repo's current contracts; tests construct
custom :class:`CheckConfig` instances to point the checks at fixture
files instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

#: Modules whose loops must stay allocation-free (the RPR2xx checks).
#: Matched as path suffixes with either separator style.
HOT_PATH_MODULES: Tuple[str, ...] = (
    "repro/nn/lstm.py",
    "repro/nn/gru.py",
    "repro/nn/quant.py",
    "repro/core/stream.py",
    "repro/logs/templates.py",
    "repro/runtime/codec.py",
)

#: Per-code path-suffix allowlist: locations where a check does not
#: apply because the contract is theirs to implement.  The telemetry
#: module owns wall-clock reads (it *is* the instrumentation layer),
#: and the CLI owns operator-facing entropy (none today, kept for the
#: principle that allowlisting is config, not suppression comments).
ALLOWLIST: Dict[str, Tuple[str, ...]] = {
    "RPR104": ("repro/telemetry.py",),
}

#: Pragma comment designating a module as hot-path without editing the
#: configured list (used by out-of-tree modules and test fixtures).
HOT_PATH_PRAGMA = "# repro: hot-path"


def _normalize(path: str) -> str:
    return path.replace("\\", "/")


@dataclass(frozen=True)
class CheckConfig:
    """Where each check family applies.

    Attributes:
        hot_path_modules: path suffixes of modules under the RPR2xx
            allocation discipline (plus any file carrying the
            ``# repro: hot-path`` pragma).
        allowlist: per-code path suffixes exempt from that code.
    """

    hot_path_modules: Tuple[str, ...] = HOT_PATH_MODULES
    allowlist: Dict[str, Tuple[str, ...]] = field(
        default_factory=lambda: dict(ALLOWLIST)
    )

    def is_hot_path(self, path: str, source: str) -> bool:
        """Whether ``path`` is under the hot-path allocation contract."""
        normalized = _normalize(path)
        if any(normalized.endswith(_normalize(suffix)) for suffix in self.hot_path_modules):
            return True
        return any(
            line.strip() == HOT_PATH_PRAGMA for line in source.splitlines()
        )

    def is_allowlisted(self, code: str, path: str) -> bool:
        """Whether ``path`` is exempt from ``code`` by configuration."""
        normalized = _normalize(path)
        return any(
            normalized.endswith(_normalize(suffix))
            for suffix in self.allowlist.get(code, ())
        )
