"""Checker configuration: which modules carry which contracts.

The defaults encode the repo's current contracts; tests construct
custom :class:`CheckConfig` instances to point the checks at fixture
files instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

#: Modules whose loops must stay allocation-free (the RPR2xx checks).
#: Matched as path suffixes with either separator style.
HOT_PATH_MODULES: Tuple[str, ...] = (
    "repro/nn/lstm.py",
    "repro/nn/gru.py",
    "repro/nn/quant.py",
    "repro/core/stream.py",
    "repro/logs/templates.py",
    "repro/runtime/codec.py",
)

#: Per-code path-suffix allowlist: locations where a check does not
#: apply because the contract is theirs to implement.  The telemetry
#: module owns wall-clock reads (it *is* the instrumentation layer),
#: and the CLI owns operator-facing entropy (none today, kept for the
#: principle that allowlisting is config, not suppression comments).
ALLOWLIST: Dict[str, Tuple[str, ...]] = {
    "RPR104": ("repro/telemetry.py",),
}

#: Pragma comment designating a module as hot-path without editing the
#: configured list (used by out-of-tree modules and test fixtures).
HOT_PATH_PRAGMA = "# repro: hot-path"

#: Function names that run as forked worker processes (the RPR5xx
#: shared-nothing contract applies to everything reachable from them).
WORKER_ENTRYPOINTS: Tuple[str, ...] = (
    "_worker_main",
    "_fine_tune_worker",
)

#: Project classes allowed across multiprocessing pipes / spawn args.
#: ``_WorkerSpec`` is a frozen dataclass of primitives: it pickles
#: bit-stably and carries no handles, so shipping it to a worker is
#: the designed hand-off, not a leak of live state.
PIPE_SAFE_CLASSES: Tuple[str, ...] = ("_WorkerSpec",)

#: Resource classes tracked by the RPR6xx lifecycle checks, mapped to
#: the method(s) that release them.  ``open`` is the builtin file
#: constructor; the rest are matched by class base name project-wide.
RESOURCE_CLASSES: Dict[str, Tuple[str, ...]] = {
    "open": ("close",),
    "WriteAheadLog": ("close",),
    "OwnerLock": ("release",),
    "MonitorService": ("close",),
    "FleetCoordinator": ("close",),
    "_TickWriter": ("close",),
    "_ShardTickWriter": ("close",),
}

#: Function names treated as teardown paths: every tracked release
#: inside them must survive an earlier statement raising (RPR602).
TEARDOWN_NAMES: Tuple[str, ...] = (
    "close",
    "release",
    "stop",
    "shutdown",
    "abort",
    "_abort",
    "__exit__",
    "__del__",
)

#: Name suffixes marking a module/class constant as a protocol
#: constant (record magic bytes, codec/schema version tags) under the
#: RPR7xx drift checks.
PROTOCOL_CONSTANT_SUFFIXES: Tuple[str, ...] = ("_MAGIC", "_VERSION")


def _normalize(path: str) -> str:
    return path.replace("\\", "/")


@dataclass(frozen=True)
class CheckConfig:
    """Where each check family applies.

    Attributes:
        hot_path_modules: path suffixes of modules under the RPR2xx
            allocation discipline (plus any file carrying the
            ``# repro: hot-path`` pragma).
        allowlist: per-code path suffixes exempt from that code.
        worker_entrypoints: function names whose bodies run inside
            forked worker processes (roots of the RPR5xx reachability
            pass).
        pipe_safe_classes: class base names cleared to cross
            multiprocessing pipes and spawn args (RPR502).
        resource_classes: resource class base name -> release method
            names, the lifecycle table behind RPR601/RPR602.
        teardown_names: function names whose releases must be
            exception-safe (RPR602).
        protocol_constant_suffixes: constant-name suffixes under the
            RPR7xx protocol-drift contract.
    """

    hot_path_modules: Tuple[str, ...] = HOT_PATH_MODULES
    allowlist: Dict[str, Tuple[str, ...]] = field(
        default_factory=lambda: dict(ALLOWLIST)
    )
    worker_entrypoints: Tuple[str, ...] = WORKER_ENTRYPOINTS
    pipe_safe_classes: Tuple[str, ...] = PIPE_SAFE_CLASSES
    resource_classes: Dict[str, Tuple[str, ...]] = field(
        default_factory=lambda: dict(RESOURCE_CLASSES)
    )
    teardown_names: Tuple[str, ...] = TEARDOWN_NAMES
    protocol_constant_suffixes: Tuple[str, ...] = (
        PROTOCOL_CONSTANT_SUFFIXES
    )

    def is_hot_path(self, path: str, source: str) -> bool:
        """Whether ``path`` is under the hot-path allocation contract."""
        normalized = _normalize(path)
        if any(normalized.endswith(_normalize(suffix)) for suffix in self.hot_path_modules):
            return True
        return any(
            line.strip() == HOT_PATH_PRAGMA for line in source.splitlines()
        )

    def is_allowlisted(self, code: str, path: str) -> bool:
        """Whether ``path`` is exempt from ``code`` by configuration."""
        normalized = _normalize(path)
        return any(
            normalized.endswith(_normalize(suffix))
            for suffix in self.allowlist.get(code, ())
        )

    def fingerprint(self) -> str:
        """A stable string over every field (the cache key input)."""
        parts = [
            repr(self.hot_path_modules),
            repr(sorted(self.allowlist.items())),
            repr(self.worker_entrypoints),
            repr(self.pipe_safe_classes),
            repr(sorted(self.resource_classes.items())),
            repr(self.teardown_names),
            repr(self.protocol_constant_suffixes),
        ]
        return "|".join(parts)
