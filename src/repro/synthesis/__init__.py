"""Synthetic NFV deployment: the proprietary-data substitute.

The paper's dataset — 18 months of syslogs and trouble tickets from 38
production vPEs — is proprietary.  This package builds the closest
synthetic equivalent that exercises the same code paths:

* :mod:`repro.synthesis.catalog` — a catalog of realistic router
  syslog templates (routing daemons, chassis, VM layer, physical
  layer), including per-root-cause fault *symptom* templates;
* :mod:`repro.synthesis.profiles` — per-vPE role profiles controlling
  template mix and log rate (vPE diversity, Figure 3), plus a pPE
  profile with the physical-layer messages vPEs lose (section 2);
* :mod:`repro.synthesis.markov` — sequential log generation with a
  learnable Markov structure (what the LSTM models);
* :mod:`repro.synthesis.faults` — fault processes per root cause that
  emit symptom bursts *before* monitoring signals, reproducing the
  "symptoms precede tickets" structure of Figure 8;
* :mod:`repro.synthesis.maintenance` — scheduled maintenance windows;
* :mod:`repro.synthesis.updates` — software updates that shift the
  syslog distribution (section 3.3, Figure 7);
* :mod:`repro.synthesis.fleet` — the end-to-end fleet driver;
* :mod:`repro.synthesis.soak` — the software-update-drift soak
  preset the auto-adaptation CI drill serves through;
* :mod:`repro.synthesis.dataset` — the assembled dataset object the
  experiments consume.

Everything is seeded: the same configuration reproduces the same
trace bit-for-bit.
"""

from repro.synthesis.catalog import (
    FAULT_SYMPTOM_TEMPLATES,
    PHYSICAL_TEMPLATES,
    ROUTINE_TEMPLATES,
    LogTemplateSpec,
)
from repro.synthesis.correlated import (
    GroundTruthIncident,
    plan_correlated_outages,
    read_incidents,
    write_incidents,
)
from repro.synthesis.dataset import FleetDataset
from repro.synthesis.fleet import FleetSimulator, SimulationConfig
from repro.synthesis.kpi import (
    KpiSample,
    KpiSimulator,
    KpiThresholdDetector,
)
from repro.synthesis.outage import correlated_outage_config
from repro.synthesis.profiles import VpeProfile, build_fleet_profiles
from repro.synthesis.soak import update_soak_config
from repro.synthesis.updates import SoftwareUpdate

__all__ = [
    "LogTemplateSpec",
    "ROUTINE_TEMPLATES",
    "PHYSICAL_TEMPLATES",
    "FAULT_SYMPTOM_TEMPLATES",
    "VpeProfile",
    "build_fleet_profiles",
    "SoftwareUpdate",
    "FleetSimulator",
    "SimulationConfig",
    "FleetDataset",
    "KpiSample",
    "KpiSimulator",
    "KpiThresholdDetector",
    "update_soak_config",
    "GroundTruthIncident",
    "plan_correlated_outages",
    "read_incidents",
    "write_incidents",
    "correlated_outage_config",
]
