"""KPI (service-level metric) substrate.

The related work the paper contrasts against ([16, 20] in its
bibliography) detects trouble from Key Performance Indicators — CPU
utilization, packet loss — rather than syslogs.  Section 5.3 observes
that syslog anomaly detection "can outperform existing service level
monitoring, which normally has a longer detection time".

This module generates the KPI side of that comparison: per-vPE metric
series sampled on a fixed cadence, with baseline noise, a diurnal
component, and fault-driven excursions that build up *gradually* —
service-level metrics only degrade once the fault impacts enough
traffic, which is exactly why they lag syslog symptoms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.synthesis.faults import FaultEvent
from repro.timeutil import HOUR, MINUTE

#: The KPIs tracked per vPE.
KPI_NAMES = ("cpu_utilization", "packet_loss", "session_count")


@dataclass(frozen=True)
class KpiSample:
    """One KPI observation for one device."""

    timestamp: float
    cpu_utilization: float   # percent, 0..100
    packet_loss: float       # fraction, 0..1
    session_count: float     # active sessions


@dataclass(frozen=True)
class KpiSeriesConfig:
    """Generation knobs for the KPI series.

    Attributes:
        cadence: sampling interval (5 minutes matches common SNMP
            polling).
        cpu_base / cpu_noise: baseline CPU percent and jitter.
        loss_base / loss_noise: baseline packet-loss fraction.
        sessions_base / sessions_noise: baseline session count.
        impact_rise_time: how long a fault takes to reach full KPI
            impact — the service-level visibility lag.
        cpu_impact / loss_impact / session_impact: full-impact
            excursion magnitudes.
    """

    cadence: float = 5 * MINUTE
    cpu_base: float = 35.0
    cpu_noise: float = 4.0
    loss_base: float = 0.001
    loss_noise: float = 0.004
    sessions_base: float = 2000.0
    sessions_noise: float = 60.0
    impact_rise_time: float = 30 * MINUTE
    cpu_impact: float = 30.0
    loss_impact: float = 0.05
    session_impact: float = -600.0


class KpiSimulator:
    """Generate KPI series for one device given its fault events."""

    def __init__(
        self, config: KpiSeriesConfig = KpiSeriesConfig()
    ) -> None:
        self.config = config

    def _impact(self, timestamp: float, fault: FaultEvent) -> float:
        """Fault impact factor in [0, 1] at ``timestamp``.

        Ramps up linearly over ``impact_rise_time`` from the fault
        onset, holds while the fault is open, drops at clear time.
        """
        if timestamp < fault.onset or timestamp > fault.clears_at:
            return 0.0
        config = self.config
        ramp = (timestamp - fault.onset) / config.impact_rise_time
        return float(min(ramp, 1.0))

    def generate(
        self,
        start: float,
        end: float,
        faults: Sequence[FaultEvent],
        rng: np.random.Generator,
    ) -> List[KpiSample]:
        """Generate the sampled series over ``[start, end)``."""
        if end <= start:
            return []
        config = self.config
        times = np.arange(start, end, config.cadence)
        n = times.size
        diurnal = 8.0 * np.sin(
            2 * np.pi * (times % (24 * HOUR)) / (24 * HOUR)
        )
        cpu = (
            config.cpu_base
            + diurnal
            + rng.normal(0.0, config.cpu_noise, size=n)
        )
        loss = config.loss_base + np.abs(
            rng.normal(0.0, config.loss_noise, size=n)
        )
        sessions = (
            config.sessions_base
            + 30.0 * diurnal
            + rng.normal(0.0, config.sessions_noise, size=n)
        )
        for fault in faults:
            impact = np.array([
                self._impact(t, fault) for t in times
            ])
            cpu += impact * config.cpu_impact
            loss += impact * config.loss_impact
            sessions += impact * config.session_impact
        cpu = np.clip(cpu, 0.0, 100.0)
        loss = np.clip(loss, 0.0, 1.0)
        sessions = np.maximum(sessions, 0.0)
        return [
            KpiSample(
                timestamp=float(t),
                cpu_utilization=float(c),
                packet_loss=float(l),
                session_count=float(s),
            )
            for t, c, l, s in zip(times, cpu, loss, sessions)
        ]


class KpiThresholdDetector:
    """Service-level monitoring: robust z-score KPI thresholds.

    The classical ops approach the paper's syslog method competes
    with: learn each KPI's normal location/scale from a training
    window (median / MAD, robust to the occasional excursion), then
    flag samples whose any-KPI robust z-score exceeds ``z_threshold``.
    """

    def __init__(self, z_threshold: float = 6.0) -> None:
        if z_threshold <= 0:
            raise ValueError("z_threshold must be positive")
        self.z_threshold = z_threshold
        self._center: Dict[str, float] = {}
        self._scale: Dict[str, float] = {}

    @staticmethod
    def _columns(
        samples: Sequence[KpiSample],
    ) -> Dict[str, np.ndarray]:
        return {
            name: np.array([
                getattr(sample, name) for sample in samples
            ])
            for name in KPI_NAMES
        }

    def fit(
        self, samples: Sequence[KpiSample]
    ) -> "KpiThresholdDetector":
        """Fit per-KPI thresholds on normal samples; returns self."""
        if len(samples) < 10:
            raise ValueError("need at least 10 training samples")
        for name, values in self._columns(samples).items():
            median = float(np.median(values))
            mad = float(np.median(np.abs(values - median)))
            self._center[name] = median
            # 1.4826 * MAD estimates the standard deviation.
            self._scale[name] = max(1.4826 * mad, 1e-9)
        return self

    def score(self, samples: Sequence[KpiSample]) -> np.ndarray:
        """Max robust z-score across KPIs per sample."""
        if not self._center:
            raise RuntimeError("KpiThresholdDetector.score before fit")
        if not samples:
            return np.empty(0)
        scores = np.zeros(len(samples))
        for name, values in self._columns(samples).items():
            z = np.abs(
                (values - self._center[name]) / self._scale[name]
            )
            scores = np.maximum(scores, z)
        return scores

    def detect(self, samples: Sequence[KpiSample]) -> np.ndarray:
        """Timestamps whose any-KPI z-score exceeds the threshold."""
        scores = self.score(samples)
        times = np.array([sample.timestamp for sample in samples])
        return times[scores > self.z_threshold]
