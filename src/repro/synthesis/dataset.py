"""The assembled fleet dataset consumed by every experiment.

:class:`FleetDataset` bundles the synthetic trace — per-vPE syslog
streams, the fleet ticket list, update events — and provides the slice
operations the paper's methodology needs, most importantly the
"normal log" scrub of sections 3.3/4.2: *remove log entries within 3
days from a ticket's arrival to the time the ticket is resolved*.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.logs.message import SyslogMessage
from repro.synthesis.correlated import GroundTruthIncident
from repro.synthesis.profiles import VpeProfile
from repro.synthesis.updates import SoftwareUpdate
from repro.tickets.ticket import TroubleTicket
from repro.timeutil import DAY
from repro.topology.graph import FleetTopology


@dataclass
class FleetDataset:
    """A complete synthetic deployment trace.

    Attributes:
        profiles: per-vPE static profiles.
        messages: per-vPE syslog streams, each sorted by timestamp.
        tickets: all trouble tickets, sorted by report time.
        updates: software-update events applied during the trace.
        start / end: trace bounds (POSIX seconds).
        kpis: per-vPE service-level metric series (present when the
            simulation enabled KPI generation; empty otherwise).
        topology: the fleet graph the trace was simulated over
            (``None`` for topology-free simulations).
        incidents: ground-truth correlated-outage labels (empty
            outside the correlated-outage scenario).
    """

    profiles: List[VpeProfile]
    messages: Dict[str, List[SyslogMessage]]
    tickets: List[TroubleTicket]
    updates: List[SoftwareUpdate]
    start: float
    end: float
    kpis: Dict[str, list] = field(default_factory=dict)
    topology: Optional[FleetTopology] = None
    incidents: List[GroundTruthIncident] = field(default_factory=list)
    _times: Dict[str, List[float]] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        for vpe, stream in self.messages.items():
            times = [message.timestamp for message in stream]
            if any(b < a for a, b in zip(times, times[1:])):
                raise ValueError(f"stream for {vpe} is not sorted")
            self._times[vpe] = times
        self.tickets = sorted(
            self.tickets, key=lambda ticket: ticket.report_time
        )

    @property
    def vpe_names(self) -> List[str]:
        """Names of every simulated vPE."""
        return [profile.name for profile in self.profiles]

    @property
    def n_messages(self) -> int:
        """Total messages across all vPE streams."""
        return sum(len(stream) for stream in self.messages.values())

    def profile(self, vpe: str) -> VpeProfile:
        """The profile of ``vpe`` (KeyError when unknown)."""
        for candidate in self.profiles:
            if candidate.name == vpe:
                return candidate
        raise KeyError(f"unknown vPE {vpe!r}")

    def messages_between(
        self, vpe: str, start: float, end: float
    ) -> List[SyslogMessage]:
        """Messages of one vPE in ``[start, end)``."""
        stream = self.messages.get(vpe)
        if stream is None:
            raise KeyError(f"unknown vPE {vpe!r}")
        times = self._times[vpe]
        lo = bisect.bisect_left(times, start)
        hi = bisect.bisect_left(times, end)
        return stream[lo:hi]

    def tickets_for(
        self,
        vpe: Optional[str] = None,
        start: Optional[float] = None,
        end: Optional[float] = None,
        include_duplicates: bool = True,
    ) -> List[TroubleTicket]:
        """Filter tickets by vPE, report-time range, duplicate status."""
        out = []
        for ticket in self.tickets:
            if vpe is not None and ticket.vpe != vpe:
                continue
            if start is not None and ticket.report_time < start:
                continue
            if end is not None and ticket.report_time >= end:
                continue
            if not include_duplicates and ticket.is_duplicate:
                continue
            out.append(ticket)
        return out

    def scrub_intervals(
        self, vpe: str, margin: float = 3 * DAY
    ) -> List[Tuple[float, float]]:
        """Merged exclusion intervals around this vPE's tickets.

        Each ticket excludes ``[report - margin, repair]`` (the paper's
        3-day pre-ticket scrub through resolution).
        """
        raw = sorted(
            (ticket.report_time - margin, ticket.repair_time)
            for ticket in self.tickets
            if ticket.vpe == vpe
        )
        merged: List[Tuple[float, float]] = []
        for lo, hi in raw:
            if merged and lo <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
            else:
                merged.append((lo, hi))
        return merged

    def normal_messages(
        self,
        vpe: str,
        start: Optional[float] = None,
        end: Optional[float] = None,
        margin: float = 3 * DAY,
    ) -> List[SyslogMessage]:
        """Ticket-free ("normal") messages of one vPE in a range.

        Implements the training-data rule of section 4.2: drop
        everything within ``margin`` before a ticket's report through
        the ticket's resolution.
        """
        start = self.start if start is None else start
        end = self.end if end is None else end
        window = self.messages_between(vpe, start, end)
        intervals = self.scrub_intervals(vpe, margin)
        if not intervals:
            return list(window)
        starts = [interval[0] for interval in intervals]
        out: List[SyslogMessage] = []
        for message in window:
            index = bisect.bisect_right(starts, message.timestamp) - 1
            if index >= 0 and message.timestamp <= intervals[index][1]:
                continue
            out.append(message)
        return out

    def aggregate_messages(
        self,
        vpes: Optional[Sequence[str]] = None,
        start: Optional[float] = None,
        end: Optional[float] = None,
        normal_only: bool = False,
        margin: float = 3 * DAY,
    ) -> List[SyslogMessage]:
        """Time-merged stream over several vPEs (default: whole fleet)."""
        start = self.start if start is None else start
        end = self.end if end is None else end
        vpes = list(self.messages) if vpes is None else list(vpes)
        combined: List[SyslogMessage] = []
        for vpe in vpes:
            if normal_only:
                combined.extend(
                    self.normal_messages(vpe, start, end, margin)
                )
            else:
                combined.extend(self.messages_between(vpe, start, end))
        combined.sort(key=lambda message: message.timestamp)
        return combined
