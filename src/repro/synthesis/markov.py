"""Sequential (Markov) log generation.

The LSTM's whole premise (section 4.2) is that syslogs "display
sequential patterns" — router events follow one another in learnable
chains (an SPF run follows a hello burst, a logout follows a login).
A plain i.i.d. sampler would have no such structure and nothing for
the LSTM to learn, so the generator draws each next template from a
first-order Markov chain:

* each template gets a few *preferred successors* (seeded, per
  device), sampled with probability ``coherence``;
* otherwise the next template is drawn from the device's stationary
  weight distribution.

``coherence`` therefore dials how predictable normal logs are.  Gaps
between messages are exponential with the profile's base rate,
stretched during quiet night hours to give the trace a diurnal shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.logs.message import SyslogMessage
from repro.synthesis.catalog import LogTemplateSpec
from repro.timeutil import DAY, HOUR


@dataclass(frozen=True)
class MarkovStructure:
    """The sequential skeleton of one device's normal logs.

    Attributes:
        names: template names (states), in sampling order.
        stationary: stationary probabilities per state.
        successors: per state, the preferred successor indices.
        successor_probs: per state, probabilities over its successors.
    """

    names: Tuple[str, ...]
    stationary: np.ndarray
    successors: Tuple[Tuple[int, ...], ...]
    successor_probs: Tuple[Tuple[float, ...], ...]


def build_structure(
    weights: Dict[str, float],
    rng: np.random.Generator,
    n_successors: int = 3,
) -> MarkovStructure:
    """Derive a Markov structure from a stationary weight table.

    Each state's preferred successors are drawn (seeded) from the
    weight distribution, biased toward frequent templates so the chain
    has realistic hub structure.
    """
    if not weights:
        raise ValueError("weights must be non-empty")
    names = tuple(sorted(weights))
    stationary = np.array([weights[name] for name in names])
    stationary = stationary / stationary.sum()
    n_states = len(names)
    successors: List[Tuple[int, ...]] = []
    successor_probs: List[Tuple[float, ...]] = []
    for _ in range(n_states):
        count = min(n_successors, n_states)
        chosen = rng.choice(
            n_states, size=count, replace=False, p=stationary
        )
        raw = rng.dirichlet(np.ones(count) * 2.0)
        successors.append(tuple(int(index) for index in chosen))
        successor_probs.append(tuple(float(p) for p in raw))
    return MarkovStructure(
        names=names,
        stationary=stationary,
        successors=tuple(successors),
        successor_probs=tuple(successor_probs),
    )


def diurnal_rate_scale(timestamp: float) -> float:
    """Rate multiplier for time of day: quieter nights, busier days."""
    hour_of_day = (timestamp % DAY) / HOUR
    return 0.6 + 0.4 * float(
        np.sin(np.pi * (hour_of_day - 5.0) / 24.0) ** 2
    ) * 2.0


class MarkovLogGenerator:
    """Generate a routine log stream for one device.

    Args:
        specs_by_name: renderable template specs keyed by name; must
            cover every name in ``structure``.
        structure: the device's Markov skeleton.
        rate_per_hour: mean message rate.
        coherence: probability of following a preferred successor
            rather than resampling from the stationary distribution.
    """

    def __init__(
        self,
        specs_by_name: Dict[str, LogTemplateSpec],
        structure: MarkovStructure,
        rate_per_hour: float,
        coherence: float = 0.7,
    ) -> None:
        missing = [
            name for name in structure.names if name not in specs_by_name
        ]
        if missing:
            raise ValueError(f"specs missing for templates: {missing}")
        if rate_per_hour <= 0:
            raise ValueError("rate_per_hour must be positive")
        if not 0.0 <= coherence <= 1.0:
            raise ValueError(f"coherence must be in [0, 1], got {coherence}")
        self.specs_by_name = specs_by_name
        self.structure = structure
        self.rate_per_hour = rate_per_hour
        self.coherence = coherence
        # Cumulative distributions for fast inverse-CDF sampling (the
        # per-message hot path).
        self._stationary_cdf = np.cumsum(structure.stationary)
        self._successor_cdfs = [
            np.cumsum(probs) for probs in structure.successor_probs
        ]

    def generate(
        self,
        host: str,
        start: float,
        end: float,
        rng: np.random.Generator,
        rate_scale: float = 1.0,
    ) -> List[SyslogMessage]:
        """Generate the routine stream for ``[start, end)``."""
        if end <= start:
            return []
        structure = self.structure
        stationary_cdf = self._stationary_cdf
        messages: List[SyslogMessage] = []
        state = int(np.searchsorted(stationary_cdf, rng.random()))
        mean_gap = HOUR / (self.rate_per_hour * rate_scale)
        timestamp = start + float(rng.exponential(mean_gap))
        while timestamp < end:
            spec = self.specs_by_name[structure.names[state]]
            messages.append(spec.render(timestamp, host, rng))
            if rng.random() < self.coherence:
                options = structure.successors[state]
                cdf = self._successor_cdfs[state]
                state = options[int(np.searchsorted(cdf, rng.random()))]
            else:
                state = int(
                    np.searchsorted(stationary_cdf, rng.random())
                )
            gap = float(
                rng.exponential(mean_gap / diurnal_rate_scale(timestamp))
            )
            timestamp += max(gap, 1e-3)
        return messages
