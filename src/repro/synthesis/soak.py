"""Long-horizon software-update-drift soak scenario.

The paper's hardest serving condition (sections 3.3 and 4.3): a
software update rewrites the syslog template distribution mid-stream —
month-over-month cosine similarity collapses from > 0.8 to < 0.4 and
the stale model's false alarms jump 14x until it is adapted.  This
module packages that condition as a reproducible simulation preset:
every vPE takes the update (so the fleet-wide distribution shifts, not
just a subset), fleet-wide circuit events are disabled (they would
confound the drift signal), and the update lands mid-trace so the
pre-update half is long enough to train on and the post-update half is
long enough to trigger, fine-tune, swap and serve out probation.

``python -m repro simulate --scenario update-soak`` builds traces from
this preset; the ``drift-soak-e2e`` CI job drives one through
``serve --auto-adapt`` end to end.
"""

from __future__ import annotations

from repro.synthesis.fleet import SimulationConfig

#: The update touches the whole fleet in the soak — the aggregate
#: distribution must shift hard enough to breach the drift threshold.
SOAK_UPDATE_FRACTION = 1.0


def update_soak_config(
    n_vpes: int = 3,
    n_months: int = 2,
    seed: int = 7,
    base_rate_per_hour: float = 6.0,
    update_month: int = 1,
) -> SimulationConfig:
    """The software-update-drift soak preset.

    Returns a :class:`SimulationConfig` whose trace drifts abruptly at
    ``update_month``: all vPEs take the update, no fleet-wide circuit
    events muddy the signal, and the defaults fit CI budgets (two
    months, three vPEs) while leaving both halves long enough for the
    full adapt cycle.  Raise ``n_months``/``n_vpes`` for longer soaks.
    """
    if not 0 < update_month < n_months:
        raise ValueError(
            "update_month must fall inside the trace (exclusive)"
        )
    return SimulationConfig(
        n_vpes=n_vpes,
        n_months=n_months,
        seed=seed,
        base_rate_per_hour=base_rate_per_hour,
        update_month=update_month,
        update_fraction=SOAK_UPDATE_FRACTION,
        n_fleet_events=0,
    )


__all__ = ["SOAK_UPDATE_FRACTION", "update_soak_config"]
