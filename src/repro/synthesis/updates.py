"""Software updates that shift the syslog distribution.

Section 3.3: "some vPEs' syslogs had sudden changes between late 2017
and early 2018, triggered by system updates that change the syslog
distribution" — month-over-month cosine similarity drops from >0.8 to
<0.4, and section 4.3 reports a 14× jump in false alarms.

A :class:`SoftwareUpdate` rewrites a device's template weights from its
update time onward: a slice of old templates is retired or strongly
down-weighted, and the post-update catalog templates (new daemons,
renamed events) take a large share of the distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple

from repro.synthesis.catalog import UPDATE_TEMPLATES

#: Old templates the update replaces outright (their v2 equivalents
#: exist in UPDATE_TEMPLATES).  One dominant template per role is
#: replaced, so the update disrupts every role's distribution the way
#: the paper observes.
_REPLACED: Tuple[str, ...] = (
    "bgp_keepalive",
    "vm_heartbeat",
    "ospf_hello",
    "snmp_get",
    "bgp_update",
)


@dataclass(frozen=True)
class SoftwareUpdate:
    """One fleet software update.

    Attributes:
        time: when the update rolls out.
        affected_vpes: device names whose distribution changes.
        new_share: fraction of the post-update distribution taken by
            the update-introduced templates.  0.5 reproduces the
            paper's similarity collapse to < 0.4.
        residual_weight: weight multiplier on replaced templates (they
            rarely disappear entirely in practice).
    """

    time: float
    affected_vpes: FrozenSet[str]
    new_share: float = 0.5
    residual_weight: float = 0.02

    def __post_init__(self) -> None:
        if not 0.0 < self.new_share < 1.0:
            raise ValueError(f"new_share must be in (0, 1), got "
                             f"{self.new_share}")
        if self.residual_weight < 0:
            raise ValueError("residual_weight must be non-negative")

    def applies_to(self, vpe: str, timestamp: float) -> bool:
        """Whether this update has rolled out to ``vpe`` by ``timestamp``."""
        return vpe in self.affected_vpes and timestamp >= self.time

    def rewrite_weights(
        self, weights: Dict[str, float]
    ) -> Dict[str, float]:
        """Produce the post-update template weight table."""
        rewritten = {
            name: (
                value * self.residual_weight
                if name in _REPLACED
                else value
            )
            for name, value in weights.items()
        }
        old_total = sum(rewritten.values())
        if old_total <= 0:
            raise ValueError("weights must have positive mass")
        old_scale = (1.0 - self.new_share) / old_total
        rewritten = {
            name: value * old_scale for name, value in rewritten.items()
        }
        new_total = sum(spec.weight for spec in UPDATE_TEMPLATES)
        for spec in UPDATE_TEMPLATES:
            rewritten[spec.name] = (
                self.new_share * spec.weight / new_total
            )
        return rewritten
