"""Fault processes: root-cause models, symptom bursts, monitor signals.

Each non-maintenance root cause gets a :class:`FaultTypeModel` that
controls

* how often the fault strikes (per vPE-month, scaled by the device's
  ``fault_rate_scale``);
* whether and when syslog *symptoms* appear relative to the monitoring
  signal that eventually opens the ticket.  This is the lever that
  reproduces Figure 8: circuit failures show syslog symptoms well
  before the ticket (74% in the paper), hardware failures mostly only
  after (28% before), because hardware trouble is first noticed by
  out-of-band monitoring rather than by the virtualized device itself;
* how long the fault lasts (which drives infected periods and
  duplicate follow-up tickets).

The defaults below were tuned so the reproduction's Figure 8 ordering
matches the paper's (circuit > software > cable > hardware for early
visibility); they are parameters, not measurements.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.logs.message import SyslogMessage
from repro.synthesis.catalog import FAULT_SYMPTOM_TEMPLATES, LogTemplateSpec
from repro.synthesis.profiles import VpeProfile
from repro.tickets.processing import MonitoringSignal
from repro.tickets.ticket import RootCause
from repro.timeutil import HOUR, MINUTE, MONTH

_fault_ids = itertools.count(1)


def allocate_fault_id() -> int:
    """Next process-unique fault id (shared with the injector)."""
    return next(_fault_ids)


@dataclass(frozen=True)
class FaultTypeModel:
    """Behavioural parameters of one root-cause family.

    Attributes:
        root_cause: the ticket category this model produces.
        rate_per_vpe_month: Poisson intensity of fault onsets.
        symptom_emission_probability: chance the fault surfaces in the
            vPE syslog *at all*.  Virtualization hides some lower-layer
            faults completely (section 2), which is what keeps the
            paper's recall below 1.
        pre_symptom_probability: given symptoms exist, chance they
            begin at fault onset (before the monitoring signal);
            otherwise symptoms only surface after the monitors fire.
        monitor_lag_mean: mean delay from fault onset to the first
            monitoring signal (exponential).  Larger values give the
            syslog more lead time when symptoms are early.
        monitor_lag_floor: minimum monitoring delay.
        post_symptom_delay_mean: when symptoms are late, their mean
            delay after the first monitoring signal.
        duration_log_mean / duration_log_sigma: lognormal parameters
            (seconds) of the fault's total duration.
        burst_rate_per_minute: symptom message rate while the fault is
            active.
        burst_length: how long the initial symptom burst lasts.
    """

    root_cause: RootCause
    rate_per_vpe_month: float
    symptom_emission_probability: float
    pre_symptom_probability: float
    monitor_lag_mean: float
    monitor_lag_floor: float
    post_symptom_delay_mean: float
    duration_log_mean: float
    duration_log_sigma: float
    burst_rate_per_minute: float = 1.5
    burst_length: float = 4 * MINUTE

    def __post_init__(self) -> None:
        if self.rate_per_vpe_month < 0:
            raise ValueError("rate_per_vpe_month must be non-negative")
        if not 0.0 <= self.pre_symptom_probability <= 1.0:
            raise ValueError("pre_symptom_probability must be in [0, 1]")
        if not 0.0 <= self.symptom_emission_probability <= 1.0:
            raise ValueError(
                "symptom_emission_probability must be in [0, 1]"
            )

    @property
    def symptom_templates(self) -> Tuple[LogTemplateSpec, ...]:
        """Log templates this fault emits while active."""
        return FAULT_SYMPTOM_TEMPLATES[self.root_cause.value]


#: Default fault models.  Rates follow the paper's skew (circuit and
#: software are the common non-maintenance causes); visibility knobs
#: follow the Figure 8 ordering.
DEFAULT_FAULT_MODELS: Tuple[FaultTypeModel, ...] = (
    FaultTypeModel(
        root_cause=RootCause.CIRCUIT,
        rate_per_vpe_month=0.15,
        symptom_emission_probability=0.95,
        pre_symptom_probability=0.78,
        monitor_lag_mean=18 * MINUTE,
        monitor_lag_floor=4 * MINUTE,
        post_symptom_delay_mean=5 * MINUTE,
        duration_log_mean=np.log(3 * HOUR),
        duration_log_sigma=0.9,
        burst_rate_per_minute=2.0,
    ),
    FaultTypeModel(
        root_cause=RootCause.SOFTWARE,
        rate_per_vpe_month=0.09,
        symptom_emission_probability=0.85,
        pre_symptom_probability=0.65,
        monitor_lag_mean=10 * MINUTE,
        monitor_lag_floor=2 * MINUTE,
        post_symptom_delay_mean=6 * MINUTE,
        duration_log_mean=np.log(90 * MINUTE),
        duration_log_sigma=0.8,
        burst_rate_per_minute=1.5,
    ),
    FaultTypeModel(
        root_cause=RootCause.CABLE,
        rate_per_vpe_month=0.05,
        symptom_emission_probability=0.75,
        pre_symptom_probability=0.55,
        monitor_lag_mean=22 * MINUTE,
        monitor_lag_floor=3 * MINUTE,
        post_symptom_delay_mean=8 * MINUTE,
        duration_log_mean=np.log(4 * HOUR),
        duration_log_sigma=1.0,
        burst_rate_per_minute=1.5,
    ),
    FaultTypeModel(
        root_cause=RootCause.HARDWARE,
        rate_per_vpe_month=0.04,
        symptom_emission_probability=0.70,
        pre_symptom_probability=0.40,
        monitor_lag_mean=20 * MINUTE,
        monitor_lag_floor=3 * MINUTE,
        post_symptom_delay_mean=10 * MINUTE,
        duration_log_mean=np.log(6 * HOUR),
        duration_log_sigma=1.0,
        burst_rate_per_minute=1.2,
    ),
)


@dataclass(frozen=True)
class FaultEvent:
    """One materialized fault onset at one device."""

    fault_id: int
    vpe: str
    model: FaultTypeModel
    onset: float
    clears_at: float

    @property
    def root_cause(self) -> RootCause:
        """The fault model's root cause."""
        return self.model.root_cause


class FaultInjector:
    """Draw fault onsets and materialize their symptoms and signals."""

    def __init__(
        self,
        models: Sequence[FaultTypeModel] = DEFAULT_FAULT_MODELS,
        cascade_probability: float = 0.25,
        cascade_delay_mean: float = 4 * HOUR,
        rate_multiplier: float = 1.0,
    ) -> None:
        if not models:
            raise ValueError("at least one fault model is required")
        if not 0.0 <= cascade_probability < 1.0:
            raise ValueError(
                "cascade_probability must be in [0, 1)"
            )
        if rate_multiplier <= 0:
            raise ValueError("rate_multiplier must be positive")
        self.models = tuple(models)
        self.cascade_probability = cascade_probability
        self.cascade_delay_mean = cascade_delay_mean
        self.rate_multiplier = rate_multiplier

    def draw_faults(
        self,
        profile: VpeProfile,
        start: float,
        end: float,
        rng: np.random.Generator,
    ) -> List[FaultEvent]:
        """Draw Poisson fault onsets for one device over ``[start, end)``."""
        if end <= start:
            return []
        months = (end - start) / MONTH
        events: List[FaultEvent] = []
        for model in self.models:
            intensity = (
                model.rate_per_vpe_month
                * months
                * profile.fault_rate_scale
                * self.rate_multiplier
            )
            for _ in range(int(rng.poisson(intensity))):
                onset = float(rng.uniform(start, end))
                events.append(
                    self._make_event(profile, model, onset, rng)
                )
        # Fault cascades: a fresh fault occasionally destabilizes the
        # device and triggers a second (different) fault within hours.
        # This produces the short-gap mass of the paper's Figure 1(b)
        # inter-arrival CDF.
        cascades: List[FaultEvent] = []
        for event in events:
            if rng.random() >= self.cascade_probability:
                continue
            follow_model = self.models[
                int(rng.integers(len(self.models)))
            ]
            follow_onset = event.onset + HOUR + float(
                rng.exponential(self.cascade_delay_mean)
            )
            if follow_onset < end:
                cascades.append(
                    self._make_event(
                        profile, follow_model, follow_onset, rng
                    )
                )
        events.extend(cascades)
        events.sort(key=lambda event: event.onset)
        return events

    def _make_event(
        self,
        profile: VpeProfile,
        model: FaultTypeModel,
        onset: float,
        rng: np.random.Generator,
    ) -> FaultEvent:
        duration = float(
            rng.lognormal(
                model.duration_log_mean, model.duration_log_sigma
            )
        )
        return FaultEvent(
            fault_id=next(_fault_ids),
            vpe=profile.name,
            model=model,
            onset=onset,
            clears_at=onset + duration,
        )

    def materialize(
        self,
        event: FaultEvent,
        rng: np.random.Generator,
        reoccurrence_count: int = 2,
        expected_report_delay: float = 6 * MINUTE,
    ) -> Tuple[List[SyslogMessage], List[MonitoringSignal]]:
        """Emit the syslog symptoms and monitoring signals of a fault.

        Returns ``(messages, signals)``.  The first monitoring signal
        fires after the model's monitor lag; ``reoccurrence_count``
        signals are spaced a minute apart so the downstream
        :class:`~repro.tickets.processing.TicketProcessor` opens
        exactly one ticket per fault.

        ``expected_report_delay`` approximates the ticket flow's
        verification latency after the first signal; late ("post")
        symptoms are anchored *after* the eventual report time, which
        is what Figure 8's "only visible after the ticket" population
        means.
        """
        model = event.model
        monitor_lag = model.monitor_lag_floor + float(
            rng.exponential(model.monitor_lag_mean)
        )
        first_signal = event.onset + monitor_lag
        signals = [
            MonitoringSignal(
                timestamp=first_signal + index * MINUTE,
                vpe=event.vpe,
                signature=f"{model.root_cause.value}-signature",
                root_cause=model.root_cause,
                fault_id=event.fault_id,
                clears_at=event.clears_at,
            )
            for index in range(reoccurrence_count)
        ]
        if rng.random() >= model.symptom_emission_probability:
            # The fault never surfaces in the vPE syslog (hidden by
            # the virtualization layering); only the monitors see it.
            return [], signals
        if rng.random() < model.pre_symptom_probability:
            symptom_start = event.onset
        else:
            symptom_start = (
                first_signal
                + expected_report_delay
                + float(rng.exponential(model.post_symptom_delay_mean))
            )
        messages = self._symptom_burst(event, symptom_start, rng)
        return messages, signals

    def _symptom_burst(
        self,
        event: FaultEvent,
        symptom_start: float,
        rng: np.random.Generator,
    ) -> List[SyslogMessage]:
        """The symptom message stream: dense burst, then a simmer.

        The initial burst ("a storm of protocol session flaps ...
        within a short time interval", section 5.3) is followed by
        sparser recurring symptoms until the fault clears.
        """
        model = event.model
        templates = model.symptom_templates
        messages: List[SyslogMessage] = []
        mean_gap = 60.0 / model.burst_rate_per_minute
        burst_end = min(
            symptom_start + model.burst_length, event.clears_at
        )
        timestamp = symptom_start
        while timestamp < burst_end:
            spec = templates[int(rng.integers(len(templates)))]
            messages.append(spec.render(timestamp, event.vpe, rng))
            timestamp += max(float(rng.exponential(mean_gap)), 1e-3)
        # Simmer phase: occasional repeats while the fault is open.
        simmer_gap = 10 * MINUTE
        while timestamp < event.clears_at:
            spec = templates[int(rng.integers(len(templates)))]
            messages.append(spec.render(timestamp, event.vpe, rng))
            timestamp += max(float(rng.exponential(simmer_gap)), 1.0)
        return messages


def fleet_wide_circuit_event(
    profiles: Sequence[VpeProfile],
    timestamp: float,
    rng: np.random.Generator,
    min_fraction: float = 0.5,
    models: Sequence[FaultTypeModel] = DEFAULT_FAULT_MODELS,
) -> List[FaultEvent]:
    """A core-router disruption hitting many vPEs at once (Figure 2).

    Picks at least ``min_fraction`` of the fleet and gives each a
    simultaneous circuit fault.  The paper observes such events are
    "very rare" — the fleet driver schedules only a couple per trace.
    """
    circuit_model = next(
        model
        for model in models
        if model.root_cause is RootCause.CIRCUIT
    )
    count = max(int(len(profiles) * min_fraction), 1)
    chosen = rng.choice(len(profiles), size=count, replace=False)
    events = []
    for index in chosen:
        duration = float(
            rng.lognormal(
                circuit_model.duration_log_mean,
                circuit_model.duration_log_sigma,
            )
        )
        events.append(
            FaultEvent(
                fault_id=next(_fault_ids),
                vpe=profiles[int(index)].name,
                model=circuit_model,
                onset=timestamp + float(rng.uniform(0, 5 * MINUTE)),
                clears_at=timestamp + duration,
            )
        )
    return events
