"""Per-device role profiles.

Section 3.3 finds that syslog distributions vary across vPEs ("possibly
due to differences in server roles, configurations and traffic") and
that the variation clusters: K-means later finds 4 groups.  We model
that directly: each vPE draws a *role* (four roles, mirroring the
paper's four clusters) which reweights the routine template catalog,
plus small per-device jitter so no two vPEs are identical.

A :class:`VpeProfile` also fixes the device's base log rate.  The
paired pPE profile adds the physical-layer templates and a higher rate,
reproducing the section-2 observation that vPE syslogs have ~77% less
volume than pPE syslogs with far fewer physical-layer messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.synthesis.catalog import (
    PHYSICAL_TEMPLATES,
    ROUTINE_TEMPLATES,
    LogTemplateSpec,
)

#: The four vPE roles; chosen to produce four separable syslog
#: distributions, matching the paper's K=4 clusters.
ROLES: Tuple[str, ...] = (
    "consumer-edge",
    "business-edge",
    "mobility-core",
    "wholesale-peering",
)

#: Per-role multiplier applied to selected template names.  Templates
#: not listed keep their catalog weight.
_ROLE_EMPHASIS: Dict[str, Dict[str, float]] = {
    "consumer-edge": {
        "bgp_keepalive": 2.0,
        "ospf_hello": 0.15,
        "ospf_spf": 0.2,
        "snmp_get": 3.0,
        "vm_heartbeat": 3.0,
        "firewall_match": 4.0,
        "cos_queue": 0.2,
        "rsvp_refresh": 0.15,
        "ldp_session": 0.2,
    },
    "business-edge": {
        "bgp_update": 3.0,
        "ldp_session": 3.5,
        "rsvp_refresh": 4.0,
        "cos_queue": 4.0,
        "vm_heartbeat": 0.4,
        "snmp_get": 0.3,
        "firewall_match": 0.3,
        "ospf_hello": 0.4,
    },
    "mobility-core": {
        "ospf_hello": 4.0,
        "ospf_spf": 3.0,
        "ntp_sync": 4.0,
        "vnf_kpi": 4.0,
        "mib2d_stats": 3.0,
        "bgp_keepalive": 0.15,
        "bgp_update": 0.2,
        "firewall_match": 0.3,
        "snmp_get": 0.5,
    },
    "wholesale-peering": {
        "bgp_keepalive": 4.0,
        "bgp_update": 5.0,
        "bgp_session_established": 3.0,
        "snmp_get": 0.2,
        "vm_resource": 0.3,
        "vm_heartbeat": 0.3,
        "ospf_hello": 0.1,
        "ospf_spf": 0.2,
        "vnf_kpi": 0.3,
    },
}

#: Per-role routine-rate multiplier: traffic differs by role, which
#: skews the universal model's training mixture the way real fleets do.
_ROLE_RATE: Dict[str, float] = {
    "consumer-edge": 1.2,
    "business-edge": 1.0,
    "mobility-core": 0.8,
    "wholesale-peering": 1.5,
}


@dataclass(frozen=True)
class VpeProfile:
    """Static description of one simulated device.

    Attributes:
        name: device hostname, e.g. ``"vpe07"``.
        role: one of :data:`ROLES`.
        base_rate_per_hour: mean routine log rate.
        template_weights: relative frequency per routine template name
            (role emphasis times per-device jitter, normalized).
        is_physical: True for the pPE comparison profile, which also
            emits :data:`PHYSICAL_TEMPLATES`.
        fault_rate_scale: multiplies the fleet-wide fault intensity;
            a few devices are lemons (Figure 2's skew).
    """

    name: str
    role: str
    base_rate_per_hour: float
    template_weights: Dict[str, float]
    is_physical: bool = False
    fault_rate_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.base_rate_per_hour <= 0:
            raise ValueError("base_rate_per_hour must be positive")
        if self.role not in ROLES:
            raise ValueError(
                f"unknown role {self.role!r}; choose from {ROLES}"
            )
        if self.fault_rate_scale < 0:
            raise ValueError("fault_rate_scale must be non-negative")

    @property
    def templates(self) -> List[LogTemplateSpec]:
        """The template specs this device can emit routinely."""
        routine = list(ROUTINE_TEMPLATES)
        if self.is_physical:
            routine.extend(PHYSICAL_TEMPLATES)
        return routine


def role_base_weights(
    role: str, include_physical: bool = False
) -> Dict[str, float]:
    """The un-jittered weight table of a role (catalog × emphasis).

    Same-role devices share this table up to per-device jitter; the
    fleet driver also derives each role's *transition skeleton* from
    it, so devices in one role speak statistically compatible log
    languages — the property that makes the paper's vPE grouping pay
    off.
    """
    emphasis = _ROLE_EMPHASIS[role]
    specs: List[LogTemplateSpec] = list(ROUTINE_TEMPLATES)
    if include_physical:
        specs.extend(PHYSICAL_TEMPLATES)
    weights = {
        spec.name: spec.weight * emphasis.get(spec.name, 1.0)
        for spec in specs
    }
    total = sum(weights.values())
    return {name: value / total for name, value in weights.items()}


def _role_weights(
    role: str,
    rng: np.random.Generator,
    jitter: float,
    include_physical: bool,
) -> Dict[str, float]:
    """Build the jittered weight table for one device of a role."""
    emphasis = _ROLE_EMPHASIS[role]
    weights: Dict[str, float] = {}
    specs: List[LogTemplateSpec] = list(ROUTINE_TEMPLATES)
    if include_physical:
        specs.extend(PHYSICAL_TEMPLATES)
    for spec in specs:
        base = spec.weight * emphasis.get(spec.name, 1.0)
        noise = float(rng.lognormal(mean=0.0, sigma=jitter))
        weights[spec.name] = base * noise
    total = sum(weights.values())
    return {name: value / total for name, value in weights.items()}


def build_fleet_profiles(
    n_vpes: int = 38,
    seed: int = 7,
    base_rate_per_hour: float = 40.0,
    rate_spread: float = 0.25,
    jitter: float = 0.18,
    lemon_fraction: float = 0.15,
) -> List[VpeProfile]:
    """Build the fleet: ``n_vpes`` profiles across the four roles.

    Roles are assigned round-robin with seeded shuffling so every role
    appears, per-device weights are jittered, and a ``lemon_fraction``
    of devices get elevated fault rates (the paper's "a few vPEs has
    more tickets than others").
    """
    if n_vpes < 1:
        raise ValueError(f"n_vpes must be >= 1, got {n_vpes}")
    rng = np.random.default_rng(seed)
    roles = [ROLES[index % len(ROLES)] for index in range(n_vpes)]
    rng.shuffle(roles)
    n_lemons = int(round(lemon_fraction * n_vpes))
    lemon_indices = set(
        rng.choice(n_vpes, size=n_lemons, replace=False).tolist()
        if n_lemons
        else []
    )
    profiles: List[VpeProfile] = []
    for index in range(n_vpes):
        role = roles[index]
        rate = base_rate_per_hour * _ROLE_RATE[role] * float(
            rng.lognormal(mean=0.0, sigma=rate_spread)
        )
        fault_scale = (
            float(rng.uniform(3.0, 6.0))
            if index in lemon_indices
            else float(rng.uniform(0.5, 1.5))
        )
        profiles.append(
            VpeProfile(
                name=f"vpe{index:02d}",
                role=role,
                base_rate_per_hour=rate,
                template_weights=_role_weights(
                    role, rng, jitter, include_physical=False
                ),
                fault_rate_scale=fault_scale,
            )
        )
    return profiles


def build_ppe_profile(
    name: str = "ppe00",
    seed: int = 11,
    vpe_rate_per_hour: float = 40.0,
    volume_ratio: float = 1.0 / (1.0 - 0.77),
) -> VpeProfile:
    """Build the physical-PE comparison profile (section 2).

    ``volume_ratio`` defaults so the vPE has 77% less volume than the
    pPE; the pPE additionally emits the physical-layer templates.
    """
    rng = np.random.default_rng(seed)
    return VpeProfile(
        name=name,
        role="business-edge",
        base_rate_per_hour=vpe_rate_per_hour * volume_ratio,
        template_weights=_role_weights(
            "business-edge", rng, jitter=0.25, include_physical=True
        ),
        is_physical=True,
    )
