"""Correlated fault propagation over the fleet topology.

The base simulator injects faults device-by-device; every outage is
an island.  Real NFV outages are not: a circuit flap takes out every
vPE riding the circuit, a cable cut darkens whole sites, a bad
software rollout breaks its cohort wherever it runs.  This module
plans such *correlated outages*: each picks an upstream topology
element, then propagates down the element's edges to its covered
devices with per-hop attenuation (the further a device sits from the
faulty element, the likelier the virtualization layering hides the
symptom).  Every planned outage carries its ground-truth
``(cause_kind, cause_element)`` label so root-cause attribution can
be scored as a classification task.
"""

from __future__ import annotations

import csv
import pathlib
from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.synthesis.faults import (
    DEFAULT_FAULT_MODELS,
    FaultEvent,
    FaultTypeModel,
    allocate_fault_id,
)
from repro.tickets.ticket import RootCause
from repro.topology.graph import (
    KIND_CABLE,
    KIND_CIRCUIT,
    KIND_DEVICE,
    KIND_SITE,
    KIND_SOFTWARE,
    FleetTopology,
)

#: Seed-stream tag for outage planning draws
#: (``default_rng([seed, OUTAGE_SEED_TAG])`` in the fleet driver).
OUTAGE_SEED_TAG = 3

#: Cause kinds cycled through when planning outages, in planning
#: order.  Cycling guarantees every kind appears once the outage
#: count reaches the taxonomy size — the evaluation's macro-F1 needs
#: support in every class.
OUTAGE_KINDS = (
    KIND_CIRCUIT,
    KIND_SOFTWARE,
    KIND_CABLE,
    KIND_SITE,
    KIND_DEVICE,
)

#: Which fault family supplies the symptom behaviour for an outage at
#: each element kind.  A site outage surfaces at its devices as
#: transport trouble (circuit symptoms); a device-local outage is
#: hardware.
_SYMPTOM_CAUSE = {
    KIND_CIRCUIT: RootCause.CIRCUIT,
    KIND_SITE: RootCause.CIRCUIT,
    KIND_CABLE: RootCause.CABLE,
    KIND_SOFTWARE: RootCause.SOFTWARE,
    KIND_DEVICE: RootCause.HARDWARE,
}


@dataclass(frozen=True)
class GroundTruthIncident:
    """The label of one planned correlated outage.

    Attributes:
        incident_id: 1-based planning index.
        cause_kind: topology kind of the faulty element (the class
            the RCA engine must predict).
        cause_element: the faulty element's id.
        onset: outage onset at the element.
        clears_at: when the element recovers.
        devices: devices that actually emit symptoms, sorted.
    """

    incident_id: int
    cause_kind: str
    cause_element: str
    onset: float
    clears_at: float
    devices: Tuple[str, ...]


def write_incidents(
    incidents: Sequence[GroundTruthIncident],
    path: Union[str, pathlib.Path],
) -> None:
    """Persist ground-truth incidents as CSV next to the trace."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "incident_id",
                "cause_kind",
                "cause_element",
                "onset",
                "clears_at",
                "devices",
            ]
        )
        for incident in incidents:
            writer.writerow(
                [
                    incident.incident_id,
                    incident.cause_kind,
                    incident.cause_element,
                    f"{incident.onset:.3f}",
                    f"{incident.clears_at:.3f}",
                    ";".join(incident.devices),
                ]
            )


def read_incidents(
    path: Union[str, pathlib.Path],
) -> List[GroundTruthIncident]:
    """Load incidents written by :func:`write_incidents`."""
    incidents: List[GroundTruthIncident] = []
    with open(path) as handle:
        for row in csv.DictReader(handle):
            incidents.append(
                GroundTruthIncident(
                    incident_id=int(row["incident_id"]),
                    cause_kind=row["cause_kind"],
                    cause_element=row["cause_element"],
                    onset=float(row["onset"]),
                    clears_at=float(row["clears_at"]),
                    devices=tuple(
                        d for d in row["devices"].split(";") if d
                    ),
                )
            )
    return incidents


def _model_for(
    kind: str, models: Sequence[FaultTypeModel]
) -> FaultTypeModel:
    """The fault family whose symptoms an outage at ``kind`` emits.

    The base models gamble on whether a fault surfaces in syslog at
    all (``symptom_emission_probability``) and whether symptoms lead
    or trail the ticket — those gambles model *subtle* background
    faults.  A planned outage is a hard failure: every device it
    reaches logs symptoms, starting at the device's onset, so the
    returned model forces both probabilities to 1.
    """
    cause = _SYMPTOM_CAUSE[kind]
    for model in models:
        if model.root_cause is cause:
            return replace(
                model,
                symptom_emission_probability=1.0,
                pre_symptom_probability=1.0,
            )
    raise ValueError(f"no fault model for root cause {cause.value}")


def _elements_of_kind(
    topology: FleetTopology, kind: str
) -> List[str]:
    """Sorted element ids of one kind (devices included)."""
    return [
        element
        for element in topology.elements
        if topology.kind(element) == kind
    ]


def plan_correlated_outages(
    topology: FleetTopology,
    start: float,
    end: float,
    n_outages: int,
    rng: np.random.Generator,
    models: Sequence[FaultTypeModel] = DEFAULT_FAULT_MODELS,
    attenuation: float = 0.85,
    hop_delay: float = 60.0,
) -> Tuple[Dict[str, List[FaultEvent]], List[GroundTruthIncident]]:
    """Plan ``n_outages`` correlated outages over a topology.

    Each outage cycles through :data:`OUTAGE_KINDS`, picks a concrete
    element of that kind with the injected generator, and propagates
    to the element's covered devices: a device at ``h`` hops emits
    symptoms with probability ``attenuation ** h`` and sees its onset
    delayed by ``h * hop_delay`` plus jitter.  Outages are placed in
    disjoint time slots across ``[start, end)`` so each forms one
    temporally separable incident.

    Returns:
        ``(events_by_device, incidents)`` — the per-device
        :class:`~repro.synthesis.faults.FaultEvent` lists to
        materialize, and the matching ground-truth labels.
    """
    if n_outages < 1:
        raise ValueError("n_outages must be >= 1")
    if not 0.0 < attenuation <= 1.0:
        raise ValueError("attenuation must be in (0, 1]")
    span = end - start
    if span <= 0:
        raise ValueError("end must be after start")
    events_by_device: Dict[str, List[FaultEvent]] = {}
    incidents: List[GroundTruthIncident] = []
    slot = span / n_outages
    for index in range(n_outages):
        kind = OUTAGE_KINDS[index % len(OUTAGE_KINDS)]
        pool = _elements_of_kind(topology, kind)
        element = pool[int(rng.integers(len(pool)))]
        model = _model_for(kind, models)
        slot_start = start + index * slot
        onset = slot_start + float(rng.uniform(0.1, 0.5)) * slot
        duration = float(
            rng.lognormal(
                model.duration_log_mean, model.duration_log_sigma
            )
        )
        clears_at = min(onset + duration, end)
        hops = topology.hops(element)
        emit_probability = attenuation**hops
        affected: List[str] = []
        for device in sorted(topology.covered(element)):
            if rng.random() >= emit_probability:
                continue
            device_onset = (
                onset
                + hops * hop_delay
                + float(rng.exponential(hop_delay))
            )
            if device_onset >= clears_at:
                continue
            affected.append(device)
            events_by_device.setdefault(device, []).append(
                FaultEvent(
                    fault_id=allocate_fault_id(),
                    vpe=device,
                    model=model,
                    onset=device_onset,
                    clears_at=clears_at,
                )
            )
        if not affected:
            # Attenuation silenced the whole outage; anchor it on one
            # covered device so the label always has support.
            device = sorted(topology.covered(element))[
                int(rng.integers(len(topology.covered(element))))
            ]
            affected.append(device)
            events_by_device.setdefault(device, []).append(
                FaultEvent(
                    fault_id=allocate_fault_id(),
                    vpe=device,
                    model=model,
                    onset=onset + hops * hop_delay,
                    clears_at=clears_at,
                )
            )
        incidents.append(
            GroundTruthIncident(
                incident_id=index + 1,
                cause_kind=kind,
                cause_element=element,
                onset=onset,
                clears_at=clears_at,
                devices=tuple(affected),
            )
        )
    return events_by_device, incidents


__all__ = [
    "GroundTruthIncident",
    "OUTAGE_KINDS",
    "OUTAGE_SEED_TAG",
    "plan_correlated_outages",
    "read_incidents",
    "write_incidents",
]
