"""Catalog of synthetic router syslog templates.

Templates are written in the style of carrier provider-edge router
logs (routing protocol daemons, chassis management, SNMP, the
NFV/hypervisor layer).  Each :class:`LogTemplateSpec` renders concrete
message text by filling placeholders (interfaces, peers, numbers) from
a seeded RNG, so the signature-tree miner sees realistic variability:
stable keywords with variable fields.

Three groups:

* :data:`ROUTINE_TEMPLATES` — normal-operations chatter;
* :data:`PHYSICAL_TEMPLATES` — physical-layer messages emitted by
  traditional pPE routers; vPEs emit almost none of these (the paper's
  "77% less volume ... much fewer log messages on physical layer");
* :data:`FAULT_SYMPTOM_TEMPLATES` — per-root-cause symptom messages
  that fault bursts inject (including the two operational findings the
  paper quotes: the chassis-control peer error and the BGP UNUSABLE
  ASPATH storm).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.logs.message import Facility, Severity, SyslogMessage

_PEER_ASNS = (7018, 3356, 1299, 2914, 6453, 3257, 6939)
_DAEMON_NAMES = (
    "rpd", "chassisd", "snmpd", "ntpd", "sshd", "mib2d", "cosd",
    "dcd", "kernel", "vmmd", "hypervisord",
)

_FIELD_RE = re.compile(r"\{(\w+)\}")
_FIELDS_CACHE: Dict[str, Tuple[str, ...]] = {}


def _pattern_fields(pattern: str) -> Tuple[str, ...]:
    """Placeholder names used by a pattern (cached; rendering hot path)."""
    fields = _FIELDS_CACHE.get(pattern)
    if fields is None:
        fields = tuple(set(_FIELD_RE.findall(pattern)))
        _FIELDS_CACHE[pattern] = fields
    return fields


@dataclass(frozen=True)
class LogTemplateSpec:
    """A renderable syslog template.

    Attributes:
        name: unique catalog key, e.g. ``"bgp_keepalive"``.
        process: emitting daemon.
        severity: syslog severity of rendered messages.
        facility: syslog facility.
        pattern: text with ``{placeholders}`` filled at render time.
        weight: default relative frequency in routine traffic (profiles
            rescale these per role).
    """

    name: str
    process: str
    severity: Severity
    pattern: str
    facility: Facility = Facility.DAEMON
    weight: float = 1.0

    def render(
        self, timestamp: float, host: str, rng: np.random.Generator
    ) -> SyslogMessage:
        """Render a concrete message at ``timestamp`` on ``host``."""
        fields = _pattern_fields(self.pattern)
        values = {
            name: _PLACEHOLDER_MAKERS[name](rng) for name in fields
        }
        return SyslogMessage(
            timestamp=timestamp,
            host=host,
            process=self.process,
            text=self.pattern.format(**values),
            severity=self.severity,
            facility=self.facility,
        )


_USERS = ("netops", "autoconf", "oper", "admin")

#: One value-maker per supported placeholder.  Only the placeholders a
#: pattern actually uses are drawn, keeping rendering cheap.
_PLACEHOLDER_MAKERS = {
    "iface": lambda rng: (
        f"ge-{rng.integers(0, 4)}/{rng.integers(0, 4)}/"
        f"{rng.integers(0, 48)}"
    ),
    "unit": lambda rng: int(rng.integers(0, 512)),
    "ip": lambda rng: (
        f"10.{rng.integers(0, 256)}.{rng.integers(0, 256)}."
        f"{rng.integers(1, 255)}"
    ),
    "peer_ip": lambda rng: (
        f"172.16.{rng.integers(0, 256)}.{rng.integers(1, 255)}"
    ),
    "asn": lambda rng: _PEER_ASNS[rng.integers(len(_PEER_ASNS))],
    "num": lambda rng: int(rng.integers(1, 10000)),
    "small": lambda rng: int(rng.integers(1, 64)),
    "pct": lambda rng: int(rng.integers(1, 100)),
    "ms": lambda rng: int(rng.integers(1, 2000)),
    "temp": lambda rng: int(rng.integers(30, 95)),
    "slot": lambda rng: int(rng.integers(0, 8)),
    "vm": lambda rng: f"vm{rng.integers(0, 16)}",
    "user": lambda rng: _USERS[rng.integers(len(_USERS))],
    "daemon": lambda rng: _DAEMON_NAMES[rng.integers(len(_DAEMON_NAMES))],
}


ROUTINE_TEMPLATES: Tuple[LogTemplateSpec, ...] = (
    # -- routing-protocol chatter (the bulk of PE logs) -----------------
    LogTemplateSpec(
        "bgp_keepalive", "rpd", Severity.INFO,
        "BGP_KEEPALIVE: keepalive received from peer {peer_ip} (AS {asn})",
        weight=10.0,
    ),
    LogTemplateSpec(
        "bgp_update", "rpd", Severity.INFO,
        "BGP_UPDATE: {num} prefixes updated from peer {peer_ip}",
        weight=8.0,
    ),
    LogTemplateSpec(
        "bgp_session_established", "rpd", Severity.NOTICE,
        "BGP_SESSION: session with {peer_ip} (AS {asn}) established",
        weight=0.6,
    ),
    LogTemplateSpec(
        "bgp_hold_timer", "rpd", Severity.WARNING,
        "BGP_HOLD_TIMER: hold timer expired for peer {peer_ip}",
        weight=0.2,
    ),
    LogTemplateSpec(
        "ospf_hello", "rpd", Severity.INFO,
        "OSPF_HELLO: hello from neighbor {ip} on {iface}",
        weight=6.0,
    ),
    LogTemplateSpec(
        "ospf_spf", "rpd", Severity.INFO,
        "OSPF_SPF: SPF computation completed in {ms} ms",
        weight=2.0,
    ),
    LogTemplateSpec(
        "ldp_session", "rpd", Severity.INFO,
        "LDP_SESSION: session {peer_ip} state operational",
        weight=2.0,
    ),
    LogTemplateSpec(
        "rsvp_refresh", "rpd", Severity.INFO,
        "RSVP_REFRESH: path refresh for LSP {num} via {iface}",
        weight=2.5,
    ),
    # -- interface and data-plane events ---------------------------------
    LogTemplateSpec(
        "ifup", "dcd", Severity.NOTICE,
        "SNMP_TRAP_LINK_UP: ifIndex {num}, ifAdminStatus up, "
        "ifOperStatus up, ifName {iface}",
        weight=0.8,
    ),
    LogTemplateSpec(
        "ifdown_routine", "dcd", Severity.WARNING,
        "SNMP_TRAP_LINK_DOWN: ifIndex {num}, ifAdminStatus up, "
        "ifOperStatus down, ifName {iface}",
        weight=0.3,
    ),
    LogTemplateSpec(
        "cos_queue", "cosd", Severity.INFO,
        "COS_QUEUE: scheduler map updated on {iface} unit {unit}",
        weight=1.2,
    ),
    LogTemplateSpec(
        "firewall_match", "kernel", Severity.INFO,
        "FW_MATCH: filter accept-bgp matched {num} packets from {ip}",
        facility=Facility.KERNEL, weight=3.0,
    ),
    # -- management plane -------------------------------------------------
    LogTemplateSpec(
        "snmp_get", "snmpd", Severity.INFO,
        "SNMP_GET: get-bulk from manager {ip} oid ifTable",
        weight=5.0,
    ),
    LogTemplateSpec(
        "snmp_auth_fail", "snmpd", Severity.WARNING,
        "SNMP_AUTH_FAIL: authentication failure from {ip}",
        weight=0.15,
    ),
    LogTemplateSpec(
        "ntp_sync", "ntpd", Severity.INFO,
        "NTP_SYNC: clock synchronized to {ip} offset {ms} ms",
        facility=Facility.NTP, weight=1.0,
    ),
    LogTemplateSpec(
        "ssh_login", "sshd", Severity.INFO,
        "SSHD_LOGIN: accepted publickey for {user} from {ip}",
        facility=Facility.AUTH, weight=0.8,
    ),
    LogTemplateSpec(
        "ssh_logout", "sshd", Severity.INFO,
        "SSHD_LOGOUT: session closed for {user}",
        facility=Facility.AUTH, weight=0.8,
    ),
    LogTemplateSpec(
        "config_commit", "mgd", Severity.NOTICE,
        "UI_COMMIT: user {user} committed configuration",
        weight=0.4,
    ),
    LogTemplateSpec(
        "mib2d_stats", "mib2d", Severity.INFO,
        "MIB2D_STATS: interface statistics poll completed, {num} ifs",
        weight=2.0,
    ),
    # -- chassis / platform -----------------------------------------------
    LogTemplateSpec(
        "chassis_poll", "chassisd", Severity.INFO,
        "CHASSISD_POLL: environment poll ok, {small} sensors nominal",
        weight=2.0,
    ),
    LogTemplateSpec(
        "fan_speed", "chassisd", Severity.INFO,
        "CHASSISD_FAN: fan tray {slot} speed adjusted to {pct} percent",
        weight=0.8,
    ),
    LogTemplateSpec(
        "temp_reading", "chassisd", Severity.INFO,
        "CHASSISD_TEMP: slot {slot} temperature {temp} C",
        weight=1.0,
    ),
    # -- NFV / virtualization layer (vPE-specific chatter) ----------------
    LogTemplateSpec(
        "vm_heartbeat", "vmmd", Severity.INFO,
        "VMMD_HEARTBEAT: {vm} heartbeat ok, cpu {pct} percent",
        weight=4.0,
    ),
    LogTemplateSpec(
        "vm_resource", "hypervisord", Severity.INFO,
        "HYPERVISOR_RESOURCE: {vm} memory ballooning to {pct} percent",
        weight=1.5,
    ),
    LogTemplateSpec(
        "vm_migrate_ok", "hypervisord", Severity.NOTICE,
        "HYPERVISOR_MIGRATE: {vm} live migration completed in {ms} ms",
        weight=0.2,
    ),
    LogTemplateSpec(
        "vnf_kpi", "vmmd", Severity.INFO,
        "VMMD_KPI: forwarding rate {num} kpps on {vm}",
        weight=3.0,
    ),
)


#: Physical-layer messages: common on pPEs, nearly absent on vPEs
#: because virtualization hides the lower layers (section 2).
PHYSICAL_TEMPLATES: Tuple[LogTemplateSpec, ...] = (
    LogTemplateSpec(
        "optics_power", "chassisd", Severity.INFO,
        "SFP_OPTICS: {iface} rx power -{small}.{small} dBm",
        weight=5.0,
    ),
    LogTemplateSpec(
        "fpc_status", "chassisd", Severity.INFO,
        "FPC_STATUS: FPC {slot} CPU {pct} percent heap {pct} percent",
        weight=5.0,
    ),
    LogTemplateSpec(
        "pic_poll", "chassisd", Severity.INFO,
        "PIC_POLL: PIC {slot}/{small} status online",
        weight=4.0,
    ),
    LogTemplateSpec(
        "sonet_alarm", "chassisd", Severity.WARNING,
        "SONET_ALARM: {iface} reported LOS cleared",
        weight=1.0,
    ),
    LogTemplateSpec(
        "power_supply", "chassisd", Severity.INFO,
        "PEM_STATUS: power entry module {slot} voltage nominal",
        weight=3.0,
    ),
    LogTemplateSpec(
        "backplane_crc", "kernel", Severity.INFO,
        "BACKPLANE_CRC: slot {slot} crc counter {num}",
        facility=Facility.KERNEL, weight=2.0,
    ),
)


#: Symptom templates injected by fault bursts, keyed by root-cause
#: value (string keys avoid a circular import with repro.tickets).
FAULT_SYMPTOM_TEMPLATES: Dict[str, Tuple[LogTemplateSpec, ...]] = {
    "circuit": (
        LogTemplateSpec(
            "bgp_unusable_aspath", "rpd", Severity.ERROR,
            "BGP_UNUSABLE_ASPATH: bgp reject path from peer {peer_ip} "
            "(AS {asn})",
        ),
        LogTemplateSpec(
            "bgp_peer_down", "rpd", Severity.ERROR,
            "BGP_NEIGHBOR_DOWN: peer {peer_ip} (AS {asn}) went from "
            "Established to Idle",
        ),
        LogTemplateSpec(
            "circuit_ifdown", "dcd", Severity.ERROR,
            "SNMP_TRAP_LINK_DOWN: ifIndex {num}, circuit to {ip} "
            "operationally down, ifName {iface}",
        ),
        LogTemplateSpec(
            "ldp_session_down", "rpd", Severity.ERROR,
            "LDP_SESSION_DOWN: session {peer_ip} closed, discovery lost",
        ),
    ),
    "cable": (
        LogTemplateSpec(
            "link_flap", "dcd", Severity.WARNING,
            "LINK_FLAP: {iface} flapped {small} times in {small} seconds",
        ),
        LogTemplateSpec(
            "optics_degraded", "chassisd", Severity.WARNING,
            "SFP_OPTICS_DEGRADED: {iface} rx power below threshold "
            "-{small}.{small} dBm",
        ),
        LogTemplateSpec(
            "crc_errors", "kernel", Severity.WARNING,
            "IF_CRC_ERRORS: {iface} input crc errors {num}",
            facility=Facility.KERNEL,
        ),
    ),
    "hardware": (
        LogTemplateSpec(
            "chassis_peer_invalid", "chassisd", Severity.ERROR,
            "CHASSISD_IPC: invalid response from peer chassis-control "
            "connection {small}",
        ),
        LogTemplateSpec(
            "fan_failure", "chassisd", Severity.CRITICAL,
            "CHASSISD_FAN_FAILURE: fan tray {slot} failure detected",
        ),
        LogTemplateSpec(
            "temp_hot", "chassisd", Severity.ALERT,
            "CHASSISD_OVER_TEMP: slot {slot} temperature {temp} C "
            "exceeds threshold",
        ),
        LogTemplateSpec(
            "card_error", "chassisd", Severity.ERROR,
            "FPC_ERROR: FPC {slot} parity error at address 0x{num}",
        ),
    ),
    "software": (
        LogTemplateSpec(
            "daemon_crash", "init", Severity.CRITICAL,
            "INIT_PROCESS_EXIT: {daemon} exited on signal 11, restarting",
        ),
        LogTemplateSpec(
            "memory_leak", "kernel", Severity.ERROR,
            "KERNEL_MEMORY: {daemon} rss {num} MB exceeds watermark",
            facility=Facility.KERNEL,
        ),
        LogTemplateSpec(
            "vm_unresponsive", "hypervisord", Severity.ERROR,
            "HYPERVISOR_VM_STALL: {vm} vcpu stalled for {small} seconds",
        ),
        LogTemplateSpec(
            "rpd_scheduler_slip", "rpd", Severity.WARNING,
            "RPD_SCHED_SLIP: scheduler slip of {ms} ms detected",
        ),
    ),
    "maintenance": (
        LogTemplateSpec(
            "maint_commit", "mgd", Severity.NOTICE,
            "UI_COMMIT: user {user} committed configuration "
            "(maintenance window)",
        ),
        LogTemplateSpec(
            "graceful_restart", "rpd", Severity.NOTICE,
            "BGP_GRACEFUL_RESTART: graceful restart initiated for "
            "peer {peer_ip}",
        ),
        LogTemplateSpec(
            "package_install", "mgd", Severity.NOTICE,
            "PKG_INSTALL: software package {num} staged for install",
        ),
    ),
}


#: Templates introduced only after a software update (section 3.3):
#: new daemons and renamed events shift the syslog distribution.
UPDATE_TEMPLATES: Tuple[LogTemplateSpec, ...] = (
    LogTemplateSpec(
        "telemetry_export", "telemetryd", Severity.INFO,
        "TELEMETRY_EXPORT: streamed {num} sensors to collector {ip}",
        weight=6.0,
    ),
    LogTemplateSpec(
        "bgp_keepalive_v2", "rpd", Severity.INFO,
        "BGP_IO_KEEPALIVE: keepalive processed for neighbor {peer_ip} "
        "hold {small}",
        weight=8.0,
    ),
    LogTemplateSpec(
        "healthd_probe", "healthd", Severity.INFO,
        "HEALTHD_PROBE: liveness probe ok latency {ms} ms",
        weight=4.0,
    ),
    LogTemplateSpec(
        "vm_heartbeat_v2", "vmmd", Severity.INFO,
        "VMMD_HB2: heartbeat v2 {vm} ok cpu {pct} mem {pct}",
        weight=4.0,
    ),
    LogTemplateSpec(
        "ospf_hello_v2", "rpd", Severity.INFO,
        "OSPF_ADJ: adjacency refresh neighbor {ip} interface {iface}",
        weight=5.0,
    ),
    LogTemplateSpec(
        "snmp_poll_v2", "snmpd", Severity.INFO,
        "SNMP_POLL: bulk poll v2 from collector {ip} rows {num}",
        weight=4.0,
    ),
    LogTemplateSpec(
        "bgp_update_v2", "rpd", Severity.INFO,
        "BGP_RIB_UPDATE: rib install {num} routes neighbor {peer_ip}",
        weight=6.0,
    ),
)


def catalog_by_name() -> Dict[str, LogTemplateSpec]:
    """Index every catalog template by its unique name."""
    specs: List[LogTemplateSpec] = [
        *ROUTINE_TEMPLATES,
        *PHYSICAL_TEMPLATES,
        *UPDATE_TEMPLATES,
    ]
    for group in FAULT_SYMPTOM_TEMPLATES.values():
        specs.extend(group)
    index: Dict[str, LogTemplateSpec] = {}
    for spec in specs:
        if spec.name in index:
            raise ValueError(f"duplicate template name {spec.name!r}")
        index[spec.name] = spec
    return index
