"""Correlated-outage scenario preset.

Packages the topology-aware fault-propagation condition as a
reproducible simulation preset, the way :mod:`repro.synthesis.soak`
packages update drift: a fleet graph is generated over the vPEs, a
cycle of upstream-element outages (circuit, software cohort, cable,
site, single device) propagates along its edges, and the background
fault processes are damped so the correlated bursts dominate the
anomaly stream.  ``python -m repro simulate --topology --scenario
correlated-outage`` builds traces from this preset; the ``rca-e2e``
CI job drives one through ``serve --rca`` end to end.
"""

from __future__ import annotations

from repro.synthesis.fleet import SimulationConfig
from repro.topology import TopologyConfig

#: Background (uncorrelated) fault intensity in the scenario: low
#: enough that labeled outages dominate the incident stream, nonzero
#: so the RCA engine still sees the occasional solo anomaly.
OUTAGE_BACKGROUND_FAULT_RATE = 0.1


def correlated_outage_config(
    n_vpes: int = 16,
    n_months: int = 2,
    seed: int = 7,
    base_rate_per_hour: float = 6.0,
    n_outages: int = 5,
    attenuation: float = 0.85,
) -> SimulationConfig:
    """The correlated-outage scenario preset.

    Returns a :class:`SimulationConfig` with a fleet topology and
    ``n_outages`` planned upstream outages (cycling through every
    cause kind), no mid-trace software update and no fleet-wide
    circuit events (both would confound attribution), damped
    background faults, and a sparse maintenance schedule.  Defaults
    fit CI budgets; raise ``n_vpes``/``n_outages`` for benchmarks.

    The default fleet size divides evenly through the group sizes
    (16 vPEs -> 8 circuits -> 4 sites -> 2 cables), so no cable ends
    up covering exactly one site's devices — coverage-identical
    elements would make their outage kinds unattributable.
    """
    return SimulationConfig(
        n_vpes=n_vpes,
        n_months=n_months,
        seed=seed,
        base_rate_per_hour=base_rate_per_hour,
        update_month=None,
        n_fleet_events=0,
        fault_rate_multiplier=OUTAGE_BACKGROUND_FAULT_RATE,
        cascade_probability=0.0,
        maintenance_interval_days=10 * 30.0,
        # Small groups keep the graph layered even at CI fleet sizes
        # (a dozen vPEs still spread over several sites and cables),
        # so site and cable outages stay distinguishable by coverage.
        topology=TopologyConfig(
            devices_per_circuit=2,
            circuits_per_site=2,
            sites_per_cable=2,
        ),
        n_correlated_outages=n_outages,
        outage_attenuation=attenuation,
    )


__all__ = [
    "OUTAGE_BACKGROUND_FAULT_RATE",
    "correlated_outage_config",
]
