"""End-to-end fleet simulation driver.

:class:`FleetSimulator` assembles everything in :mod:`repro.synthesis`
into one deterministic trace generator: routine Markov log streams per
vPE, fault injections with symptom bursts, scheduled maintenance, rare
fleet-wide circuit events, a mid-trace software update, and the ticket
processing flow that turns monitoring signals into trouble tickets.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.logs.message import Severity, SyslogMessage
from repro.synthesis.catalog import catalog_by_name
from repro.synthesis.correlated import (
    OUTAGE_SEED_TAG,
    GroundTruthIncident,
    plan_correlated_outages,
)
from repro.synthesis.dataset import FleetDataset
from repro.synthesis.faults import (
    DEFAULT_FAULT_MODELS,
    FaultInjector,
    FaultTypeModel,
    fleet_wide_circuit_event,
)
from repro.synthesis.maintenance import MaintenanceScheduler
from repro.synthesis.markov import (
    MarkovLogGenerator,
    MarkovStructure,
    build_structure,
)
from repro.synthesis.profiles import (
    ROLES,
    VpeProfile,
    build_fleet_profiles,
    role_base_weights,
)
from repro.synthesis.updates import SoftwareUpdate
from repro.tickets.processing import (
    MonitoringSignal,
    TicketingPolicy,
    TicketProcessor,
)
from repro.timeutil import MONTH, TRACE_START
from repro.topology import (
    FleetTopology,
    TopologyConfig,
    generate_topology,
)


@dataclass(frozen=True)
class SimulationConfig:
    """All the knobs of one simulated deployment.

    The defaults model the paper's deployment shape (38 vPEs, 18
    months); tests and benchmarks shrink ``n_vpes`` / ``n_months`` /
    ``base_rate_per_hour`` to keep numpy-LSTM training affordable.

    Attributes:
        n_vpes: fleet size.
        n_months: trace length in 30-day months.
        seed: master seed; every stream derives from it.
        base_rate_per_hour: mean routine log rate per vPE.
        coherence: Markov coherence of routine logs (how learnable
            normal sequences are).
        update_month: month index at which the software update rolls
            out; ``None`` disables it.  The paper's update lands about
            14 months in ("between late 2017 and early 2018").
        update_fraction: fraction of vPEs the update touches.
        n_fleet_events: number of fleet-wide circuit disruptions.
        benign_bursts_per_day: rate of benign event storms per vPE —
            tight clusters of rare-but-harmless messages (auth-fail
            storms, routine flaps) that pressure the detector's false
            alarm rate; these never produce tickets.
        novelty_events_per_day: rate of long-tail novelty events per
            vPE — small clusters of never-seen-before message shapes
            (daemon hiccups, one-off diagnostics).  They are the
            irreducible false-alarm floor of log anomaly detection.
        maintenance_interval_days: mean maintenance cadence per vPE.
        fault_models: per-root-cause fault behaviour.
        fault_rate_multiplier: scales every fault model's rate;
            benchmarks raise it to collect enough per-root-cause
            tickets at reduced fleet scale.
        cascade_probability: chance a fault triggers a follow-up fault
            within hours (the short-gap mass of Figure 1(b)).
        lemon_fraction: fraction of devices with elevated fault rates
            (the volume skew of Figure 2).
        generate_kpis: also produce per-vPE service-level KPI series
            (see :mod:`repro.synthesis.kpi`).
        ticketing: ticket-processing policy.
        topology: fleet-graph shape; when set, the simulation builds
            a :class:`~repro.topology.FleetTopology` over the fleet
            (its seed is overridden by the master ``seed``).
        n_correlated_outages: correlated upstream-element outages to
            plan over the topology (see
            :mod:`repro.synthesis.correlated`).
        outage_attenuation: per-hop symptom-emission attenuation of
            correlated outages.
    """

    n_vpes: int = 38
    n_months: int = 18
    seed: int = 7
    base_rate_per_hour: float = 40.0
    coherence: float = 0.7
    update_month: Optional[int] = 14
    update_fraction: float = 0.6
    n_fleet_events: int = 2
    benign_bursts_per_day: float = 0.2
    novelty_events_per_day: float = 0.05
    maintenance_interval_days: float = 45.0
    fault_models: Tuple[FaultTypeModel, ...] = DEFAULT_FAULT_MODELS
    fault_rate_multiplier: float = 1.0
    cascade_probability: float = 0.25
    lemon_fraction: float = 0.15
    generate_kpis: bool = False
    ticketing: TicketingPolicy = field(default_factory=TicketingPolicy)
    topology: Optional[TopologyConfig] = None
    n_correlated_outages: int = 0
    outage_attenuation: float = 0.85

    def __post_init__(self) -> None:
        if self.n_correlated_outages < 0:
            raise ValueError("n_correlated_outages must be >= 0")
        if self.n_correlated_outages > 0 and self.topology is None:
            raise ValueError(
                "correlated outages require a topology config"
            )
        if not 0.0 < self.outage_attenuation <= 1.0:
            raise ValueError("outage_attenuation must be in (0, 1]")
        if self.n_vpes < 1:
            raise ValueError("n_vpes must be >= 1")
        if self.n_months < 1:
            raise ValueError("n_months must be >= 1")
        if not 0.0 <= self.update_fraction <= 1.0:
            raise ValueError("update_fraction must be in [0, 1]")
        if self.update_month is not None and not (
            0 < self.update_month < self.n_months
        ):
            raise ValueError(
                "update_month must fall inside the trace (exclusive)"
            )

    @property
    def start(self) -> float:
        """Trace start time in seconds."""
        return TRACE_START

    @property
    def end(self) -> float:
        """Trace end time in seconds."""
        return TRACE_START + self.n_months * MONTH

    @property
    def update_time(self) -> Optional[float]:
        """Timestamp of the software update (None when disabled)."""
        if self.update_month is None:
            return None
        return TRACE_START + self.update_month * MONTH


class FleetSimulator:
    """Generate a :class:`FleetDataset` from a :class:`SimulationConfig`."""

    def __init__(self, config: Optional[SimulationConfig] = None) -> None:
        self.config = config or SimulationConfig()
        self._catalog = catalog_by_name()

    def run(self) -> FleetDataset:
        """Simulate the whole deployment and return the dataset."""
        config = self.config
        profiles = build_fleet_profiles(
            n_vpes=config.n_vpes,
            seed=config.seed,
            base_rate_per_hour=config.base_rate_per_hour,
            lemon_fraction=config.lemon_fraction,
        )
        update = self._plan_update(profiles)
        topology: Optional[FleetTopology] = None
        if config.topology is not None:
            topology = generate_topology(
                [profile.name for profile in profiles],
                replace(config.topology, seed=config.seed),
            )
        injector = FaultInjector(
            config.fault_models,
            cascade_probability=config.cascade_probability,
            rate_multiplier=config.fault_rate_multiplier,
        )
        scheduler = MaintenanceScheduler(
            interval_days=config.maintenance_interval_days
        )
        all_signals: List[MonitoringSignal] = []
        streams: Dict[str, List[SyslogMessage]] = {}
        faults_by_vpe: Dict[str, list] = {}
        for index, profile in enumerate(profiles):
            rng = np.random.default_rng([config.seed, 100 + index])
            messages, signals, fault_events = self._simulate_vpe(
                profile, update, injector, scheduler, rng
            )
            streams[profile.name] = messages
            faults_by_vpe[profile.name] = fault_events
            all_signals.extend(signals)
        all_signals.extend(
            self._fleet_events(profiles, injector, streams)
        )
        incidents: List[GroundTruthIncident] = []
        if config.n_correlated_outages > 0:
            assert topology is not None  # enforced by the config
            incidents = self._correlated_outages(
                topology, injector, streams, faults_by_vpe, all_signals
            )
        tickets = TicketProcessor(config.ticketing).process(all_signals)
        for stream in streams.values():
            stream.sort(key=lambda message: message.timestamp)
        kpis: Dict[str, list] = {}
        if config.generate_kpis:
            from repro.synthesis.kpi import KpiSimulator

            kpi_simulator = KpiSimulator()
            for index, profile in enumerate(profiles):
                rng = np.random.default_rng(
                    [config.seed, 500 + index]
                )
                kpis[profile.name] = kpi_simulator.generate(
                    config.start,
                    config.end,
                    faults_by_vpe[profile.name],
                    rng,
                )
        return FleetDataset(
            profiles=profiles,
            messages=streams,
            tickets=tickets,
            updates=[update] if update else [],
            start=config.start,
            end=config.end,
            kpis=kpis,
            topology=topology,
            incidents=incidents,
        )

    def _correlated_outages(
        self,
        topology: FleetTopology,
        injector: FaultInjector,
        streams: Dict[str, List[SyslogMessage]],
        faults_by_vpe: Dict[str, list],
        signals_out: List[MonitoringSignal],
    ) -> List[GroundTruthIncident]:
        """Plan and materialize the correlated-outage scenario.

        All draws come from the ``[seed, OUTAGE_SEED_TAG]`` stream, so
        fault-site selection reproduces with the master seed alone.
        """
        config = self.config
        rng = np.random.default_rng([config.seed, OUTAGE_SEED_TAG])
        events_by_device, incidents = plan_correlated_outages(
            topology,
            config.start,
            config.end,
            config.n_correlated_outages,
            rng,
            models=config.fault_models,
            attenuation=config.outage_attenuation,
        )
        for device in sorted(events_by_device):
            for event in events_by_device[device]:
                faults_by_vpe[device].append(event)
                burst, event_signals = injector.materialize(
                    event,
                    rng,
                    reoccurrence_count=(
                        config.ticketing.reoccurrence_count
                    ),
                )
                streams[device].extend(
                    message
                    for message in burst
                    if message.timestamp < config.end
                )
                signals_out.extend(event_signals)
        return incidents

    def _plan_update(
        self, profiles: Sequence[VpeProfile]
    ) -> Optional[SoftwareUpdate]:
        config = self.config
        if config.update_time is None or config.update_fraction == 0.0:
            return None
        rng = np.random.default_rng([config.seed, 1])
        count = max(
            int(round(config.update_fraction * len(profiles))), 1
        )
        chosen = rng.choice(len(profiles), size=count, replace=False)
        return SoftwareUpdate(
            time=config.update_time,
            affected_vpes=frozenset(
                profiles[int(index)].name for index in chosen
            ),
        )

    def _simulate_vpe(
        self,
        profile: VpeProfile,
        update: Optional[SoftwareUpdate],
        injector: FaultInjector,
        scheduler: MaintenanceScheduler,
        rng: np.random.Generator,
    ) -> Tuple[List[SyslogMessage], List[MonitoringSignal], list]:
        config = self.config
        messages: List[SyslogMessage] = []
        signals: List[MonitoringSignal] = []
        fault_events: list = []

        # Routine stream, split at the update when it applies.
        segments = self._routine_segments(profile, update)
        for segment_index, (weights, seg_start, seg_end) in enumerate(
            segments
        ):
            structure = self._device_structure(
                profile, update, weights, segment_index
            )
            generator = MarkovLogGenerator(
                self._catalog,
                structure,
                rate_per_hour=profile.base_rate_per_hour,
                coherence=config.coherence,
            )
            messages.extend(
                generator.generate(profile.name, seg_start, seg_end, rng)
            )

        # Faults and their symptoms/signals.
        report_delay = (
            config.ticketing.verification_delay
            + (config.ticketing.reoccurrence_count - 1) * 60.0
        )
        for event in injector.draw_faults(
            profile, config.start, config.end, rng
        ):
            fault_events.append(event)
            burst, fault_signals = injector.materialize(
                event,
                rng,
                reoccurrence_count=config.ticketing.reoccurrence_count,
                expected_report_delay=report_delay,
            )
            messages.extend(
                message
                for message in burst
                if message.timestamp < config.end
            )
            signals.extend(fault_signals)

        # Benign event storms: anomaly-shaped but ticket-free.
        messages.extend(self._benign_bursts(profile, rng))

        # Long-tail novelty: unique message shapes, never ticketed.
        messages.extend(self._novelty_events(profile, rng))

        # Maintenance windows.
        for window in scheduler.schedule(
            profile, config.start, config.end, rng
        ):
            storm, window_signals = scheduler.materialize(
                window,
                rng,
                reoccurrence_count=config.ticketing.reoccurrence_count,
            )
            messages.extend(storm)
            signals.extend(window_signals)
        return messages, signals, fault_events

    #: Rare routine templates whose storms look anomalous but are
    #: operationally benign (no ticket follows).
    _BENIGN_BURST_TEMPLATES = (
        "snmp_auth_fail",
        "ifdown_routine",
        "bgp_hold_timer",
        "config_commit",
        "vm_migrate_ok",
    )

    def _benign_bursts(
        self, profile: VpeProfile, rng: np.random.Generator
    ) -> List[SyslogMessage]:
        """Tight clusters of benign rare messages (false-alarm pressure)."""
        config = self.config
        span_days = (config.end - config.start) / (24 * 3600.0)
        count = int(
            rng.poisson(config.benign_bursts_per_day * span_days)
        )
        messages: List[SyslogMessage] = []
        for _ in range(count):
            name = self._BENIGN_BURST_TEMPLATES[
                int(rng.integers(len(self._BENIGN_BURST_TEMPLATES)))
            ]
            spec = self._catalog[name]
            start = float(rng.uniform(config.start, config.end))
            timestamp = start
            for _ in range(int(rng.integers(6, 15))):
                messages.append(
                    spec.render(timestamp, profile.name, rng)
                )
                timestamp += float(rng.exponential(20.0))
        return messages

    _NOVELTY_PROCESSES = ("kernel", "mgd", "eventd", "craftd", "alarmd")

    def _novelty_events(
        self, profile: VpeProfile, rng: np.random.Generator
    ) -> List[SyslogMessage]:
        """Small clusters of one-off, never-repeated message shapes.

        Each event invents a fresh token structure (random words and
        token count), so the signature tree mines a brand-new template
        that no model has trained on — the irreducible false-alarm
        floor of unsupervised log anomaly detection.
        """
        config = self.config
        span_days = (config.end - config.start) / (24 * 3600.0)
        count = int(
            rng.poisson(config.novelty_events_per_day * span_days)
        )
        messages: List[SyslogMessage] = []
        letters = "abcdefghijklmnopqrstuvwxyz"
        for _ in range(count):
            words = [
                "".join(
                    letters[rng.integers(26)]
                    for _ in range(int(rng.integers(5, 11)))
                ).upper()
                for _ in range(int(rng.integers(4, 9)))
            ]
            text = " ".join(words)
            process = self._NOVELTY_PROCESSES[
                int(rng.integers(len(self._NOVELTY_PROCESSES)))
            ]
            start = float(rng.uniform(config.start, config.end))
            timestamp = start
            for _ in range(int(rng.integers(2, 5))):
                messages.append(
                    SyslogMessage(
                        timestamp=timestamp,
                        host=profile.name,
                        process=process,
                        text=text,
                        severity=Severity.NOTICE,
                    )
                )
                timestamp += float(rng.exponential(45.0))
        return messages

    def _device_structure(
        self,
        profile: VpeProfile,
        update: Optional[SoftwareUpdate],
        device_weights: Dict[str, float],
        segment_index: int,
    ) -> MarkovStructure:
        """Role-shared transition skeleton + device-specific mix.

        Devices of one role share the successor structure (seeded from
        the role, not the device): same-cluster vPEs speak compatible
        log languages, which is what makes grouped model training pool
        meaningfully (section 4.3).  The stationary distribution keeps
        the device's jittered weights so no two devices are identical.
        """
        base = role_base_weights(profile.role)
        if segment_index > 0 and update is not None:
            base = update.rewrite_weights(base)
        role_rng = np.random.default_rng(
            [
                self.config.seed,
                7,
                ROLES.index(profile.role),
                segment_index,
            ]
        )
        skeleton = build_structure(base, role_rng)
        stationary = np.array(
            [device_weights[name] for name in skeleton.names]
        )
        stationary = stationary / stationary.sum()
        return MarkovStructure(
            names=skeleton.names,
            stationary=stationary,
            successors=skeleton.successors,
            successor_probs=skeleton.successor_probs,
        )

    def _routine_segments(
        self,
        profile: VpeProfile,
        update: Optional[SoftwareUpdate],
    ) -> List[Tuple[Dict[str, float], float, float]]:
        """(weights, start, end) segments of the routine stream."""
        config = self.config
        if update is None or profile.name not in update.affected_vpes:
            return [(profile.template_weights, config.start, config.end)]
        return [
            (profile.template_weights, config.start, update.time),
            (
                update.rewrite_weights(profile.template_weights),
                update.time,
                config.end,
            ),
        ]

    def _fleet_events(
        self,
        profiles: Sequence[VpeProfile],
        injector: FaultInjector,
        streams: Dict[str, List[SyslogMessage]],
    ) -> List[MonitoringSignal]:
        """Inject the rare fleet-wide circuit disruptions (Figure 2)."""
        config = self.config
        signals: List[MonitoringSignal] = []
        rng = np.random.default_rng([config.seed, 2])
        for _ in range(config.n_fleet_events):
            timestamp = float(rng.uniform(config.start, config.end))
            for event in fleet_wide_circuit_event(
                profiles, timestamp, rng, models=config.fault_models
            ):
                burst, event_signals = injector.materialize(
                    event,
                    rng,
                    reoccurrence_count=(
                        config.ticketing.reoccurrence_count
                    ),
                )
                streams[event.vpe].extend(
                    message
                    for message in burst
                    if message.timestamp < config.end
                )
                signals.extend(event_signals)
        return signals
