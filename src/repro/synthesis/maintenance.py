"""Scheduled maintenance windows.

Figure 1(a): maintenance is the dominant ticket category, and it is
predictable because windows are pre-scheduled.  Each device gets a
recurring window (with jitter) during which a maintenance log storm is
emitted and a MAINTENANCE ticket signal fires.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.logs.message import SyslogMessage
from repro.synthesis.catalog import FAULT_SYMPTOM_TEMPLATES
from repro.synthesis.profiles import VpeProfile
from repro.tickets.processing import MonitoringSignal
from repro.tickets.ticket import RootCause
from repro.timeutil import DAY, HOUR, MINUTE

_maintenance_ids = itertools.count(10_000_000)


@dataclass(frozen=True)
class MaintenanceWindow:
    """One scheduled maintenance action on one device."""

    vpe: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("maintenance window must have positive length")


class MaintenanceScheduler:
    """Generate recurring maintenance windows per device.

    Args:
        interval_days: mean days between windows per device.
        window_hours: window duration.
        night_hour: windows open near this local hour (maintenance is
            done off-peak).
    """

    def __init__(
        self,
        interval_days: float = 21.0,
        window_hours: float = 2.0,
        night_hour: float = 2.0,
    ) -> None:
        if interval_days <= 0 or window_hours <= 0:
            raise ValueError("interval and window must be positive")
        self.interval_days = interval_days
        self.window_hours = window_hours
        self.night_hour = night_hour

    def schedule(
        self,
        profile: VpeProfile,
        start: float,
        end: float,
        rng: np.random.Generator,
    ) -> List[MaintenanceWindow]:
        """Draw this device's maintenance windows over ``[start, end)``."""
        windows: List[MaintenanceWindow] = []
        cursor = start + float(
            rng.uniform(0.2, 1.0) * self.interval_days * DAY
        )
        while cursor < end:
            day_start = cursor - (cursor % DAY)
            opens = day_start + self.night_hour * HOUR + float(
                rng.uniform(-30, 30) * MINUTE
            )
            opens = max(opens, start)
            closes = opens + self.window_hours * HOUR
            if opens < end:
                windows.append(
                    MaintenanceWindow(
                        vpe=profile.name, start=opens, end=closes
                    )
                )
            cursor += float(
                rng.lognormal(np.log(self.interval_days * DAY), 0.3)
            )
        return windows

    def materialize(
        self,
        window: MaintenanceWindow,
        rng: np.random.Generator,
        reoccurrence_count: int = 2,
    ) -> Tuple[List[SyslogMessage], List[MonitoringSignal]]:
        """Emit the maintenance log storm and ticket signals."""
        templates = FAULT_SYMPTOM_TEMPLATES[RootCause.MAINTENANCE.value]
        messages: List[SyslogMessage] = []
        timestamp = window.start
        mean_gap = 2 * MINUTE
        while timestamp < window.end:
            spec = templates[int(rng.integers(len(templates)))]
            messages.append(spec.render(timestamp, window.vpe, rng))
            timestamp += max(float(rng.exponential(mean_gap)), 1.0)
        fault_id = next(_maintenance_ids)
        signals = [
            MonitoringSignal(
                timestamp=window.start + index * MINUTE,
                vpe=window.vpe,
                signature="maintenance-window",
                root_cause=RootCause.MAINTENANCE,
                fault_id=fault_id,
                clears_at=window.end,
            )
            for index in range(reoccurrence_count)
        ]
        return messages, signals
