"""Command-line interface: the operator workflow end to end.

Subcommands::

    python -m repro simulate --out trace/ --vpes 4 --months 2
    python -m repro mine     --trace trace/ --out templates.json
    python -m repro train    --trace trace/ --templates templates.json \
                             --out model/
    python -m repro detect   --trace trace/ --model model/ \
                             --out anomalies.csv
    python -m repro report   --trace trace/ --anomalies anomalies.csv
    python -m repro serve    --data-dir service/ --trace trace/ \
                             --model model/ --threshold 6.0

Data formats are deliberately simple and inspectable:

* ``trace/<vpe>.jsonl`` — one JSON object per syslog message;
* ``trace/tickets.csv`` — ``vpe,root_cause,report_time,repair_time``;
* ``trace/meta.json`` — trace bounds and simulation parameters;
* ``templates.json`` — the serialized template store;
* ``model/weights.npz`` + ``model/config.json`` — the LSTM detector;
* ``anomalies.csv`` — ``vpe,time,score`` rows above the threshold.
"""

from __future__ import annotations

import argparse
import csv
import json
import pathlib
import sys
from typing import Dict, List, Optional, Sequence, TextIO, Tuple

import numpy as np

from repro import telemetry
from repro.core.adaptation import distribution_shift, transfer_adapt
from repro.core.detector import LSTMAnomalyDetector
from repro.devtools.cli import add_check_parser
from repro.core.mapping import map_anomalies, warning_clusters
from repro.core.online import OnlineMonitor
from repro.evaluation.reporting import format_table
from repro.logs.message import (
    SyslogMessage,
    message_from_dict,
    message_to_dict,
)
from repro.logs.persistence import store_from_json, store_to_json
from repro.logs.templates import TemplateStore
from repro.rca import DEFAULT_CLUSTER_GAP, RcaEngine, incident_row
from repro.runtime.fleet import (
    FleetConfig,
    FleetCoordinator,
    FleetError,
    fleet_has_state,
    load_ring,
)
from repro.runtime.adapt import AdaptConfig, AdaptationController
from repro.runtime.service import (
    FAULT_AFTER_WAL_APPEND,
    AdaptiveTicker,
    MonitorService,
    ServiceConfig,
    TickResult,
    stage_release,
)
from repro.runtime.store import ArtifactStore, StoreError
from repro.synthesis import (
    FleetDataset,
    FleetSimulator,
    SimulationConfig,
    correlated_outage_config,
    update_soak_config,
    write_incidents,
)
from repro.tickets.ticket import RootCause, TroubleTicket
from repro.timeutil import DAY, MONTH, WEEK
from repro.topology import (
    FleetTopology,
    TopologyConfig,
    TopologyError,
)


# -- trace I/O ------------------------------------------------------------


def _message_to_json(message: SyslogMessage) -> str:
    return json.dumps(message_to_dict(message))


def _message_from_json(line: str) -> SyslogMessage:
    return message_from_dict(json.loads(line))


def write_trace(dataset: FleetDataset, out_dir: pathlib.Path) -> None:
    """Persist a FleetDataset as jsonl streams + tickets.csv + meta."""
    out_dir.mkdir(parents=True, exist_ok=True)
    for vpe, stream in dataset.messages.items():
        with open(out_dir / f"{vpe}.jsonl", "w") as handle:
            for message in stream:
                handle.write(_message_to_json(message) + "\n")
    with open(out_dir / "tickets.csv", "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["vpe", "root_cause", "report_time", "repair_time"]
        )
        for ticket in dataset.tickets:
            writer.writerow(
                [
                    ticket.vpe,
                    ticket.root_cause.value,
                    f"{ticket.report_time:.3f}",
                    f"{ticket.repair_time:.3f}",
                ]
            )
    if dataset.topology is not None:
        dataset.topology.save(out_dir / "topology.json")
    if dataset.incidents:
        write_incidents(dataset.incidents, out_dir / "incidents.csv")
    meta = {
        "start": dataset.start,
        "end": dataset.end,
        "vpes": dataset.vpe_names,
        "updates": [
            {
                "time": update.time,
                "affected": sorted(update.affected_vpes),
            }
            for update in dataset.updates
        ],
    }
    (out_dir / "meta.json").write_text(json.dumps(meta, indent=2))


def read_trace(
    trace_dir: pathlib.Path,
) -> Tuple[dict, Dict[str, List[SyslogMessage]], List[TroubleTicket]]:
    """Load a trace directory written by :func:`write_trace`."""
    meta = json.loads((trace_dir / "meta.json").read_text())
    messages: Dict[str, List[SyslogMessage]] = {}
    for vpe in meta["vpes"]:
        path = trace_dir / f"{vpe}.jsonl"
        with open(path) as handle:
            messages[vpe] = [
                _message_from_json(line) for line in handle
            ]
    tickets: List[TroubleTicket] = []
    with open(trace_dir / "tickets.csv") as handle:
        for row in csv.DictReader(handle):
            kwargs = {}
            if row["root_cause"] == RootCause.DUPLICATE.value:
                # originals are not tracked in the csv; synthesize one
                kwargs["original_ticket_id"] = -1
            tickets.append(
                TroubleTicket(
                    vpe=row["vpe"],
                    root_cause=RootCause(row["root_cause"]),
                    report_time=float(row["report_time"]),
                    repair_time=float(row["repair_time"]),
                    **kwargs,
                )
            )
    return meta, messages, tickets


def _normal_messages(
    messages: Sequence[SyslogMessage],
    tickets: Sequence[TroubleTicket],
    vpe: str,
    margin: float = 3 * DAY,
) -> List[SyslogMessage]:
    """The 3-day ticket scrub, over CLI-loaded data."""
    intervals = sorted(
        (t.report_time - margin, t.repair_time)
        for t in tickets
        if t.vpe == vpe
    )
    out = []
    for message in messages:
        if any(lo <= message.timestamp <= hi for lo, hi in intervals):
            continue
        out.append(message)
    return out


# -- subcommands ------------------------------------------------------------


def cmd_simulate(args: argparse.Namespace) -> int:
    """Generate a synthetic fleet trace and write it to ``--out``."""
    if args.scenario == "correlated-outage":
        if not args.topology:
            print(
                "--scenario correlated-outage requires --topology",
                file=sys.stderr,
            )
            return 2
        config = correlated_outage_config(
            n_vpes=args.vpes,
            n_months=args.months,
            seed=args.seed,
            base_rate_per_hour=args.rate,
            n_outages=args.outages,
        )
    elif args.scenario == "update-soak":
        config = update_soak_config(
            n_vpes=args.vpes,
            n_months=args.months,
            seed=args.seed,
            base_rate_per_hour=args.rate,
            update_month=(
                args.update_month
                if args.update_month is not None
                else max(1, args.months // 2)
            ),
        )
    else:
        config = SimulationConfig(
            n_vpes=args.vpes,
            n_months=args.months,
            seed=args.seed,
            base_rate_per_hour=args.rate,
            update_month=args.update_month,
            n_fleet_events=args.fleet_events,
            topology=TopologyConfig() if args.topology else None,
        )
    dataset = FleetSimulator(config).run()
    out_dir = pathlib.Path(args.out)
    write_trace(dataset, out_dir)
    extras = ""
    if dataset.topology is not None:
        extras = (
            f", topology over {len(dataset.topology)} devices"
            f", {len(dataset.incidents)} labeled outages"
        )
    print(
        f"wrote {dataset.n_messages:,} messages, "
        f"{len(dataset.tickets)} tickets to {out_dir}/{extras}"
    )
    return 0


def cmd_mine(args: argparse.Namespace) -> int:
    """Mine templates from a trace's ticket-scrubbed normal periods."""
    trace_dir = pathlib.Path(args.trace)
    _, messages, tickets = read_trace(trace_dir)
    training: List[SyslogMessage] = []
    for vpe, stream in messages.items():
        training.extend(_normal_messages(stream, tickets, vpe))
    training.sort(key=lambda m: m.timestamp)
    store = TemplateStore().fit(training[: args.max_messages])
    pathlib.Path(args.out).write_text(store_to_json(store))
    print(
        f"mined {store.vocabulary_size - 1} templates from "
        f"{min(len(training), args.max_messages):,} normal messages"
    )
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    """Train the LSTM detector on a trace's first ``--train-days``."""
    trace_dir = pathlib.Path(args.trace)
    meta, messages, tickets = read_trace(trace_dir)
    store = store_from_json(
        pathlib.Path(args.templates).read_text()
    )
    train_end = meta["start"] + args.train_days * DAY
    training_streams: List[List[SyslogMessage]] = []
    for vpe, stream in messages.items():
        training_streams.append([
            m
            for m in _normal_messages(stream, tickets, vpe)
            if m.timestamp < train_end
        ])
    detector = LSTMAnomalyDetector(
        store,
        vocabulary_capacity=args.capacity,
        window=args.window,
        hidden=(args.hidden, args.hidden),
        epochs=args.epochs,
        max_train_samples=args.max_samples,
        seed=args.seed,
    )
    detector.fit_streams(training_streams)
    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    detector.model.save(str(out_dir / "weights.npz"))
    (out_dir / "config.json").write_text(
        json.dumps(
            {
                "capacity": args.capacity,
                "window": args.window,
                "hidden": args.hidden,
                "templates": args.templates,
            }
        )
    )
    total = sum(len(stream) for stream in training_streams)
    print(
        f"trained on {total:,} normal messages; model in "
        f"{out_dir}/"
    )
    return 0


def _load_detector(model_dir: pathlib.Path) -> LSTMAnomalyDetector:
    config = json.loads((model_dir / "config.json").read_text())
    store = store_from_json(
        pathlib.Path(config["templates"]).read_text()
    )
    detector = LSTMAnomalyDetector(
        store,
        vocabulary_capacity=config["capacity"],
        window=config["window"],
        hidden=(config["hidden"], config["hidden"]),
    )
    detector.restore_weights(str(model_dir / "weights.npz"))
    return detector


def cmd_detect(args: argparse.Namespace) -> int:
    """Score a trace; write above-threshold anomalies as CSV."""
    trace_dir = pathlib.Path(args.trace)
    meta, messages, _ = read_trace(trace_dir)
    detector = _load_detector(pathlib.Path(args.model))
    scored = {
        vpe: detector.score(
            [m for m in stream if m.timestamp >= args.start]
            if args.start
            else stream
        )
        for vpe, stream in messages.items()
    }
    if args.threshold is None:
        pooled = np.concatenate(
            [s.scores for s in scored.values() if len(s)]
        )
        threshold = float(np.quantile(pooled, args.quantile))
    else:
        threshold = args.threshold
    rows = 0
    with open(args.out, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["vpe", "time", "score"])
        for vpe, stream in scored.items():
            mask = stream.scores > threshold
            for t, s in zip(stream.times[mask],
                            stream.scores[mask]):
                writer.writerow([vpe, f"{t:.3f}", f"{s:.4f}"])
                rows += 1
    print(
        f"wrote {rows} anomalies (threshold {threshold:.3f}) to "
        f"{args.out}"
    )
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Map detected anomalies to tickets; print the metrics table."""
    trace_dir = pathlib.Path(args.trace)
    meta, _, tickets = read_trace(trace_dir)
    per_vpe: Dict[str, List[float]] = {}
    with open(args.anomalies) as handle:
        for row in csv.DictReader(handle):
            per_vpe.setdefault(row["vpe"], []).append(
                float(row["time"])
            )
    detections = {
        vpe: warning_clusters(np.asarray(sorted(times)))
        for vpe, times in per_vpe.items()
    }
    mapping = map_anomalies(
        detections, tickets, predictive_period=args.window_days * DAY
    )
    counts = mapping.counts
    span = meta["end"] - meta["start"]
    table = format_table(
        ["metric", "value"],
        [
            ["warning signatures", len(mapping.records)],
            ["precision", f"{counts.precision:.2f}"],
            ["recall", f"{counts.recall:.2f}"],
            ["F-measure", f"{counts.f_measure:.2f}"],
            [
                "false alarms / day",
                f"{mapping.false_alarms_per_day(span):.2f}",
            ],
        ],
        title="detection report",
    )
    print(table)
    return 0


# -- serve ----------------------------------------------------------------


class _SimulatedCrash(Exception):
    """Raised by the ``--kill-after-ticks`` fault hook (exit code 3)."""


def _drain_incidents(
    service: MonitorService, handle: Optional[TextIO]
) -> int:
    """Write the RCA engine's newly closed incidents; return the count.

    Rows are ``repr(float)``-rendered (see
    :func:`repro.rca.incident_row`), so a crashed-then-replayed run's
    concatenated output collapses to the uninterrupted run's under
    ``sort -u`` — the parity the rca-e2e CI job asserts.
    """
    if service.rca is None:
        return 0
    reports = service.rca.drain_closed()
    if handle is not None and reports:
        for report in reports:
            handle.write(incident_row(report))
        handle.flush()
    return len(reports)


class _TickWriter:
    """Append-mode CSV sinks for tick outcomes, flushed per tick.

    Scores are written as ``repr(float)`` so the CSV round-trips the
    float64 bit pattern exactly — the service-e2e CI job diffs these
    files across a crashed-and-replayed run and an uninterrupted one.
    """

    def __init__(
        self,
        scores_path: Optional[str],
        warnings_path: Optional[str],
    ) -> None:
        self._scores = (
            open(scores_path, "a", newline="") if scores_path else None
        )
        self._warnings = (
            open(warnings_path, "a", newline="")
            if warnings_path
            else None
        )

    def write(self, results: Sequence[TickResult]) -> None:
        """Append one row per score and per warning; flush."""
        if self._scores is not None:
            writer = csv.writer(self._scores)
            for result in results:
                for i, score in enumerate(result.scores):
                    writer.writerow(
                        [
                            result.tick,
                            i,
                            repr(float(score)),
                            int(result.kept[i]),
                        ]
                    )
            self._scores.flush()
        if self._warnings is not None:
            writer = csv.writer(self._warnings)
            for result in results:
                for w in result.warnings:
                    writer.writerow(
                        [
                            result.tick,
                            w.vpe,
                            repr(w.time),
                            repr(w.first_anomaly),
                            w.n_anomalies,
                            repr(w.peak_score),
                        ]
                    )
            self._warnings.flush()

    def close(self) -> None:
        """Release the underlying file handles."""
        try:
            if self._scores is not None:
                self._scores.close()
        finally:
            if self._warnings is not None:
                self._warnings.close()


def _serve_feed(trace_dir: pathlib.Path) -> List[SyslogMessage]:
    """The trace merged into one deterministic arrival order."""
    meta, messages, _ = read_trace(trace_dir)
    feed = [
        message
        for vpe in meta["vpes"]
        for message in messages[vpe]
    ]
    feed.sort(key=lambda m: m.timestamp)  # stable: fixed vpe order
    return feed


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the durable monitoring service over a trace feed.

    Bootstraps the artifact store from ``--model``/``--threshold`` on
    first run; on later runs ``--replay`` restores the checkpoint and
    replays unacknowledged WAL ticks before resuming the feed.  With
    ``--shards N`` (N > 1) the same feed runs through the sharded
    fleet runtime instead: one worker process per shard, routed by the
    consistent-hash ring.  Exit codes: 0 on success, 2 on operator
    error, 3 when a crash was simulated (``--kill-after-ticks``, or
    ``--kill-shard K --after-ticks T`` in fleet mode).
    """
    registry = telemetry.MetricsRegistry()
    with telemetry.use(registry):
        if args.shards > 1:
            exit_code = _run_fleet_serve(args, registry)
        else:
            exit_code = _run_serve(args, registry)
    return exit_code


def _run_fleet_serve(
    args: argparse.Namespace, registry: "telemetry.MetricsRegistry"
) -> int:
    """The ``serve --shards N`` workflow over the fleet coordinator."""
    if args.auto_adapt:
        print(
            "--auto-adapt is a single-shard control loop; fleet "
            "shards adapt individually (run each shard data dir "
            "through serve --auto-adapt)",
            file=sys.stderr,
        )
        return 2
    if args.rollback:
        print(
            "--rollback applies to single-shard stores; roll back "
            "each shard-NN/store directory individually",
            file=sys.stderr,
        )
        return 2
    if args.kill_after_ticks is not None:
        print(
            "--kill-after-ticks is the single-shard drill; fleet "
            "mode uses --kill-shard K --after-ticks T",
            file=sys.stderr,
        )
        return 2
    if (args.kill_shard is None) != (args.after_ticks is None):
        print(
            "--kill-shard and --after-ticks go together",
            file=sys.stderr,
        )
        return 2
    config = FleetConfig(
        data_dir=args.data_dir,
        shards=args.shards,
        checkpoint_every=args.checkpoint_every,
        keep_releases=args.keep_releases,
        quantized=args.quantized,
        scores_out=args.scores_out,
        warnings_out=args.warnings_out,
        kill_shard=args.kill_shard,
        kill_after_ticks=args.after_ticks,
        rca=args.rca,
        topology_path=args.topology,
        rca_gap=args.rca_gap,
        incidents_out=args.incidents_out,
    )
    try:
        ring = load_ring(config)
    except FleetError as error:
        print(str(error), file=sys.stderr)
        return 2
    for shard in ring.shards:
        store = ArtifactStore(
            config.shard_config(shard).store_dir,
            keep_releases=config.keep_releases,
        )
        if store.current_id() is not None:
            continue
        if args.model is None or args.threshold is None:
            print(
                f"shard {shard} holds no release; bootstrap needs "
                "--model and --threshold",
                file=sys.stderr,
            )
            return 2
        detector = _load_detector(pathlib.Path(args.model))
        release = stage_release(store, detector, args.threshold)
        print(
            f"published release {release.release_id} to shard {shard}"
        )
    if fleet_has_state(config) and not args.replay:
        print(
            f"{config.data_dir} has prior fleet state; rerun with "
            "--replay to recover it (refusing to ingest blind)",
            file=sys.stderr,
        )
        return 2
    try:
        coordinator = FleetCoordinator.open(config)
    except FleetError as error:
        print(str(error), file=sys.stderr)
        return 2
    exit_code = 0
    try:
        if args.replay:
            print(
                f"recovered {config.shards} shards; replayed "
                f"{coordinator.replayed_ticks} ticks"
            )
        if args.trace:
            feed = _serve_feed(pathlib.Path(args.trace))
            report = coordinator.drain(
                feed,
                tick_size=args.tick_size,
                adaptive=args.adaptive_tick,
                max_ticks=args.max_ticks,
            )
            print(
                f"served {report.ticks} ticks "
                f"({report.messages} messages, "
                f"{report.warnings} warnings) across "
                f"{len(coordinator.ring)} shards at "
                f"{report.msgs_per_s:.0f} msgs/s"
            )
            if args.rca:
                print(
                    f"rca: {report.incidents} incident(s) closed "
                    "across shards"
                )
            if report.dead_shards:
                print(
                    "shards died mid-drain: "
                    f"{list(report.dead_shards)}; their backlog "
                    "resumes after restart with --replay",
                    file=sys.stderr,
                )
                exit_code = 3
    finally:
        coordinator.close()
        if args.telemetry_out:
            pathlib.Path(args.telemetry_out).write_text(
                registry.to_json()
            )
    print(f"fleet state in {config.data_dir}")
    return exit_code


def _run_rollback(
    config: ServiceConfig, store: ArtifactStore
) -> int:
    """``serve --rollback``: the journaled service rollback path.

    Shares :meth:`MonitorService.rollback` with the auto-adapt
    probation guard: the store pointer flip, the journaled swap and
    the closing checkpoint land together, so a later ``--replay``
    resumes under the rolled-back model with no tick re-scored under
    the wrong weights (and none double-scored).
    """
    if store.current_id() is None:
        print(
            "store holds no release; nothing to roll back",
            file=sys.stderr,
        )
        return 2
    try:
        service = MonitorService.open(config)
    except Exception as error:
        print(str(error), file=sys.stderr)
        return 2
    completed = False
    try:
        has_state = (
            config.checkpoint_path.exists()
            or service.wal.last_sequence > 0
        )
        if has_state:
            # Restore the tick-boundary state first so the rollback
            # swap journals after every applied record.
            service.recover()
        release_id = service.rollback()
        completed = True
    except StoreError as error:
        print(str(error), file=sys.stderr)
        return 2
    finally:
        if completed:
            # Full close: the landed rollback gets its checkpoint.
            service.close()
        else:
            # The swap did not land; skip the checkpoint and just
            # surrender the files so the next attempt can lock them.
            try:
                service.wal.close()
            finally:
                service.lock.release()
    print(f"rolled back to release {release_id}")
    return 0


def _build_controller(
    args: argparse.Namespace,
) -> Optional[AdaptationController]:
    """The ``--auto-adapt`` controller for a serve run (or None)."""
    if not args.auto_adapt:
        return None
    adapt_config = AdaptConfig(
        drift_threshold=args.drift_threshold,
        drift_checks=args.drift_checks,
        replay_ticks=args.adapt_replay_ticks,
        probation_ticks=args.probation_ticks,
        rollback_ratio=args.rollback_ratio,
        epochs=args.adapt_epochs,
        cooldown_ticks=args.adapt_cooldown_ticks,
        inline=args.adapt_inline,
        poison=args.adapt_poison,
    )
    return AdaptationController(adapt_config)


def _run_serve(
    args: argparse.Namespace, registry: "telemetry.MetricsRegistry"
) -> int:
    """The serve workflow, under a run-scoped metrics registry."""
    config = ServiceConfig(
        data_dir=args.data_dir,
        checkpoint_every=args.checkpoint_every,
        keep_releases=args.keep_releases,
        quantized=args.quantized,
    )
    store = ArtifactStore(
        config.store_dir, keep_releases=config.keep_releases
    )
    if args.rollback:
        return _run_rollback(config, store)
    if store.current_id() is None:
        if args.model is None or args.threshold is None:
            print(
                "store holds no release; bootstrap needs --model "
                "and --threshold",
                file=sys.stderr,
            )
            return 2
        detector = _load_detector(pathlib.Path(args.model))
        release = stage_release(store, detector, args.threshold)
        print(f"published release {release.release_id}")
    rca_topology: Optional[FleetTopology] = None
    if args.rca and args.topology:
        try:
            rca_topology = FleetTopology.load(args.topology)
        except TopologyError as error:
            print(str(error), file=sys.stderr)
            return 2
    # Deliberately not closed on the simulated-crash path below: the
    # WAL tail must stay un-truncated so the next run recovers from
    # the journal exactly like a real crash.
    service = MonitorService.open(config)  # repro: noqa[RPR601]
    # Attach the adaptation controller before any recovery so WAL
    # replay rebuilds its drift windows and probation state.
    service.controller = _build_controller(args)
    if args.rca:
        # Attached before recovery for the same reason: checkpointed
        # open incidents restore, then replayed ticks rebuild the
        # identical incident stream.
        service.rca = RcaEngine(
            topology=rca_topology, cluster_gap=args.rca_gap
        )
    has_state = (
        config.checkpoint_path.exists()
        or service.wal.last_sequence > 0
    )
    if has_state and not args.replay:
        print(
            f"{config.data_dir} has prior service state; rerun with "
            "--replay to recover it (refusing to ingest blind)",
            file=sys.stderr,
        )
        # Surrender the journal handle and owner lock without the
        # checkpoint a full close() would write over the state we
        # just refused to touch.
        try:
            service.wal.close()
        finally:
            service.lock.release()
        return 2
    if args.kill_after_ticks is not None:
        survived = {"ticks": 0}

        def _kill(point: str, sequence: int) -> None:
            if point != FAULT_AFTER_WAL_APPEND:
                return
            survived["ticks"] += 1
            if survived["ticks"] >= args.kill_after_ticks:
                raise _SimulatedCrash(sequence)

        service.fault_hook = _kill
    writer = _TickWriter(args.scores_out, args.warnings_out)
    incidents_handle: Optional[TextIO] = None
    if args.rca and args.incidents_out:
        incidents_handle = open(args.incidents_out, "a", newline="")
    exit_code = 0
    n_live = n_warnings = n_incidents = 0
    try:
        if args.replay:
            report = service.recover()
            writer.write(report.results)
            n_warnings += sum(
                len(r.warnings) for r in report.results
            )
            n_incidents += _drain_incidents(service, incidents_handle)
            print(
                f"recovered from cursor {report.checkpoint_cursor}; "
                f"replayed {report.ticks_replayed} ticks "
                f"({report.messages_replayed} messages, "
                f"{report.swaps_replayed} swaps)"
            )
        if args.trace:
            feed = _serve_feed(pathlib.Path(args.trace))
            ticker = None
            if args.adaptive_tick:
                ticker = AdaptiveTicker(
                    initial=args.tick_size,
                    min_size=min(64, args.tick_size),
                    max_size=max(8192, args.tick_size),
                )
            for result in service.drain(
                feed,
                tick_size=args.tick_size,
                ticker=ticker,
                max_ticks=args.max_ticks,
            ):
                writer.write([result])
                n_live += 1
                n_warnings += len(result.warnings)
                n_incidents += _drain_incidents(
                    service, incidents_handle
                )
        service.close()
        # close() flushed any incidents still open at shutdown.
        n_incidents += _drain_incidents(service, incidents_handle)
        print(
            f"served {n_live} live ticks ({n_warnings} warnings); "
            f"state in {config.data_dir}"
        )
        if service.rca is not None:
            print(f"rca: {n_incidents} incident(s) closed this run")
        if service.controller is not None:
            print(
                f"adaptation: {service.controller.swaps} swap(s), "
                f"{service.controller.rollbacks} rollback(s) this run"
            )
    except _SimulatedCrash as crash:
        # Simulated kill: no close(), no final checkpoint — the next
        # run must recover from the WAL exactly like a real crash.
        print(
            f"simulated crash at journal sequence {crash.args[0]}",
            file=sys.stderr,
        )
        exit_code = 3
    finally:
        try:
            writer.close()
        finally:
            if incidents_handle is not None:
                incidents_handle.close()
        if args.telemetry_out:
            pathlib.Path(args.telemetry_out).write_text(
                registry.to_json()
            )
    return exit_code


#: Invariants asserted by ``repro telemetry --check``: the CI gate
#: fails the build when instrumentation of any layer regresses.
_TELEMETRY_CHECKS = (
    "stream.messages_scored > 0",
    "match.memo_hit_rate >= 0.5",
    "stream.n_reordered == 0",
    "every layer (mine/match, train, stream, adapt) reports metrics",
)


def _check_snapshot(snapshot: Dict) -> List[str]:
    """Validate the telemetry-smoke invariants; return failures."""
    counters = snapshot["counters"]
    gauges = snapshot["gauges"]
    failures: List[str] = []
    if counters.get("stream.messages_scored", 0) <= 0:
        failures.append(
            "stream.messages_scored: expected > 0, got "
            f"{counters.get('stream.messages_scored', 0)}"
        )
    hit_rate = gauges.get("match.memo_hit_rate", 0.0)
    if hit_rate < 0.5:
        failures.append(
            f"match.memo_hit_rate: expected >= 0.5, got {hit_rate}"
        )
    reordered = counters.get("stream.n_reordered", 0)
    if reordered != 0:
        failures.append(
            f"stream.n_reordered: expected 0, got {reordered}"
        )
    names = (
        list(counters)
        + list(gauges)
        + list(snapshot["histograms"])
    )
    for prefix in ("mine.", "match.", "train.", "stream.", "adapt."):
        if not any(name.startswith(prefix) for name in names):
            failures.append(f"no metrics published under {prefix}*")
    return failures


def _telemetry_smoke(args: argparse.Namespace) -> None:
    """One in-memory pass through every instrumented layer.

    Simulate two months for a small fleet, mine templates and train on
    month 1, stream month 2 through the online monitor, then run the
    drift check and one transfer adaptation — so the resulting
    snapshot carries mine/match, train, stream and adapt metrics.
    """
    config = SimulationConfig(
        n_vpes=args.vpes,
        n_months=2,
        seed=args.seed,
        base_rate_per_hour=args.rate,
        update_month=1,
        n_fleet_events=0,
    )
    dataset = FleetSimulator(config).run()
    split = dataset.start + MONTH

    training_streams = [
        dataset.normal_messages(vpe, dataset.start, split)
        for vpe in dataset.messages
    ]
    store = TemplateStore()
    store.fit(
        sorted(
            (m for s in training_streams for m in s),
            key=lambda m: m.timestamp,
        )
    )
    detector = LSTMAnomalyDetector(
        store,
        vocabulary_capacity=store.vocabulary_size + 64,
        window=6,
        hidden=(8, 8),
        epochs=1,
        oversample_rounds=0,
        max_train_samples=2000,
        seed=args.seed,
    )
    detector.fit_streams(training_streams)

    month1 = dataset.aggregate_messages(end=split)
    scored = detector.score(month1)
    threshold = (
        float(np.quantile(scored.scores, 0.99))
        if len(scored)
        else float("inf")
    )

    month2 = dataset.aggregate_messages(start=split)
    month2.sort(key=lambda m: m.timestamp)
    monitor = OnlineMonitor(
        detector, threshold=threshold, strict_order=False
    )
    monitor.run(month2, tick_size=512)

    week = [m for m in month2 if m.timestamp < split + WEEK]
    distribution_shift(
        store.transform(month1),
        store.transform(week),
        store.vocabulary_size,
    )
    if week:
        transfer_adapt(detector, week, epochs=1)


def cmd_telemetry(args: argparse.Namespace) -> int:
    """Run the end-to-end smoke and print/check its telemetry snapshot.

    With ``--merge FILE...`` no smoke runs; the named JSON snapshots
    are folded into one registry instead (counters sum, gauges take
    the last write, histograms merge bucket-wise) — the multi-run /
    multi-shard aggregation view.
    """
    registry = telemetry.MetricsRegistry()
    if args.merge:
        if args.check:
            print(
                "--check asserts the smoke-run invariants; it does "
                "not apply to --merge aggregation",
                file=sys.stderr,
            )
            return 2
        try:
            snapshots = [
                json.loads(pathlib.Path(path).read_text())
                for path in args.merge
            ]
            registry.merge(snapshots)
        except (OSError, ValueError, KeyError) as error:
            print(f"cannot merge snapshots: {error}", file=sys.stderr)
            return 2
    else:
        with telemetry.use(registry):
            _telemetry_smoke(args)
    if args.format == "prometheus":
        rendered = registry.to_prometheus()
    else:
        rendered = registry.to_json()
    if args.out:
        pathlib.Path(args.out).write_text(rendered)
        print(f"wrote telemetry snapshot to {args.out}")
    else:
        print(rendered)
    if args.check:
        failures = _check_snapshot(registry.snapshot())
        for failure in failures:
            print(f"telemetry check failed: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(
            f"telemetry checks passed ({len(_TELEMETRY_CHECKS)} "
            "invariants)"
        )
    return 0


# -- parser -------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser with every subcommand registered."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Predictive analysis for NFV syslogs (IMC 2018 "
            "reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("simulate", help="generate a synthetic trace")
    p.add_argument("--out", required=True)
    p.add_argument("--vpes", type=int, default=4)
    p.add_argument("--months", type=int, default=2)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--rate", type=float, default=8.0)
    p.add_argument("--update-month", type=int, default=None)
    p.add_argument("--fleet-events", type=int, default=0)
    p.add_argument(
        "--scenario",
        choices=("default", "update-soak", "correlated-outage"),
        default="default",
        help=(
            "named preset: update-soak drifts the whole fleet at "
            "--update-month (default: mid-trace); correlated-outage "
            "plans --outages upstream faults over the fleet "
            "topology (requires --topology)"
        ),
    )
    p.add_argument(
        "--topology",
        action="store_true",
        help=(
            "build a fleet topology and write it as topology.json "
            "next to meta.json"
        ),
    )
    p.add_argument(
        "--outages",
        type=int,
        default=5,
        help="correlated outages to plan (correlated-outage scenario)",
    )
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("mine", help="mine syslog templates")
    p.add_argument("--trace", required=True)
    p.add_argument("--out", required=True)
    p.add_argument("--max-messages", type=int, default=50000)
    p.set_defaults(func=cmd_mine)

    p = sub.add_parser("train", help="train the LSTM detector")
    p.add_argument("--trace", required=True)
    p.add_argument("--templates", required=True)
    p.add_argument("--out", required=True)
    p.add_argument("--train-days", type=float, default=30.0)
    p.add_argument("--capacity", type=int, default=160)
    p.add_argument("--window", type=int, default=8)
    p.add_argument("--hidden", type=int, default=24)
    p.add_argument("--epochs", type=int, default=2)
    p.add_argument("--max-samples", type=int, default=5000)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_train)

    p = sub.add_parser("detect", help="score a trace for anomalies")
    p.add_argument("--trace", required=True)
    p.add_argument("--model", required=True)
    p.add_argument("--out", required=True)
    p.add_argument("--start", type=float, default=None)
    p.add_argument("--threshold", type=float, default=None)
    p.add_argument("--quantile", type=float, default=0.995)
    p.set_defaults(func=cmd_detect)

    p = sub.add_parser("report", help="map anomalies to tickets")
    p.add_argument("--trace", required=True)
    p.add_argument("--anomalies", required=True)
    p.add_argument("--window-days", type=float, default=1.0)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "serve", help="run the durable monitoring service"
    )
    p.add_argument("--data-dir", required=True)
    p.add_argument("--trace", default=None)
    p.add_argument("--model", default=None)
    p.add_argument("--threshold", type=float, default=None)
    p.add_argument("--tick-size", type=int, default=256)
    p.add_argument(
        "--adaptive-tick",
        action="store_true",
        help="size ticks from backpressure (starts at --tick-size)",
    )
    p.add_argument(
        "--quantized",
        action="store_true",
        help="score through int8-quantized inference (lossy, faster)",
    )
    p.add_argument("--checkpoint-every", type=int, default=16)
    p.add_argument("--keep-releases", type=int, default=3)
    p.add_argument(
        "--replay",
        action="store_true",
        help="restore the checkpoint and replay the WAL first",
    )
    p.add_argument(
        "--rollback",
        action="store_true",
        help=(
            "roll back to the previous release through the "
            "journaled swap path, checkpoint, and exit"
        ),
    )
    p.add_argument(
        "--auto-adapt",
        action="store_true",
        help=(
            "close the drift loop in-service: watch the template "
            "distribution, fine-tune on drift, hot-swap, and roll "
            "back if probation telemetry regresses"
        ),
    )
    p.add_argument(
        "--drift-threshold",
        type=float,
        default=0.5,
        help="cosine similarity below this counts as a drift breach",
    )
    p.add_argument(
        "--drift-checks",
        type=int,
        default=3,
        help="consecutive breaches that trigger a fine-tune",
    )
    p.add_argument(
        "--adapt-replay-ticks",
        type=int,
        default=48,
        help="recent ticks the fine-tune replays as training data",
    )
    p.add_argument(
        "--probation-ticks",
        type=int,
        default=24,
        help="post-swap guard window before a swap is accepted",
    )
    p.add_argument(
        "--rollback-ratio",
        type=float,
        default=3.0,
        help=(
            "roll back when the probation anomaly rate exceeds this "
            "multiple of the pre-drift baseline"
        ),
    )
    p.add_argument(
        "--adapt-epochs",
        type=int,
        default=2,
        help="fine-tune epochs (lower LSTM stays frozen)",
    )
    p.add_argument(
        "--adapt-cooldown-ticks",
        type=int,
        default=32,
        help="ticks after a swap/rollback before drift checks resume",
    )
    p.add_argument(
        "--adapt-inline",
        action="store_true",
        help=(
            "fine-tune synchronously at the tick boundary instead of "
            "in a background worker (deterministic; the CI crash "
            "drill uses this)"
        ),
    )
    p.add_argument(
        "--adapt-poison",
        action="store_true",
        help=(
            "deliberately corrupt every fine-tuned model before "
            "publish — the auto-rollback drill"
        ),
    )
    p.add_argument("--max-ticks", type=int, default=None)
    p.add_argument(
        "--kill-after-ticks",
        type=int,
        default=None,
        help="simulate a crash after N journaled ticks (exit 3)",
    )
    p.add_argument("--scores-out", default=None)
    p.add_argument("--warnings-out", default=None)
    p.add_argument("--telemetry-out", default=None)
    p.add_argument(
        "--rca",
        action="store_true",
        help=(
            "run the streaming root-cause engine at tick "
            "boundaries: cluster co-occurring anomalies into "
            "incidents and attribute them over --topology"
        ),
    )
    p.add_argument(
        "--topology",
        default=None,
        help=(
            "fleet topology JSON for --rca (simulate --topology "
            "writes topology.json next to the trace)"
        ),
    )
    p.add_argument(
        "--incidents-out",
        default=None,
        help="append closed-incident CSV rows here (needs --rca)",
    )
    p.add_argument(
        "--rca-gap",
        type=float,
        default=DEFAULT_CLUSTER_GAP,
        help="quiet stream seconds after which an incident closes",
    )
    p.add_argument(
        "--shards",
        type=int,
        default=1,
        help="run the sharded fleet runtime with N worker processes",
    )
    p.add_argument(
        "--kill-shard",
        type=int,
        default=None,
        help="fleet crash drill: shard to kill (with --after-ticks)",
    )
    p.add_argument(
        "--after-ticks",
        type=int,
        default=None,
        help="kill --kill-shard after N journaled ticks (exit 3)",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "telemetry",
        help="run an end-to-end smoke and print its metrics snapshot",
    )
    p.add_argument("--vpes", type=int, default=2)
    p.add_argument("--rate", type=float, default=4.0)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument(
        "--format", choices=("json", "prometheus"), default="json"
    )
    p.add_argument("--out", default=None)
    p.add_argument(
        "--check",
        action="store_true",
        help="assert the telemetry invariants (CI gate)",
    )
    p.add_argument(
        "--merge",
        nargs="+",
        metavar="FILE",
        default=None,
        help="skip the smoke; merge these JSON snapshots instead",
    )
    p.set_defaults(func=cmd_telemetry)

    add_check_parser(sub)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the subcommand's exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
