"""Time helpers shared across the library.

All timestamps in :mod:`repro` are POSIX seconds stored as ``float``.
Durations are plain seconds.  The constants below keep call sites
readable (``3 * DAY`` instead of ``259200``) and are used everywhere a
paper parameter is expressed in human units (e.g. the 3-day log scrub
around a ticket, the 1-day predictive period).
"""

from __future__ import annotations

from typing import Iterator, Tuple

SECOND: float = 1.0
MINUTE: float = 60.0
HOUR: float = 3600.0
DAY: float = 24 * HOUR
WEEK: float = 7 * DAY
#: The paper slides monthly windows over the trace; we use a fixed-width
#: 30-day month so that windows tile the trace exactly.
MONTH: float = 30 * DAY

#: Trace origin used by the fleet simulator.  The exact epoch value is
#: arbitrary (the paper's trace starts October 2016); a round non-zero
#: origin catches bugs that conflate "no timestamp" with "trace start".
TRACE_START: float = 1_475_280_000.0  # 2016-10-01 00:00:00 UTC


def month_index(timestamp: float, origin: float = TRACE_START) -> int:
    """Return the zero-based month bucket a timestamp falls into."""
    if timestamp < origin:
        raise ValueError(
            f"timestamp {timestamp} precedes trace origin {origin}"
        )
    return int((timestamp - origin) // MONTH)


def month_bounds(
    index: int, origin: float = TRACE_START
) -> Tuple[float, float]:
    """Return the ``[start, end)`` bounds of month ``index``."""
    if index < 0:
        raise ValueError(f"month index must be non-negative, got {index}")
    start = origin + index * MONTH
    return start, start + MONTH


def iter_months(
    n_months: int, origin: float = TRACE_START
) -> Iterator[Tuple[int, float, float]]:
    """Yield ``(index, start, end)`` for each of ``n_months`` months."""
    for index in range(n_months):
        start, end = month_bounds(index, origin)
        yield index, start, end


def format_duration(seconds: float) -> str:
    """Render a duration in the largest sensible unit, for reports."""
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < MINUTE:
        return f"{seconds:.0f}s"
    if seconds < HOUR:
        return f"{seconds / MINUTE:.1f}min"
    if seconds < DAY:
        return f"{seconds / HOUR:.1f}h"
    return f"{seconds / DAY:.1f}d"
