"""Atomic snapshot/restore of the online monitoring state.

A checkpoint captures everything the service must not lose across a
restart: the :class:`~repro.core.stream.StreamScorer` ring buffers,
the :class:`~repro.core.online.OnlineMonitor` device/warning-cluster
state, and the *tick cursor* (the last tick fully scored when the
snapshot was taken).  Restoring a checkpoint and replaying the WAL
ticks after its cursor reproduces the uninterrupted run bitwise.

On disk a checkpoint is one ``.npz`` file: the scorer's numpy arrays
are stored natively (exact int64/float64 round-trip, NaNs included)
and the JSON-safe remainder rides along as an embedded JSON document.
Writes go to a same-directory temp file and ``os.replace`` onto the
final name, so a crash mid-write never clobbers the previous
checkpoint.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

import numpy as np

from repro import telemetry
from repro.core.online import OnlineMonitor

#: Version of the on-disk checkpoint layout.
CHECKPOINT_VERSION = 1

#: The scorer-state keys stored as native numpy arrays.
_ARRAY_KEYS = ("contexts", "pos", "fill", "last_time")


@dataclass(frozen=True)
class Checkpoint:
    """A loaded checkpoint: tick cursor, monitor state, extras.

    Attributes:
        cursor: journal sequence of the last record applied before
            the snapshot.
        monitor_state: the full :meth:`OnlineMonitor.state_dict`.
        extra: caller-supplied JSON-safe scalars (the service stores
            its lifetime tick count and active release id here).
    """

    cursor: int
    monitor_state: Dict[str, object]
    extra: Dict[str, object] = field(default_factory=dict)

    def restore(self, monitor: OnlineMonitor) -> None:
        """Load this snapshot into a compatibly-configured monitor."""
        monitor.load_state_dict(self.monitor_state)


def write_checkpoint(
    path: Union[str, pathlib.Path],
    monitor: OnlineMonitor,
    cursor: int,
    extra: Optional[Dict[str, object]] = None,
) -> int:
    """Atomically snapshot ``monitor`` at tick ``cursor``.

    Returns the checkpoint's size in bytes.  The write is atomic: the
    previous checkpoint at ``path`` survives any crash before the
    final rename.
    """
    path = pathlib.Path(path)
    state = monitor.state_dict()
    scorer_state = dict(state["scorer"])
    arrays = {
        f"scorer.{key}": np.ascontiguousarray(scorer_state.pop(key))
        for key in _ARRAY_KEYS
    }
    meta = {
        "checkpoint_version": CHECKPOINT_VERSION,
        "cursor": int(cursor),
        "extra": dict(extra or {}),
        "monitor": {
            key: value
            for key, value in state.items()
            if key != "scorer"
        },
        "scorer": scorer_state,
    }
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        np.savez(
            handle,
            meta=np.array(json.dumps(meta)),
            **arrays,
        )
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    size = path.stat().st_size
    registry = telemetry.default_registry()
    registry.counter("runtime.checkpoint.writes").inc()
    registry.gauge("runtime.checkpoint.bytes").set(size)
    registry.gauge("runtime.checkpoint.cursor").set(cursor)
    return size


def read_checkpoint(path: Union[str, pathlib.Path]) -> Checkpoint:
    """Load a checkpoint written by :func:`write_checkpoint`."""
    path = pathlib.Path(path)
    with np.load(path) as archive:
        meta = json.loads(str(archive["meta"]))
        arrays = {
            key: archive[f"scorer.{key}"].copy()
            for key in _ARRAY_KEYS
        }
    version = meta.get("checkpoint_version")
    if version != CHECKPOINT_VERSION:
        raise ValueError(
            f"{path}: checkpoint version {version!r} is not supported "
            f"(expected {CHECKPOINT_VERSION})"
        )
    scorer_state = dict(meta["scorer"])
    scorer_state.update(arrays)
    monitor_state = dict(meta["monitor"])
    monitor_state["scorer"] = scorer_state
    return Checkpoint(
        cursor=int(meta["cursor"]),
        monitor_state=monitor_state,
        extra=dict(meta.get("extra", {})),
    )


__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "read_checkpoint",
    "write_checkpoint",
]
