"""Append-only, segment-rotated write-ahead log.

The durable monitoring service appends every ingested tick to this
log *before* scoring it, so a crash between ingest and checkpoint
loses nothing: on restart the unacknowledged records are replayed
through the restored engine and produce bitwise-identical float64
scores to an uninterrupted run.

Layout: the log is a directory of segment files named
``seg-<first_seq>.wal``.  Each record is::

    u64 sequence | u32 payload length | u32 CRC32 | payload

where the CRC covers the sequence, length and payload together

(little-endian header).  Records carry monotonically increasing
sequence numbers (the service uses the tick id).  Segments rotate
once they exceed ``segment_bytes``; :meth:`WriteAheadLog.prune`
deletes segments whose every record has been captured by a
checkpoint.

Failure semantics on replay:

* a *torn tail* — a truncated header, truncated payload, or CRC
  mismatch at the very end of the **last** segment — is the expected
  residue of a crash mid-append: replay stops there, the damage is
  counted, and the next append truncates the torn bytes away;
* the same damage anywhere else (mid-segment with valid data after
  it, or in a non-final segment) means the log was corrupted at rest,
  and replay raises :class:`WalCorruptionError` rather than silently
  skipping acknowledged data.
"""

from __future__ import annotations

import os
import pathlib
import struct
import zlib
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple, Union

from repro import telemetry

#: Record header: sequence number, payload length, record CRC32.
_HEADER = struct.Struct("<QII")

#: The CRC-covered header prefix (sequence + length): a bit flip in
#: the header is as fatal as one in the payload, so both are covered.
_SEQLEN = struct.Struct("<QI")


def _record_crc(sequence: int, payload: bytes) -> int:
    return zlib.crc32(
        payload, zlib.crc32(_SEQLEN.pack(sequence, len(payload)))
    )

_SEGMENT_PREFIX = "seg-"
_SEGMENT_SUFFIX = ".wal"

#: Default segment-rotation threshold (bytes).
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024


class WalCorruptionError(RuntimeError):
    """Raised when a WAL record is damaged anywhere but the tail."""


@dataclass(frozen=True)
class WalRecord:
    """One replayed record: its sequence number and payload bytes."""

    sequence: int
    payload: bytes


def _segment_path(directory: pathlib.Path, first_seq: int) -> pathlib.Path:
    return directory / f"{_SEGMENT_PREFIX}{first_seq:016d}{_SEGMENT_SUFFIX}"


class WriteAheadLog:
    """Durable tick journal for the monitoring service.

    Args:
        directory: where segment files live (created if missing).
        segment_bytes: rotate to a fresh segment once the current one
            reaches this size.
        fsync: when True every append is fsync'd (durable against
            power loss, much slower); when False appends are flushed
            to the OS only (durable against process crashes — the
            default, matching the crash model the tests exercise).
    """

    def __init__(
        self,
        directory: Union[str, pathlib.Path],
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        fsync: bool = False,
    ) -> None:
        if segment_bytes < _HEADER.size + 1:
            raise ValueError(
                f"segment_bytes must be > {_HEADER.size}, "
                f"got {segment_bytes}"
            )
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_bytes = int(segment_bytes)
        self.fsync = bool(fsync)
        self._handle = None
        self._handle_path: Optional[pathlib.Path] = None
        self.last_sequence = self._scan_last_sequence()

    # -- introspection --------------------------------------------------

    def segments(self) -> List[pathlib.Path]:
        """Segment files, oldest first."""
        return sorted(
            path
            for path in self.directory.iterdir()
            if path.name.startswith(_SEGMENT_PREFIX)
            and path.name.endswith(_SEGMENT_SUFFIX)
        )

    def _scan_last_sequence(self) -> int:
        last = 0
        for record in self.replay():
            last = record.sequence
        return last

    # -- append ---------------------------------------------------------

    def _open_for_append(self, sequence: int) -> None:
        segments = self.segments()
        if segments:
            current = segments[-1]
            # Drop a torn tail left by a crash mid-append before
            # writing after it; valid records are never touched.
            valid_bytes = _valid_prefix_bytes(current)
            if valid_bytes < current.stat().st_size:
                with open(current, "r+b") as handle:
                    handle.truncate(valid_bytes)
            if current.stat().st_size < self.segment_bytes:
                self._handle = open(current, "ab")
                self._handle_path = current
                return
        path = _segment_path(self.directory, sequence)
        self._handle = open(path, "ab")
        self._handle_path = path

    def append(self, sequence: int, payload: bytes) -> None:
        """Durably append one record.

        Sequence numbers must be strictly increasing; the service uses
        the tick id, so replay order equals ingest order.
        """
        if sequence <= self.last_sequence:
            raise ValueError(
                f"sequence {sequence} is not after the log's last "
                f"sequence {self.last_sequence}"
            )
        if self._handle is None:
            self._open_for_append(sequence)
        elif self._handle.tell() >= self.segment_bytes:
            self._handle.close()
            self._handle = None
            self._handle_path = None
            self._open_for_append(sequence)
        header = _HEADER.pack(
            sequence, len(payload), _record_crc(sequence, payload)
        )
        self._handle.write(header)
        self._handle.write(payload)
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self.last_sequence = sequence
        registry = telemetry.default_registry()
        registry.counter("runtime.wal.appends").inc()
        registry.counter("runtime.wal.bytes_written").inc(
            _HEADER.size + len(payload)
        )

    # -- replay ---------------------------------------------------------

    def replay(self, after: int = 0) -> Iterator[WalRecord]:
        """Yield records with ``sequence > after``, oldest first.

        Tolerates a torn tail on the final segment; raises
        :class:`WalCorruptionError` for damage anywhere else.
        """
        segments = self.segments()
        for index, segment in enumerate(segments):
            is_last = index == len(segments) - 1
            for record in _read_segment(segment, is_last):
                if record.sequence > after:
                    yield record

    def prune(self, upto: int) -> int:
        """Delete segments whose records are all ``<= upto``.

        Called after a checkpoint captures the state through sequence
        ``upto``; returns the number of segments removed.  The segment
        currently being appended to is never removed.
        """
        removed = 0
        segments = self.segments()
        # The newest segment is kept even when fully checkpointed: it
        # is (or will become) the append target.
        for segment in segments[:-1]:
            if segment == self._handle_path:
                break
            last = _last_sequence_of(segment)
            if last is None or last <= upto:
                segment.unlink()
                removed += 1
            else:
                break
        if removed:
            telemetry.counter("runtime.wal.segments_pruned").inc(
                removed
            )
        return removed

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Flush and close the active segment handle."""
        handle = self._handle
        if handle is None:
            return
        self._handle = None
        self._handle_path = None
        try:
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        finally:
            handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _read_record(
    data: bytes, offset: int
) -> Tuple[Optional[WalRecord], int, bool]:
    """Parse one record at ``offset``.

    Returns ``(record, next_offset, damaged)``; ``record`` is None at
    end-of-data or damage, and ``damaged`` distinguishes the two.
    """
    if offset == len(data):
        return None, offset, False
    if offset + _HEADER.size > len(data):
        return None, offset, True
    sequence, length, crc = _HEADER.unpack_from(data, offset)
    start = offset + _HEADER.size
    stop = start + length
    if stop > len(data):
        return None, offset, True
    payload = data[start:stop]
    if _record_crc(sequence, payload) != crc:
        return None, offset, True
    return WalRecord(sequence, payload), stop, False


def _read_segment(
    path: pathlib.Path, tolerate_tail: bool
) -> Iterator[WalRecord]:
    data = path.read_bytes()
    offset = 0
    torn = False
    while True:
        record, offset, damaged = _read_record(data, offset)
        if record is not None:
            yield record
            continue
        if not damaged:
            break
        if not tolerate_tail:
            raise WalCorruptionError(
                f"{path}: damaged record at byte {offset} with valid "
                "data after it (corruption at rest, not a torn tail)"
            )
        # Torn tail: only tolerable when nothing valid follows.  A
        # valid record *after* the damage means bytes were flipped,
        # not torn off — refuse to silently drop acknowledged data.
        if _any_valid_record_after(data, offset):
            raise WalCorruptionError(
                f"{path}: damaged record at byte {offset} followed by "
                "an intact record; the segment is corrupt"
            )
        torn = True
        break
    if torn:
        telemetry.counter("runtime.wal.torn_tails").inc()


def _any_valid_record_after(data: bytes, damage_offset: int) -> bool:
    """Whether any complete, CRC-clean record starts past the damage."""
    for offset in range(damage_offset + 1, len(data) - _HEADER.size + 1):
        record, _, _ = _read_record(data, offset)
        if record is not None:
            return True
    return False


def _valid_prefix_bytes(path: pathlib.Path) -> int:
    """Length of the longest valid record prefix of a segment."""
    data = path.read_bytes()
    offset = 0
    while True:
        record, next_offset, _ = _read_record(data, offset)
        if record is None:
            return offset
        offset = next_offset


def _last_sequence_of(path: pathlib.Path) -> Optional[int]:
    """The final intact record's sequence number (None if empty)."""
    last: Optional[int] = None
    data = path.read_bytes()
    offset = 0
    while True:
        record, offset, _ = _read_record(data, offset)
        if record is None:
            return last
        last = record.sequence


__all__ = [
    "DEFAULT_SEGMENT_BYTES",
    "WalCorruptionError",
    "WalRecord",
    "WriteAheadLog",
]
