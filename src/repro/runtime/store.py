"""Versioned, content-addressed artifact store.

One *release* is the atomic unit of model rollout: the LSTM weights,
the serialized :class:`~repro.logs.templates.TemplateStore`, the group
assignments and the operating threshold that were produced together
and must be deployed together.  The store keeps every artifact as a
content-addressed blob (``objects/<aa>/<sha256>``) and every release
as a JSON manifest naming its blobs, so:

* publishing is atomic — blobs are written first, the manifest is
  written via temp-file + ``os.replace``, and the ``CURRENT`` pointer
  flips last (a crash at any point leaves the previous release
  intact and current);
* identical artifacts across releases are stored once (weights that
  did not change between releases share a blob);
* rollback is a pointer flip to any retained release;
* retention keeps the newest ``keep_releases`` manifests and
  garbage-collects blobs no retained manifest references.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Union

from repro import telemetry

_MANIFEST_VERSION = 1
_CURRENT = "CURRENT"


class StoreError(RuntimeError):
    """Raised for invalid store operations or damaged artifacts."""


@dataclass(frozen=True)
class Release:
    """One published release.

    Attributes:
        release_id: monotonically increasing integer id.
        artifacts: artifact name → hex sha256 of its blob.
        metadata: caller-supplied JSON-safe annotations.
    """

    release_id: int
    artifacts: Dict[str, str]
    metadata: Dict[str, object]


def _atomic_write(path: pathlib.Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via a same-directory temp + replace."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


class ArtifactStore:
    """Content-addressed release store under one directory.

    Args:
        directory: store root (created if missing).
        keep_releases: how many releases to retain; older manifests
            are deleted at publish time and their exclusive blobs
            garbage-collected.  The current release is always
            retained regardless of age.
    """

    def __init__(
        self,
        directory: Union[str, pathlib.Path],
        keep_releases: int = 3,
    ) -> None:
        if keep_releases < 1:
            raise ValueError("keep_releases must be >= 1")
        self.directory = pathlib.Path(directory)
        self.keep_releases = int(keep_releases)
        self._objects = self.directory / "objects"
        self._releases = self.directory / "releases"
        self._objects.mkdir(parents=True, exist_ok=True)
        self._releases.mkdir(parents=True, exist_ok=True)

    # -- blobs ----------------------------------------------------------

    def _blob_path(self, digest: str) -> pathlib.Path:
        return self._objects / digest[:2] / digest

    def _write_blob(self, data: bytes) -> str:
        digest = hashlib.sha256(data).hexdigest()
        path = self._blob_path(digest)
        if not path.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
            _atomic_write(path, data)
        return digest

    def object_path(self, digest: str) -> pathlib.Path:
        """Filesystem path of a stored blob (for zero-copy readers)."""
        path = self._blob_path(digest)
        if not path.exists():
            raise StoreError(f"missing object {digest}")
        return path

    # -- manifests ------------------------------------------------------

    def _manifest_path(self, release_id: int) -> pathlib.Path:
        return self._releases / f"{release_id:08d}.json"

    def release_ids(self) -> List[int]:
        """Retained release ids, oldest first."""
        return sorted(
            int(path.stem) for path in self._releases.glob("*.json")
        )

    def current_id(self) -> Optional[int]:
        """The current release id (None before the first publish)."""
        pointer = self.directory / _CURRENT
        if not pointer.exists():
            return None
        return int(pointer.read_text().strip())

    def manifest(self, release_id: int) -> Release:
        """Load one release's manifest."""
        path = self._manifest_path(release_id)
        if not path.exists():
            raise StoreError(f"no release {release_id}")
        payload = json.loads(path.read_text())
        if payload.get("manifest_version") != _MANIFEST_VERSION:
            raise StoreError(
                f"release {release_id}: unsupported manifest version "
                f"{payload.get('manifest_version')!r}"
            )
        return Release(
            release_id=payload["release"],
            artifacts=dict(payload["artifacts"]),
            metadata=dict(payload.get("metadata", {})),
        )

    def current(self) -> Optional[Release]:
        """The current release's manifest (None before first publish)."""
        release_id = self.current_id()
        if release_id is None:
            return None
        return self.manifest(release_id)

    # -- publish / read -------------------------------------------------

    def publish(
        self,
        artifacts: Mapping[str, bytes],
        metadata: Optional[Mapping[str, object]] = None,
    ) -> Release:
        """Atomically publish a new release and make it current.

        Blobs land first, then the manifest, then the ``CURRENT``
        pointer — a crash between any two steps leaves the store on
        the previous release with no partial state visible.
        """
        if not artifacts:
            raise ValueError("a release needs at least one artifact")
        ids = self.release_ids()
        release_id = (ids[-1] + 1) if ids else 1
        digests = {
            name: self._write_blob(data)
            for name, data in sorted(artifacts.items())
        }
        manifest = {
            "manifest_version": _MANIFEST_VERSION,
            "release": release_id,
            "artifacts": digests,
            "metadata": dict(metadata or {}),
        }
        _atomic_write(
            self._manifest_path(release_id),
            json.dumps(manifest, indent=2, sort_keys=True).encode(),
        )
        _atomic_write(
            self.directory / _CURRENT, str(release_id).encode()
        )
        self._retain()
        registry = telemetry.default_registry()
        registry.counter("runtime.store.releases_published").inc()
        registry.gauge("runtime.store.current_release").set(release_id)
        return Release(release_id, digests, dict(metadata or {}))

    def read(self, release_id: int, name: str) -> bytes:
        """Read one artifact's bytes, verifying its content hash."""
        release = self.manifest(release_id)
        if name not in release.artifacts:
            raise StoreError(
                f"release {release_id} has no artifact {name!r}; "
                f"has {sorted(release.artifacts)}"
            )
        digest = release.artifacts[name]
        data = self.object_path(digest).read_bytes()
        if hashlib.sha256(data).hexdigest() != digest:
            raise StoreError(
                f"object {digest} failed content verification "
                f"(artifact {name!r} of release {release_id})"
            )
        return data

    # -- rollback / retention -------------------------------------------

    def rollback(self) -> Release:
        """Flip ``CURRENT`` back to the previous retained release."""
        current_id = self.current_id()
        if current_id is None:
            raise StoreError("nothing published; cannot roll back")
        older = [rid for rid in self.release_ids() if rid < current_id]
        if not older:
            raise StoreError(
                f"release {current_id} has no retained predecessor"
            )
        target = older[-1]
        _atomic_write(self.directory / _CURRENT, str(target).encode())
        registry = telemetry.default_registry()
        registry.counter("runtime.store.rollbacks").inc()
        registry.gauge("runtime.store.current_release").set(target)
        return self.manifest(target)

    def _retain(self) -> None:
        """Drop manifests beyond ``keep_releases``; GC orphaned blobs."""
        ids = self.release_ids()
        current_id = self.current_id()
        keep = set(ids[-self.keep_releases:])
        if current_id is not None:
            keep.add(current_id)
        doomed = [rid for rid in ids if rid not in keep]
        if not doomed:
            return
        for release_id in doomed:
            self._manifest_path(release_id).unlink()
        referenced = set()
        for release_id in self.release_ids():
            referenced.update(
                self.manifest(release_id).artifacts.values()
            )
        for shard in self._objects.iterdir():
            for blob in list(shard.iterdir()):
                if blob.name not in referenced:
                    blob.unlink()


__all__ = ["ArtifactStore", "Release", "StoreError"]
