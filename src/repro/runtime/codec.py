"""Arena-backed binary tick codec for the write-ahead log.

The service journals every ingested tick before scoring it, so the
encoder sits directly on the ingest hot path.  The original codec
JSON-encoded a positional row per message — one Python-level encode
per message plus a container allocation per tick.  This codec packs
the whole tick column-major into one preallocated, grow-only arena:

* one :func:`repro.logs.message.message_columns` pass shared with the
  streaming scorer's ingest,
* numpy bulk writes for the fixed-width columns (timestamps,
  severities, facilities),
* a single joined blob per string column (hosts, processes, texts)
  prefixed by a ``u32`` length vector,

so a tick costs one WAL ``append`` and one CRC regardless of message
count, and the encoder performs zero per-tick arena allocations at
steady state.

Record layout (all integers little-endian)::

    u8  magic (0xB1)       -- never 0x7B ('{'), so binary ticks are
    u8  codec version         distinguishable from legacy JSON records
    u32 message count n
    f64 timestamps[n]
    u8  severities[n]
    u8  facilities[n]
    u32 host lengths[n]   | joined UTF-8 hosts
    u32 proc lengths[n]   | joined UTF-8 processes
    u32 text lengths[n]   | joined UTF-8 texts

Decoding reproduces the exact float64 timestamps (raw IEEE bytes, no
text round-trip), so journal replay after a crash stays bitwise
identical to the original run.
"""

from __future__ import annotations

import struct
from typing import List, Sequence

import numpy as np

from repro.logs.message import (
    Facility,
    Severity,
    SyslogMessage,
    message_columns,
)

#: First payload byte of a binary tick record.  Any value other than
#: ``0x7B`` (``{``) works; the service dispatches legacy JSON records
#: by that opening brace.
TICK_MAGIC = 0xB1

#: Bumped on incompatible layout changes.
CODEC_VERSION = 1

_PREFIX = struct.Struct("<BBI")

#: Initial arena size; the arena grows geometrically and never
#: shrinks, so steady-state ticks reuse one allocation.
_INITIAL_ARENA_BYTES = 64 * 1024


class TickEncoder:
    """Encode ticks into a reusable arena buffer.

    One encoder instance belongs to one service: :meth:`encode`
    returns a memoryview over the arena's prefix, which the caller
    must consume (CRC + write) before the next ``encode`` call
    overwrites it.  That is exactly the WAL append contract.
    """

    def __init__(self) -> None:
        self._arena = bytearray(_INITIAL_ARENA_BYTES)

    def _reserve(self, total: int) -> None:
        if len(self._arena) < total:
            self._arena = bytearray(
                max(total, 2 * len(self._arena))
            )

    def encode(
        self, messages: "Sequence[SyslogMessage]"
    ) -> memoryview:
        """Pack one tick; returns a view valid until the next call."""
        n = len(messages)
        times, hosts = message_columns(messages)
        severities = np.fromiter(
            (int(message.severity) for message in messages),
            dtype=np.uint8,
            count=n,
        )
        facilities = np.fromiter(
            (int(message.facility) for message in messages),
            dtype=np.uint8,
            count=n,
        )
        host_bytes = [host.encode("utf-8") for host in hosts]
        proc_bytes = [
            message.process.encode("utf-8") for message in messages
        ]
        text_bytes = [
            message.text.encode("utf-8") for message in messages
        ]
        host_blob = b"".join(host_bytes)
        proc_blob = b"".join(proc_bytes)
        text_blob = b"".join(text_bytes)
        total = (
            _PREFIX.size
            + 10 * n  # f64 time + u8 severity + u8 facility
            + 3 * 4 * n  # three u32 length vectors
            + len(host_blob)
            + len(proc_blob)
            + len(text_blob)
        )
        self._reserve(total)
        arena = self._arena
        _PREFIX.pack_into(arena, 0, TICK_MAGIC, CODEC_VERSION, n)
        offset = _PREFIX.size
        np.frombuffer(arena, np.float64, n, offset)[:] = times
        offset += 8 * n
        np.frombuffer(arena, np.uint8, n, offset)[:] = severities
        offset += n
        np.frombuffer(arena, np.uint8, n, offset)[:] = facilities
        offset += n
        for encoded, blob in (
            (host_bytes, host_blob),
            (proc_bytes, proc_blob),
            (text_bytes, text_blob),
        ):
            lengths = np.frombuffer(arena, np.uint32, n, offset)
            lengths[:] = np.fromiter(
                (len(item) for item in encoded),
                dtype=np.uint32,
                count=n,
            )
            offset += 4 * n
            arena[offset:offset + len(blob)] = blob
            offset += len(blob)
        return memoryview(arena)[:total]


def _split_strings(
    buffer: memoryview, offset: int, n: int
) -> "tuple[List[str], int]":
    lengths = np.frombuffer(buffer, np.uint32, n, offset)
    offset += 4 * n
    total = int(lengths.sum()) if n else 0
    if offset + total > len(buffer):
        raise ValueError(
            "tick record truncated inside a string section"
        )
    blob = bytes(buffer[offset:offset + total])
    stops = np.cumsum(lengths)
    starts = stops - lengths
    strings = [
        blob[int(start):int(stop)].decode("utf-8")
        for start, stop in zip(starts, stops)
    ]
    return strings, offset + total


def decode_tick(payload: bytes) -> "List[SyslogMessage]":
    """Rebuild the messages of one :meth:`TickEncoder.encode` record.

    Timestamps come back as the original float64 bit patterns, so
    replaying a decoded tick scores bitwise-identically.
    """
    buffer = memoryview(payload)
    if len(buffer) < _PREFIX.size:
        raise ValueError(
            f"tick record too short: {len(buffer)} bytes"
        )
    magic, version, n = _PREFIX.unpack_from(buffer, 0)
    if magic != TICK_MAGIC:
        raise ValueError(
            f"bad tick record magic 0x{magic:02X} "
            f"(expected 0x{TICK_MAGIC:02X})"
        )
    if version != CODEC_VERSION:
        raise ValueError(
            f"unsupported tick codec version {version} "
            f"(expected {CODEC_VERSION})"
        )
    offset = _PREFIX.size
    expected_fixed = offset + 10 * n + 12 * n
    if len(buffer) < expected_fixed:
        raise ValueError(
            f"tick record truncated: {len(buffer)} bytes for "
            f"{n} messages"
        )
    times = np.frombuffer(buffer, np.float64, n, offset)
    offset += 8 * n
    severities = np.frombuffer(buffer, np.uint8, n, offset)
    offset += n
    facilities = np.frombuffer(buffer, np.uint8, n, offset)
    offset += n
    hosts, offset = _split_strings(buffer, offset, n)
    procs, offset = _split_strings(buffer, offset, n)
    texts, offset = _split_strings(buffer, offset, n)
    return [
        SyslogMessage(
            timestamp=float(times[i]),
            host=hosts[i],
            process=procs[i],
            text=texts[i],
            severity=Severity(int(severities[i])),
            facility=Facility(int(facilities[i])),
        )
        for i in range(n)
    ]


__all__ = [
    "CODEC_VERSION",
    "TICK_MAGIC",
    "TickEncoder",
    "decode_tick",
]
