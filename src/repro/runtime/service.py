"""The durable monitoring service supervisor.

:class:`MonitorService` turns the in-memory streaming pieces — the
:class:`~repro.core.stream.StreamScorer` ring buffers inside an
:class:`~repro.core.online.OnlineMonitor` — into a long-running,
fault-tolerant service:

* every ingested tick is journaled to the
  :class:`~repro.runtime.wal.WriteAheadLog` *before* scoring, so a
  crash mid-tick loses nothing;
* every ``checkpoint_every`` ticks the full engine state is
  snapshotted atomically (:mod:`repro.runtime.checkpoint`) and the
  WAL pruned behind it;
* model rollover is a *hot swap*: a fine-tuned detector (from
  :func:`repro.core.adaptation.transfer_adapt`) is published to the
  :class:`~repro.runtime.store.ArtifactStore` as a new release, the
  swap is journaled as a WAL control record, and the live weights,
  template store and threshold are replaced at the tick boundary —
  no message is dropped or scored twice, and replaying the journal
  reproduces the swap at exactly the same boundary;
* :meth:`MonitorService.recover` restores the newest checkpoint and
  replays unacknowledged journal records, yielding bitwise-identical
  float64 scores and identical warnings to an uninterrupted run.

The supervisor is single-threaded by design: ticks, checkpoints and
swaps are serialized at tick boundaries, which is what makes the
journal a total order and recovery exact.
"""

from __future__ import annotations

import io
import json
import pathlib
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Union,
)

import numpy as np

from repro import telemetry
from repro.core.adaptation import transfer_adapt
from repro.core.detector import LSTMAnomalyDetector
from repro.core.online import (
    AdaptiveTicker,
    OnlineMonitor,
    WarningSignature,
)
from repro.logs.message import (
    SyslogMessage,
    message_from_row,
    message_to_row,
)
from repro.logs.persistence import store_from_json, store_to_json
from repro.runtime.checkpoint import (
    read_checkpoint,
    write_checkpoint,
)
from repro.runtime.codec import TICK_MAGIC, TickEncoder, decode_tick
from repro.runtime.lock import LOCK_FILENAME, OwnerLock
from repro.runtime.store import ArtifactStore, Release
from repro.runtime.wal import DEFAULT_SEGMENT_BYTES, WriteAheadLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rca import RcaEngine
    from repro.runtime.adapt import AdaptationController

#: Journal payload kinds: one ingested tick, or one model swap.
_KIND_TICK = "tick"
_KIND_SWAP = "swap"

#: Fault-injection points passed to :attr:`MonitorService.fault_hook`.
FAULT_AFTER_WAL_APPEND = "after-wal-append"
FAULT_BEFORE_CHECKPOINT = "before-checkpoint"

#: Leading byte of a binary tick record (see :mod:`repro.runtime.codec`).
_TICK_MAGIC_BYTE = bytes([TICK_MAGIC])


def tick_payload(messages: "Sequence[SyslogMessage]") -> bytes:
    """The *legacy* JSON journal payload for one ingested tick.

    New ticks are journaled through the arena-backed binary codec
    (:class:`repro.runtime.codec.TickEncoder`); this JSON form is kept
    so journals written by earlier releases still replay, and as the
    baseline the runtime benchmark compares the arena encoder against.
    """
    return json.dumps(
        {
            "kind": _KIND_TICK,
            "messages": [
                message_to_row(message) for message in messages
            ],
        },
        separators=(",", ":"),
    ).encode()


class ServiceError(RuntimeError):
    """Raised for invalid service operations (not for injected faults)."""


@dataclass(frozen=True)
class ServiceConfig:
    """Durability knobs for one service instance.

    Attributes:
        data_dir: service state root; holds ``wal/``, ``store/`` and
            ``checkpoint.npz``.
        checkpoint_every: snapshot cadence in ticks (checkpoints are
            also taken on graceful :meth:`MonitorService.close`).
        keep_releases: artifact-store retention depth.
        segment_bytes: WAL segment-rotation threshold.
        fsync: fsync every WAL append (power-loss durability).
        strict_order: the monitor's out-of-order policy; a durable
            service defaults to drop-and-count so one late message
            cannot wedge the tick loop.
        quantized: score through the int8-quantized inference path
            (:mod:`repro.nn.quant`) — faster, lossy, opt-in; replay
            under a quantized service reproduces the quantized run.
    """

    data_dir: Union[str, pathlib.Path]
    checkpoint_every: int = 16
    keep_releases: int = 3
    segment_bytes: int = DEFAULT_SEGMENT_BYTES
    fsync: bool = False
    strict_order: bool = False
    quantized: bool = False

    def __post_init__(self) -> None:
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")

    @property
    def wal_dir(self) -> pathlib.Path:
        """Where the write-ahead log's segments live."""
        return pathlib.Path(self.data_dir) / "wal"

    @property
    def store_dir(self) -> pathlib.Path:
        """Where the artifact store's releases live."""
        return pathlib.Path(self.data_dir) / "store"

    @property
    def checkpoint_path(self) -> pathlib.Path:
        """The (single, atomically replaced) checkpoint file."""
        return pathlib.Path(self.data_dir) / "checkpoint.npz"

    @property
    def lock_path(self) -> pathlib.Path:
        """The pid-stamped owner lockfile guarding this directory."""
        return pathlib.Path(self.data_dir) / LOCK_FILENAME


@dataclass(frozen=True)
class TickResult:
    """Outcome of one processed tick."""

    tick: int
    scores: np.ndarray
    kept: np.ndarray
    warnings: List[WarningSignature]
    swapped_release: Optional[int] = None


@dataclass(frozen=True)
class ReplayReport:
    """What :meth:`MonitorService.recover` re-applied from the journal."""

    checkpoint_cursor: int
    records_replayed: int
    ticks_replayed: int
    messages_replayed: int
    swaps_replayed: int
    results: List[TickResult] = field(default_factory=list)


# -- release packaging ----------------------------------------------------


def release_config(
    detector: LSTMAnomalyDetector, threshold: float
) -> Dict[str, object]:
    """The JSON config artifact describing a detector release."""
    embedding = detector.model.layers[0]
    return {
        "capacity": int(detector.vocabulary_capacity),
        "window": int(detector.windower.window),
        "hidden": [
            int(detector.model.layers[1].hidden),
            int(detector.model.layers[2].hidden),
        ],
        "id_dim": int(embedding.id_embedding.dim),
        "gap_dim": int(embedding.gap_embedding.dim),
        "cell": detector.cell,
        "dtype": str(detector.dtype),
        "seed": int(detector.seed),
        "threshold": float(threshold),
    }


def stage_release(
    store: ArtifactStore,
    detector: LSTMAnomalyDetector,
    threshold: float,
    groups: Optional[Dict[str, int]] = None,
    metadata: Optional[Dict[str, object]] = None,
) -> Release:
    """Publish a detector (weights + templates + threshold) atomically.

    The release is everything needed to reconstruct the detector on a
    cold start: the versioned weight archive, the serialized template
    store, the model/threshold config, and (optionally) the device
    group assignments.
    """
    buffer = io.BytesIO()
    detector.model.save(buffer)
    artifacts = {
        "weights.npz": buffer.getvalue(),
        "templates.json": store_to_json(detector.store).encode(),
        "config.json": json.dumps(
            release_config(detector, threshold), indent=2
        ).encode(),
    }
    if groups is not None:
        artifacts["groups.json"] = json.dumps(
            groups, sort_keys=True
        ).encode()
    return store.publish(artifacts, metadata)


def detector_from_release(
    store: ArtifactStore, release_id: int
) -> "tuple[LSTMAnomalyDetector, float]":
    """Reconstruct the detector and threshold of one release."""
    release = store.manifest(release_id)
    config = json.loads(store.read(release_id, "config.json"))
    template_store = store_from_json(
        store.read(release_id, "templates.json")
    )
    detector = LSTMAnomalyDetector(
        template_store,
        vocabulary_capacity=config["capacity"],
        window=config["window"],
        hidden=(config["hidden"][0], config["hidden"][1]),
        id_dim=config["id_dim"],
        gap_dim=config["gap_dim"],
        cell=config.get("cell", "lstm"),
        dtype=np.dtype(config.get("dtype", "float64")),
        seed=config.get("seed", 0),
    )
    weights_path = store.object_path(
        release.artifacts["weights.npz"]
    )
    detector.restore_weights(str(weights_path))
    return detector, float(config["threshold"])


# -- the supervisor -------------------------------------------------------


class MonitorService:
    """WAL-backed, checkpointed supervisor around an online monitor.

    Build one with :meth:`open` (from the artifact store's current
    release) and drive it by calling :meth:`process_tick` per batch of
    arrivals.  Attributes of note:

    Attributes:
        cursor: journal sequence of the last applied record.
        n_ticks: tick records applied over the service's lifetime
            (across restarts) — the feed position for resumption
            under a fixed tick size.
        n_messages: messages applied over the service's lifetime —
            the feed position for resumption under adaptive tick
            sizing, where tick counts alone cannot locate the feed
            offset.
        active_release: release id whose weights are currently live.
        fault_hook: optional test hook called at named supervisor
            points (see ``FAULT_*`` constants); raising from it
            simulates a crash at that point.
    """

    def __init__(
        self,
        config: ServiceConfig,
        monitor: OnlineMonitor,
        store: ArtifactStore,
        active_release: int,
    ) -> None:
        self.config = config
        self.monitor = monitor
        self.store = store
        self.active_release = int(active_release)
        # The lock comes first: two processes must never both open the
        # WAL below.  Stale locks (dead owner pid) are cleaned inside
        # acquire(), so crash recovery needs no manual unlink.
        self.lock = OwnerLock(config.lock_path)
        self.lock.acquire()
        self.wal = WriteAheadLog(
            config.wal_dir,
            segment_bytes=config.segment_bytes,
            fsync=config.fsync,
        )
        self.cursor = 0
        self.n_ticks = 0
        self.n_messages = 0
        self.pending_release: Optional[int] = None
        #: Optional closed-loop drift adaptation controller
        #: (:class:`repro.runtime.adapt.AdaptationController`); attach
        #: before :meth:`recover` so replay rebuilds its windows.
        self.controller: Optional["AdaptationController"] = None
        #: Optional streaming root-cause engine
        #: (:class:`repro.rca.RcaEngine`); attach before
        #: :meth:`recover` so checkpointed incidents restore and
        #: replayed ticks rebuild the identical incident stream.
        self.rca: Optional["RcaEngine"] = None
        self.fault_hook: Optional[Callable[[str, int], None]] = None
        self._encoder = TickEncoder()
        self._closed = False

    # -- construction ---------------------------------------------------

    @classmethod
    def open(
        cls,
        config: ServiceConfig,
        cluster_min_size: int = 2,
        cluster_max_gap: Optional[float] = None,
        cooldown: Optional[float] = None,
    ) -> "MonitorService":
        """Open a service on the store's current release.

        The store must hold at least one release (see
        :func:`stage_release`); recovery of checkpoint/WAL state is a
        separate, explicit :meth:`recover` call.
        """
        store = ArtifactStore(
            config.store_dir, keep_releases=config.keep_releases
        )
        current = store.current_id()
        if current is None:
            raise ServiceError(
                f"{store.directory} holds no release; publish one "
                "with stage_release() before opening the service"
            )
        detector, threshold = detector_from_release(store, current)
        kwargs: Dict[str, object] = {}
        if cluster_max_gap is not None:
            kwargs["cluster_max_gap"] = cluster_max_gap
        if cooldown is not None:
            kwargs["cooldown"] = cooldown
        monitor = OnlineMonitor(
            detector,
            threshold=threshold,
            cluster_min_size=cluster_min_size,
            strict_order=config.strict_order,
            quantized=config.quantized,
            **kwargs,
        )
        return cls(config, monitor, store, current)

    # -- durability -----------------------------------------------------

    def _fault(self, point: str, sequence: int) -> None:
        if self.fault_hook is not None:
            self.fault_hook(point, sequence)

    def checkpoint_now(self) -> int:
        """Snapshot the engine state at the current cursor; prune WAL.

        Returns the checkpoint size in bytes.
        """
        self._fault(FAULT_BEFORE_CHECKPOINT, self.cursor)
        extra: Dict[str, object] = {
            "n_ticks": self.n_ticks,
            "n_messages": self.n_messages,
            "active_release": self.active_release,
        }
        if self.pending_release is not None:
            # A swap staged but not yet applied at a boundary must
            # survive a crash — it re-stages on recovery.
            extra["pending_release"] = self.pending_release
        if self.controller is not None:
            extra["adapt"] = self.controller.state_dict()
        if self.rca is not None:
            extra["rca"] = self.rca.state_dict()
        with telemetry.timed("runtime.checkpoint.seconds"):
            size = write_checkpoint(
                self.config.checkpoint_path,
                self.monitor,
                self.cursor,
                extra=extra,
            )
        self.wal.prune(self.cursor)
        return size

    def recover(self) -> ReplayReport:
        """Restore the checkpoint, then replay unacknowledged records.

        Replayed ticks are re-scored through the exact restored state,
        so their float64 scores and emitted warnings are bitwise
        identical to the crashed run's (and to an uninterrupted run).
        Journaled swaps are re-applied at the same boundaries.
        """
        checkpoint_cursor = 0
        if self.config.checkpoint_path.exists():
            checkpoint = read_checkpoint(self.config.checkpoint_path)
            checkpoint.restore(self.monitor)
            self.cursor = checkpoint.cursor
            self.n_ticks = int(checkpoint.extra["n_ticks"])
            # Older checkpoints predate the message counter; replayed
            # ticks below re-add their messages on top either way.
            self.n_messages = int(
                checkpoint.extra.get("n_messages", 0)
            )
            checkpoint_cursor = checkpoint.cursor
            restored_release = int(checkpoint.extra["active_release"])
            if restored_release != self.active_release:
                self._load_release(restored_release)
            pending = checkpoint.extra.get("pending_release")
            if pending is not None:
                self.pending_release = int(pending)
            adapt_state = checkpoint.extra.get("adapt")
            if adapt_state is not None and self.controller is not None:
                self.controller.load_state_dict(adapt_state)
            rca_state = checkpoint.extra.get("rca")
            if rca_state is not None and self.rca is not None:
                self.rca.load_state_dict(rca_state)
        results: List[TickResult] = []
        records = ticks = messages = swaps = 0
        for record in self.wal.replay(after=self.cursor):
            records += 1
            raw_payload = record.payload
            # Binary tick records lead with TICK_MAGIC; everything
            # else (legacy ticks, swap control records) is JSON and
            # leads with '{'.
            if raw_payload[:1] == _TICK_MAGIC_BYTE:
                batch = decode_tick(raw_payload)
                result = self._score_tick(record.sequence, batch)
                results.append(result)
                if self.controller is not None:
                    self.controller.after_tick(self, batch, result)
                ticks += 1
                messages += len(batch)
            elif raw_payload[:1] == b"{":
                payload = json.loads(raw_payload.decode())
                if payload["kind"] == _KIND_SWAP:
                    previous = self.active_release
                    self._load_release(int(payload["release"]))
                    if self.controller is not None:
                        self.controller.on_swap_applied(
                            self, self.active_release, previous
                        )
                    if self.pending_release == self.active_release:
                        # The checkpointed staged swap landed in the
                        # journal before the crash; don't re-stage it.
                        self.pending_release = None
                    swaps += 1
                elif payload["kind"] == _KIND_TICK:
                    batch = [
                        message_from_row(raw)
                        for raw in payload["messages"]
                    ]
                    result = self._score_tick(record.sequence, batch)
                    results.append(result)
                    if self.controller is not None:
                        self.controller.after_tick(self, batch, result)
                    ticks += 1
                    messages += len(batch)
                else:
                    raise ServiceError(
                        "unknown journal record kind "
                        f"{payload['kind']!r} at sequence "
                        f"{record.sequence}"
                    )
            else:
                raise ServiceError(
                    f"unrecognized journal record at sequence "
                    f"{record.sequence}: leading byte "
                    f"0x{raw_payload[0]:02X}"
                )
            self.cursor = record.sequence
        registry = telemetry.default_registry()
        registry.counter("runtime.wal.records_replayed").inc(records)
        registry.counter("runtime.recoveries").inc()
        return ReplayReport(
            checkpoint_cursor=checkpoint_cursor,
            records_replayed=records,
            ticks_replayed=ticks,
            messages_replayed=messages,
            swaps_replayed=swaps,
            results=results,
        )

    # -- the tick loop --------------------------------------------------

    def _score_tick(
        self, sequence: int, messages: Sequence[SyslogMessage]
    ) -> TickResult:
        outcomes = self.monitor.observe_batch(list(messages))
        warnings = [w for w in outcomes if w is not None]
        batch = self.monitor.last_batch
        self.n_ticks += 1
        self.n_messages += len(messages)
        if self.rca is not None:
            # One hook covers both the live tick loop and WAL replay:
            # the engine sees the identical decision stream either
            # way, which is what makes its incident output replayable.
            self.rca.observe_tick(
                sequence,
                messages,
                batch.scores,
                batch.kept,
                self.monitor.threshold,
            )
        return TickResult(
            tick=sequence,
            scores=batch.scores,
            kept=batch.kept,
            warnings=warnings,
        )

    def process_tick(
        self, messages: Sequence[SyslogMessage]
    ) -> TickResult:
        """Journal, score and (at cadence) checkpoint one tick.

        Order of operations is the durability contract: the tick is
        appended to the WAL first, so a crash anywhere after the
        append replays it on recovery; a crash before the append means
        the feeder never saw it acknowledged.  A staged model swap is
        applied at the boundary *before* the tick, so every message is
        scored exactly once, under exactly one model.
        """
        if self._closed:
            raise ServiceError("service is closed")
        self._ensure_activation_record()
        swapped = None
        if self.controller is not None:
            # Boundary decisions (fine-tune launch/poll, armed
            # rollback) run before the tick is journaled, so their
            # swap records land at this exact boundary and replay
            # reproduces them without re-running any training.
            before = self.active_release
            self.controller.before_tick(self)
            if self.active_release != before:
                swapped = self.active_release
        if self.pending_release is not None:
            swapped = self._journal_and_apply_swap()
        sequence = self.cursor + 1
        self.wal.append(sequence, self._encoder.encode(messages))
        self._fault(FAULT_AFTER_WAL_APPEND, sequence)
        result = self._score_tick(sequence, messages)
        self.cursor = sequence
        if self.controller is not None:
            # Observation must precede the checkpoint so the snapshot
            # carries the controller's post-tick state.
            self.controller.after_tick(self, messages, result)
        telemetry.counter("runtime.ticks").inc()
        if self.n_ticks % self.config.checkpoint_every == 0:
            self.checkpoint_now()
        if swapped is not None:
            result = TickResult(
                tick=result.tick,
                scores=result.scores,
                kept=result.kept,
                warnings=result.warnings,
                swapped_release=swapped,
            )
        return result

    def drain(
        self,
        feed: Sequence[SyslogMessage],
        tick_size: int = 256,
        ticker: Optional[AdaptiveTicker] = None,
        max_ticks: Optional[int] = None,
    ) -> "Iterator[TickResult]":
        """Process a feed tick by tick, resuming past applied work.

        With a fixed ``tick_size`` the feed position is
        ``n_ticks * tick_size`` (every prior tick had the same size,
        so the arithmetic is exact across restarts).  With a
        ``ticker`` the tick sizes vary, so resumption uses the
        persisted :attr:`n_messages` message cursor instead; the
        ticker is fed the remaining backlog after every tick.
        Yields one :class:`TickResult` per processed tick, stopping
        after ``max_ticks`` of them when given.
        """
        if tick_size < 1:
            raise ValueError("tick_size must be >= 1")
        yielded = 0
        if ticker is None:
            start = self.n_ticks * tick_size
            for offset in range(start, len(feed), tick_size):
                if max_ticks is not None and yielded >= max_ticks:
                    return
                yield self.process_tick(
                    feed[offset:offset + tick_size]
                )
                yielded += 1
            return
        offset = self.n_messages
        while offset < len(feed):
            if max_ticks is not None and yielded >= max_ticks:
                return
            batch = feed[offset:offset + ticker.size]
            yield self.process_tick(batch)
            yielded += 1
            offset += len(batch)
            ticker.update(len(feed) - offset)

    def _ensure_activation_record(self) -> None:
        """Journal which release a brand-new journal starts under.

        Without this, a crash after a release is *published* (flipping
        the store's ``CURRENT``) but before its swap record lands
        would make a checkpoint-less recovery replay early ticks under
        the wrong model.  The first journal record therefore pins the
        opening release; replaying it is an idempotent re-load.
        """
        if (
            self.cursor == 0
            and self.wal.last_sequence == 0
            and not self.config.checkpoint_path.exists()
        ):
            payload = json.dumps(
                {"kind": _KIND_SWAP, "release": self.active_release},
                separators=(",", ":"),
            ).encode()
            self.wal.append(1, payload)
            self.cursor = 1

    # -- hot model swap -------------------------------------------------

    def _validate_swap(self, release_id: int) -> None:
        config = json.loads(self.store.read(release_id, "config.json"))
        detector = self.monitor.detector
        if config["window"] != detector.windower.window:
            raise ServiceError(
                f"release {release_id} window {config['window']} does "
                f"not match the live window "
                f"{detector.windower.window}; a hot swap cannot "
                "resize ring buffers — restart the service instead"
            )
        if config["capacity"] != detector.vocabulary_capacity:
            raise ServiceError(
                f"release {release_id} capacity "
                f"{config['capacity']} does not match the live "
                f"capacity {detector.vocabulary_capacity}"
            )

    def request_swap(self, release_id: int) -> None:
        """Stage a release for hot swap at the next tick boundary.

        The release must exist and be ring-buffer compatible (same
        context window and vocabulary capacity) — validation happens
        now so an incompatible release fails fast, not mid-stream.
        """
        self._validate_swap(release_id)
        self.pending_release = int(release_id)
        registry = telemetry.default_registry()
        registry.counter("runtime.swap.staged").inc()
        registry.gauge("runtime.swap.pending_release").set(release_id)

    def _load_release(self, release_id: int) -> None:
        """Point the live engine at a release's model (in place).

        The detector object (shared by monitor and scorer) keeps its
        identity; its template store, weights and threshold are
        replaced, and the ring buffers are untouched — contexts carry
        template *ids*, which releases preserve.
        """
        detector, threshold = detector_from_release(
            self.store, release_id
        )
        live = self.monitor.detector
        live.store = detector.store
        live.model.set_weights(detector.model.get_weights())
        self.monitor.threshold = threshold
        self.active_release = int(release_id)

    def _journal_and_apply_swap(self) -> int:
        release_id = self.pending_release
        assert release_id is not None
        previous = self.active_release
        sequence = self.cursor + 1
        payload = json.dumps(
            {"kind": _KIND_SWAP, "release": release_id},
            separators=(",", ":"),
        ).encode()
        self.wal.append(sequence, payload)
        self._fault(FAULT_AFTER_WAL_APPEND, sequence)
        self._load_release(release_id)
        self.cursor = sequence
        self.pending_release = None
        registry = telemetry.default_registry()
        registry.counter("runtime.swap.applied").inc()
        registry.gauge("runtime.swap.active_release").set(release_id)
        if self.controller is not None:
            self.controller.on_swap_applied(self, release_id, previous)
        return release_id

    def rollback(self) -> int:
        """Roll the live model back to the previous retained release.

        The single rollback path shared by ``serve --rollback`` and
        the adaptation controller's probation guard: the store pointer
        flips (:meth:`ArtifactStore.rollback`), the swap is journaled
        and applied at the current tick boundary, and replaying the
        journal reproduces it — no message is dropped or scored twice.
        Returns the release id now live.  Raises
        :class:`~repro.runtime.store.StoreError` when no retained
        predecessor exists.
        """
        release = self.store.rollback()
        self._ensure_activation_record()
        self.request_swap(release.release_id)
        applied = self._journal_and_apply_swap()
        telemetry.counter("runtime.rollbacks").inc()
        return applied

    def adapt(
        self,
        messages: Sequence[SyslogMessage],
        threshold: Optional[float] = None,
        epochs: int = 3,
        metadata: Optional[Dict[str, object]] = None,
    ) -> Release:
        """Fine-tune on fresh data, publish the student, stage a swap.

        Runs the paper's transfer adaptation
        (:func:`repro.core.adaptation.transfer_adapt`) on the live
        detector, publishes the student as a new release (new weights,
        extended template store, carried-over or overridden
        threshold), and stages it for hot swap at the next tick
        boundary.
        """
        student = transfer_adapt(
            self.monitor.detector, list(messages), epochs=epochs
        )
        release = stage_release(
            self.store,
            student,
            self.monitor.threshold if threshold is None else threshold,
            metadata=metadata,
        )
        self.request_swap(release.release_id)
        return release

    # -- shutdown -------------------------------------------------------

    def close(self) -> None:
        """Graceful shutdown: final checkpoint, prune, release files.

        The WAL handle and the owner lock are released even when the
        final checkpoint raises — a wedged lock would block every
        subsequent open of the same data directory.
        """
        if self._closed:
            return
        self._closed = True
        try:
            if self.controller is not None:
                self.controller.close()
            if self.rca is not None:
                # Open incidents close (and attribute) at shutdown so
                # the final checkpoint carries no dangling state.
                self.rca.flush()
            self.checkpoint_now()
        finally:
            try:
                self.wal.close()
            finally:
                self.lock.release()

    def __enter__(self) -> "MonitorService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = [
    "FAULT_AFTER_WAL_APPEND",
    "FAULT_BEFORE_CHECKPOINT",
    "AdaptiveTicker",
    "MonitorService",
    "ReplayReport",
    "ServiceConfig",
    "ServiceError",
    "TickResult",
    "detector_from_release",
    "release_config",
    "stage_release",
    "tick_payload",
]
