"""Sharded fleet runtime: consistent-hash workers, parallel ingest.

One :class:`~repro.runtime.service.MonitorService` tick loop tops out
near 10\\ :sup:`5` msgs/s; the ROADMAP's million-user target needs the
fleet, not the instance, as the unit of operation.  This module adds a
**shared-nothing** layer over the existing runtime:

* a :class:`FleetCoordinator` routes every device to one shard via a
  deterministic consistent-hash ring (:mod:`repro.runtime.ring`) — the
  routing is replayable, so crash recovery composes per shard;
* each shard is a worker **process** owning a private
  :class:`~repro.runtime.service.MonitorService` (its own WAL segment
  directory, checkpoint and artifact-store view under
  ``data_dir/shard-NN/``), guarded by the service's owner lockfile;
* batched ticks travel over :mod:`multiprocessing` pipes in the same
  arena-encoded binary record the WAL journals
  (:mod:`repro.runtime.codec`), with first-byte dispatch between tick
  payloads and JSON control frames; a bounded in-flight window per
  shard provides backpressure, which feeds the per-shard
  :class:`~repro.core.online.AdaptiveTicker` under adaptive sizing;
* ring membership changes (:meth:`FleetCoordinator.add_shard` /
  :meth:`FleetCoordinator.remove_shard`) are journaled to
  ``ring.jsonl`` so reopening the fleet rebuilds the identical
  assignment;
* worker telemetry registries are merged
  (:meth:`repro.telemetry.MetricsRegistry.merge`) into one fleet
  snapshot on close, alongside live ``fleet.*`` gauges (shard count,
  per-shard backlog, aggregate msgs/s).

A dead worker never stalls the survivors: its devices simply stop
being routed until :meth:`FleetCoordinator.restart_shard` brings the
shard back, at which point the worker's own WAL replay re-scores the
journaled tail bitwise-identically and the feed resumes from its
acknowledged message cursor — no message is dropped or scored twice.
"""

from __future__ import annotations

import json
import multiprocessing
import pathlib
import sys
import time
from dataclasses import dataclass, field
from multiprocessing import connection
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro import telemetry
from repro.core.detector import LSTMAnomalyDetector
from repro.core.online import AdaptiveTicker
from repro.logs.message import SyslogMessage
from repro.rca import (
    DEFAULT_CLUSTER_GAP,
    IncidentReport,
    RcaEngine,
    incident_row,
)
from repro.runtime.codec import TICK_MAGIC, TickEncoder, decode_tick
from repro.runtime.lock import LOCK_FILENAME, OwnerLock
from repro.runtime.ring import DEFAULT_REPLICAS, HashRing
from repro.runtime.service import (
    FAULT_AFTER_WAL_APPEND,
    MonitorService,
    ServiceConfig,
    TickResult,
    stage_release,
)
from repro.runtime.store import ArtifactStore, Release
from repro.runtime.wal import DEFAULT_SEGMENT_BYTES
from repro.topology import FleetTopology

#: Leading byte of a binary tick frame on the pipe (same dispatch as
#: the WAL: everything else is a JSON control/ack frame leading '{').
_TICK_MAGIC_BYTE = bytes([TICK_MAGIC])

#: Ring journal event names.
_RING_INIT = "init"
_RING_JOIN = "join"
_RING_LEAVE = "leave"


class FleetError(RuntimeError):
    """Raised for invalid fleet operations or a wedged worker."""


class _ShardCrash(Exception):
    """Raised inside a worker by the ``kill_after_ticks`` drill hook."""


@dataclass(frozen=True)
class FleetConfig:
    """Topology and durability knobs for one fleet.

    Attributes:
        data_dir: fleet state root; holds ``ring.jsonl``, the
            coordinator lockfile and one ``shard-NN/`` service
            directory per shard.
        shards: initial shard count (ignored when ``ring.jsonl``
            already records a membership).
        replicas: virtual nodes per shard on the hash ring.
        checkpoint_every: per-shard checkpoint cadence in ticks.
        keep_releases: per-shard artifact-store retention depth.
        segment_bytes: per-shard WAL segment-rotation threshold.
        fsync: fsync every WAL append in every worker.
        strict_order: per-shard out-of-order policy.
        quantized: score through int8 inference in every worker.
        max_inflight: unacknowledged ticks allowed per shard — the
            backpressure window; 1 degenerates to lock-step.
        poll_timeout: seconds to wait on worker replies before the
            fleet is declared wedged.
        scores_out: base path for per-shard score CSVs (worker ``k``
            appends to ``<scores_out>.shardKK``); ``None`` disables.
        warnings_out: base path for per-shard warning CSVs.
        kill_shard: shard id to crash for the kill drill.
        kill_after_ticks: crash ``kill_shard`` after this many
            journaled ticks (both must be set together).
        rca: attach a streaming root-cause engine to every worker's
            service; per-shard incidents close over the shard's own
            devices, and the ``rca.*`` registries fold into the
            coordinator's fleet snapshot on close.
        topology_path: fleet topology JSON every worker loads for
            incident clustering/attribution (``None``: per-device).
        rca_gap: quiet stream seconds that close an incident.
        incidents_out: base path for per-shard closed-incident CSVs.
    """

    data_dir: Union[str, pathlib.Path]
    shards: int = 2
    replicas: int = DEFAULT_REPLICAS
    checkpoint_every: int = 16
    keep_releases: int = 3
    segment_bytes: int = DEFAULT_SEGMENT_BYTES
    fsync: bool = False
    strict_order: bool = False
    quantized: bool = False
    max_inflight: int = 4
    poll_timeout: float = 60.0
    scores_out: Optional[str] = None
    warnings_out: Optional[str] = None
    kill_shard: Optional[int] = None
    kill_after_ticks: Optional[int] = None
    rca: bool = False
    topology_path: Optional[str] = None
    rca_gap: float = DEFAULT_CLUSTER_GAP
    incidents_out: Optional[str] = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if (self.kill_shard is None) != (self.kill_after_ticks is None):
            raise ValueError(
                "kill_shard and kill_after_ticks go together"
            )

    @property
    def ring_path(self) -> pathlib.Path:
        """The JSONL journal of ring membership events."""
        return pathlib.Path(self.data_dir) / "ring.jsonl"

    @property
    def lock_path(self) -> pathlib.Path:
        """The coordinator's own owner lockfile."""
        return pathlib.Path(self.data_dir) / LOCK_FILENAME

    def shard_dir(self, shard: int) -> pathlib.Path:
        """Shard ``shard``'s private service data directory."""
        return pathlib.Path(self.data_dir) / f"shard-{shard:02d}"

    def shard_config(self, shard: int) -> ServiceConfig:
        """The :class:`ServiceConfig` for shard ``shard``'s worker."""
        return ServiceConfig(
            data_dir=self.shard_dir(shard),
            checkpoint_every=self.checkpoint_every,
            keep_releases=self.keep_releases,
            segment_bytes=self.segment_bytes,
            fsync=self.fsync,
            strict_order=self.strict_order,
            quantized=self.quantized,
        )

    def shard_scores_path(self, shard: int) -> Optional[str]:
        """Where shard ``shard`` appends its score CSV (or ``None``)."""
        if self.scores_out is None:
            return None
        return f"{self.scores_out}.shard{shard:02d}"

    def shard_warnings_path(self, shard: int) -> Optional[str]:
        """Where shard ``shard`` appends its warning CSV (or ``None``)."""
        if self.warnings_out is None:
            return None
        return f"{self.warnings_out}.shard{shard:02d}"

    def shard_incidents_path(self, shard: int) -> Optional[str]:
        """Where shard ``shard`` appends its incident CSV (or ``None``)."""
        if self.incidents_out is None:
            return None
        return f"{self.incidents_out}.shard{shard:02d}"


@dataclass(frozen=True)
class ShardDrain:
    """One shard's share of a :meth:`FleetCoordinator.drain`."""

    shard: int
    sent_ticks: int
    acked_ticks: int
    messages: int
    warnings: int
    backlog: int
    dead: bool
    incidents: int = 0


@dataclass(frozen=True)
class FleetDrainReport:
    """Aggregate outcome of one :meth:`FleetCoordinator.drain`.

    Attributes:
        ticks: acknowledged ticks across all shards.
        messages: acknowledged messages across all shards.
        warnings: warnings emitted across all shards.
        seconds: wall time of the drain.
        msgs_per_s: aggregate acknowledged throughput.
        dead_shards: shards that were (or became) dead this drain.
        per_shard: each shard's :class:`ShardDrain`.
        incidents: RCA incidents closed across all shards (0 unless
            the fleet runs with ``rca=True``).
    """

    ticks: int
    messages: int
    warnings: int
    seconds: float
    msgs_per_s: float
    dead_shards: Tuple[int, ...]
    per_shard: Dict[int, ShardDrain] = field(default_factory=dict)
    incidents: int = 0


# -- ring journal ---------------------------------------------------------


def _replay_ring_journal(path: pathlib.Path) -> HashRing:
    """Rebuild the ring from its membership-event journal."""
    ring: Optional[HashRing] = None
    for line_no, line in enumerate(
        path.read_text().splitlines(), start=1
    ):
        if not line.strip():
            continue
        event = json.loads(line)
        kind = event.get("event")
        if kind == _RING_INIT:
            if ring is not None:
                raise FleetError(
                    f"{path}:{line_no}: duplicate ring init event"
                )
            ring = HashRing(
                event["shards"], replicas=int(event["replicas"])
            )
        elif kind == _RING_JOIN:
            if ring is None:
                raise FleetError(f"{path}:{line_no}: join before init")
            ring.add(int(event["shard"]))
        elif kind == _RING_LEAVE:
            if ring is None:
                raise FleetError(f"{path}:{line_no}: leave before init")
            ring.remove(int(event["shard"]))
        else:
            raise FleetError(
                f"{path}:{line_no}: unknown ring event {kind!r}"
            )
    if ring is None:
        raise FleetError(f"{path} holds no ring init event")
    return ring


def _append_ring_event(path: pathlib.Path, event: Dict) -> None:
    """Append one membership event to the ring journal."""
    with open(path, "a") as handle:
        handle.write(json.dumps(event, separators=(",", ":")) + "\n")


def load_ring(config: FleetConfig) -> HashRing:
    """The fleet's ring: replayed from the journal, or created.

    First call on a fresh ``data_dir`` journals the ``init`` event for
    shards ``0..config.shards-1``; later calls replay the journal, so
    the assignment is identical across restarts regardless of the
    ``shards`` value passed then.
    """
    path = config.ring_path
    if path.exists():
        return _replay_ring_journal(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    shards = list(range(config.shards))
    _append_ring_event(
        path,
        {
            "event": _RING_INIT,
            "shards": shards,
            "replicas": config.replicas,
        },
    )
    return HashRing(shards, replicas=config.replicas)


def fleet_has_state(config: FleetConfig) -> bool:
    """Whether any shard directory carries prior service state."""
    if not config.ring_path.exists():
        return False
    ring = _replay_ring_journal(config.ring_path)
    for shard in ring.shards:
        shard_config = config.shard_config(shard)
        if shard_config.checkpoint_path.exists():
            return True
        if shard_config.wal_dir.exists() and any(
            shard_config.wal_dir.iterdir()
        ):
            return True
    return False


def bootstrap_fleet(
    config: FleetConfig,
    detector: LSTMAnomalyDetector,
    threshold: float,
) -> List[Release]:
    """Stage one release into every shard's private artifact store.

    Every worker opens its service from its own store view, so a cold
    fleet needs the detector published per shard before
    :meth:`FleetCoordinator.open` spawns anything.
    """
    ring = load_ring(config)
    releases = []
    for shard in ring.shards:
        store = ArtifactStore(
            config.shard_config(shard).store_dir,
            keep_releases=config.keep_releases,
        )
        releases.append(stage_release(store, detector, threshold))
    return releases


# -- the worker process ---------------------------------------------------


@dataclass(frozen=True)
class _WorkerSpec:
    """Everything a worker process needs, in picklable primitives."""

    shard: int
    data_dir: str
    checkpoint_every: int
    keep_releases: int
    segment_bytes: int
    fsync: bool
    strict_order: bool
    quantized: bool
    scores_path: Optional[str]
    warnings_path: Optional[str]
    kill_after_ticks: Optional[int]
    rca: bool = False
    topology_path: Optional[str] = None
    rca_gap: float = DEFAULT_CLUSTER_GAP
    incidents_path: Optional[str] = None


class _ShardTickWriter:
    """Append-mode per-shard CSV sink, flushed per tick.

    Rows lead with the shard id (tick sequences restart per shard, so
    the shard column is what makes rows unique fleet-wide) and carry
    scores as ``repr(float)`` — ``sort -u`` over the concatenated
    shard files collapses replayed duplicates iff they are bitwise
    identical, which is how the fleet-e2e CI job proves replay parity.
    """

    def __init__(
        self,
        shard: int,
        scores_path: Optional[str],
        warnings_path: Optional[str],
        incidents_path: Optional[str] = None,
    ) -> None:
        self._shard = shard
        self._scores = (
            open(scores_path, "a", newline="") if scores_path else None
        )
        self._warnings = (
            open(warnings_path, "a", newline="")
            if warnings_path
            else None
        )
        self._incidents = (
            open(incidents_path, "a", newline="")
            if incidents_path
            else None
        )

    def write(self, results: Sequence[TickResult]) -> None:
        """Append one row per score and per warning; flush."""
        if self._scores is not None:
            for result in results:
                for i, score in enumerate(result.scores):
                    self._scores.write(
                        f"{self._shard},{result.tick},{i},"
                        f"{float(score)!r},{int(result.kept[i])}\n"
                    )
            self._scores.flush()
        if self._warnings is not None:
            for result in results:
                for w in result.warnings:
                    self._warnings.write(
                        f"{self._shard},{result.tick},{w.vpe},"
                        f"{w.time!r},{w.first_anomaly!r},"
                        f"{w.n_anomalies},{w.peak_score!r}\n"
                    )
            self._warnings.flush()

    def write_incidents(
        self, reports: Sequence[IncidentReport]
    ) -> None:
        """Append one shard-prefixed row per closed incident; flush."""
        if self._incidents is None or not reports:
            return
        for report in reports:
            self._incidents.write(
                f"{self._shard},{incident_row(report)}"
            )
        self._incidents.flush()

    def close(self) -> None:
        """Release the underlying file handles."""
        try:
            if self._scores is not None:
                self._scores.close()
        finally:
            try:
                if self._warnings is not None:
                    self._warnings.close()
            finally:
                if self._incidents is not None:
                    self._incidents.close()


def _worker_loop(
    spec: _WorkerSpec,
    conn: "connection.Connection",
    registry: "telemetry.MetricsRegistry",
) -> int:
    """One worker's serve loop; returns its exit code."""
    # Deliberately not closed on crash paths: the journaled WAL tail
    # must stay on disk un-truncated so the respawned worker replays
    # it bit-for-bit.  Only the "close" control frame closes cleanly.
    service = MonitorService.open(  # repro: noqa[RPR601]
        ServiceConfig(
            data_dir=spec.data_dir,
            checkpoint_every=spec.checkpoint_every,
            keep_releases=spec.keep_releases,
            segment_bytes=spec.segment_bytes,
            fsync=spec.fsync,
            strict_order=spec.strict_order,
            quantized=spec.quantized,
        )
    )
    if spec.rca:
        topology = (
            FleetTopology.load(spec.topology_path)
            if spec.topology_path
            else None
        )
        # Attached before recover(): checkpointed incidents restore
        # and the replayed WAL tail rebuilds the identical per-shard
        # incident stream.
        service.rca = RcaEngine(
            topology=topology, cluster_gap=spec.rca_gap
        )
    if spec.kill_after_ticks is not None:
        survived = {"ticks": 0}

        def _kill(point: str, sequence: int) -> None:
            if point != FAULT_AFTER_WAL_APPEND:
                return
            survived["ticks"] += 1
            if survived["ticks"] >= spec.kill_after_ticks:
                raise _ShardCrash(sequence)

        service.fault_hook = _kill
    writer = _ShardTickWriter(
        spec.shard,
        spec.scores_path,
        spec.warnings_path,
        spec.incidents_path,
    )

    def _drain_incidents() -> int:
        if service.rca is None:
            return 0
        reports = service.rca.drain_closed()
        writer.write_incidents(reports)
        return len(reports)

    try:
        # Recovery is unconditional: a no-op on a fresh directory, a
        # bitwise-identical re-score of the journaled tail after a
        # crash.  Replayed rows re-land in the CSV, where sort -u
        # collapses them against the pre-crash rows.
        report = service.recover()
        writer.write(report.results)
        _drain_incidents()
        conn.send_bytes(
            json.dumps(
                {
                    "kind": "hello",
                    "shard": spec.shard,
                    "n_messages": service.n_messages,
                    "n_ticks": service.n_ticks,
                    "ticks_replayed": report.ticks_replayed,
                    "messages_replayed": report.messages_replayed,
                },
                separators=(",", ":"),
            ).encode()
        )
        while True:
            raw = conn.recv_bytes()
            if raw[:1] == _TICK_MAGIC_BYTE:
                result = service.process_tick(decode_tick(raw))
                writer.write([result])
                n_incidents = _drain_incidents()
                conn.send_bytes(
                    json.dumps(
                        {
                            "kind": "ack",
                            "shard": spec.shard,
                            "tick": result.tick,
                            "n_messages": service.n_messages,
                            "n_scored": len(result.scores),
                            "n_warnings": len(result.warnings),
                            "n_incidents": n_incidents,
                        },
                        separators=(",", ":"),
                    ).encode()
                )
                continue
            control = json.loads(raw.decode())
            if control.get("kind") == "close":
                service.close()
                # close() flushed any incidents still open.
                _drain_incidents()
                conn.send_bytes(
                    json.dumps(
                        {
                            "kind": "closed",
                            "shard": spec.shard,
                            "n_ticks": service.n_ticks,
                            "n_messages": service.n_messages,
                            "telemetry": registry.snapshot(),
                        },
                        separators=(",", ":"),
                    ).encode()
                )
                return 0
            raise FleetError(
                f"shard {spec.shard}: unknown control frame "
                f"{control.get('kind')!r}"
            )
    except _ShardCrash:
        # Simulated kill: no close(), no final checkpoint — restart
        # must recover from the WAL exactly like a real crash.
        return 3
    except EOFError:
        # Coordinator vanished mid-stream; die crash-like so the
        # journal tail replays on the next open.
        return 1
    finally:
        writer.close()


def _worker_main(
    spec: _WorkerSpec, conn: "connection.Connection"
) -> None:
    """Worker process entry point (top-level for spawn/fork)."""
    registry = telemetry.MetricsRegistry()
    with telemetry.use(registry):
        exit_code = _worker_loop(spec, conn, registry)
    conn.close()
    sys.exit(exit_code)


# -- the coordinator ------------------------------------------------------


class _ShardHandle:
    """Coordinator-side state for one worker process."""

    def __init__(
        self,
        shard: int,
        process: "multiprocessing.process.BaseProcess",
        conn: "connection.Connection",
    ) -> None:
        self.shard = shard
        self.process = process
        self.conn = conn
        self.n_messages = 0
        self.ticks_replayed = 0
        self.inflight = 0
        self.dead = False
        self.exitcode: Optional[int] = None


class FleetCoordinator:
    """Routes ingest to shard workers and aggregates their telemetry.

    Build one with :meth:`open` (workers spawn and report their
    recovered cursors) and drive it with :meth:`drain`; :meth:`close`
    shuts workers down gracefully and folds their telemetry registries
    into the current default registry.

    Attributes:
        config: the fleet topology/durability knobs.
        ring: the live consistent-hash ring.
    """

    def __init__(
        self, config: FleetConfig, ring: HashRing
    ) -> None:
        self.config = config
        self.ring = ring
        self._shards: Dict[int, _ShardHandle] = {}
        self._assign: Dict[str, int] = {}
        self._encoder = TickEncoder()
        self._lock = OwnerLock(config.lock_path)
        self._closed = False

    # -- lifecycle ------------------------------------------------------

    @classmethod
    def open(cls, config: FleetConfig) -> "FleetCoordinator":
        """Spawn one worker per ring member and await their hellos.

        Every shard's artifact store must already hold a release (see
        :func:`bootstrap_fleet`).  When a ring journal exists, its
        membership wins over ``config.shards`` — a mismatch is an
        operator error and raises :class:`FleetError`.
        """
        pathlib.Path(config.data_dir).mkdir(
            parents=True, exist_ok=True
        )
        ring = load_ring(config)
        if len(ring) != config.shards:
            raise FleetError(
                f"{config.ring_path} records {len(ring)} shards "
                f"{list(ring.shards)} but the fleet was opened with "
                f"shards={config.shards}; pass the journaled count"
            )
        coordinator = cls(config, ring)
        coordinator._lock.acquire()
        try:
            for shard in ring.shards:
                coordinator._spawn(shard)
            for shard in ring.shards:
                coordinator._await_hello(coordinator._shards[shard])
        except Exception:
            coordinator._abort()
            raise
        telemetry.gauge("fleet.shards").set(len(ring))
        return coordinator

    def _spawn(
        self, shard: int, allow_kill: bool = True
    ) -> _ShardHandle:
        """Start shard ``shard``'s worker process."""
        kill_after = None
        if allow_kill and shard == self.config.kill_shard:
            kill_after = self.config.kill_after_ticks
        spec = _WorkerSpec(
            shard=shard,
            data_dir=str(self.config.shard_dir(shard)),
            checkpoint_every=self.config.checkpoint_every,
            keep_releases=self.config.keep_releases,
            segment_bytes=self.config.segment_bytes,
            fsync=self.config.fsync,
            strict_order=self.config.strict_order,
            quantized=self.config.quantized,
            scores_path=self.config.shard_scores_path(shard),
            warnings_path=self.config.shard_warnings_path(shard),
            kill_after_ticks=kill_after,
            rca=self.config.rca,
            topology_path=self.config.topology_path,
            rca_gap=self.config.rca_gap,
            incidents_path=self.config.shard_incidents_path(shard),
        )
        context = multiprocessing.get_context()
        parent_conn, child_conn = context.Pipe(duplex=True)
        process = context.Process(
            target=_worker_main,
            args=(spec, child_conn),
            name=f"repro-shard-{shard:02d}",
            daemon=True,
        )
        process.start()
        # Drop the parent's copy of the child end so a dead worker
        # surfaces as EOF instead of a silent hang.
        child_conn.close()
        handle = _ShardHandle(shard, process, parent_conn)
        self._shards[shard] = handle
        return handle

    def _await_hello(self, handle: _ShardHandle) -> None:
        """Block until ``handle``'s worker reports its cursor."""
        message = self._recv(handle)
        if message is None or message.get("kind") != "hello":
            raise FleetError(
                f"shard {handle.shard} failed to start (exit "
                f"{handle.process.exitcode})"
            )
        handle.n_messages = int(message["n_messages"])
        handle.ticks_replayed = int(message["ticks_replayed"])

    def _recv(self, handle: _ShardHandle) -> Optional[Dict]:
        """One JSON frame from a worker (``None`` once it died)."""
        deadline = time.perf_counter() + self.config.poll_timeout
        while not handle.conn.poll(0.05):
            if handle.process.exitcode is not None:
                self._mark_dead(handle)
                return None
            if time.perf_counter() > deadline:
                raise FleetError(
                    f"shard {handle.shard} sent nothing for "
                    f"{self.config.poll_timeout}s; fleet is wedged"
                )
        try:
            raw = handle.conn.recv_bytes()
        except (EOFError, OSError):
            self._mark_dead(handle)
            return None
        return json.loads(raw.decode())

    def _mark_dead(self, handle: _ShardHandle) -> None:
        """Record a worker death; survivors keep draining."""
        if handle.dead:
            return
        handle.dead = True
        handle.inflight = 0
        handle.process.join(timeout=self.config.poll_timeout)
        handle.exitcode = handle.process.exitcode
        handle.conn.close()
        telemetry.counter("fleet.shard_deaths").inc()
        telemetry.gauge("fleet.shards").set(
            sum(1 for h in self._shards.values() if not h.dead)
        )

    def _abort(self) -> None:
        """Tear everything down after a failed open."""
        try:
            for handle in self._shards.values():
                if handle.process.is_alive():
                    handle.process.terminate()
                handle.process.join(timeout=5)
                handle.conn.close()
        finally:
            self._lock.release()
            self._closed = True

    @property
    def replayed_ticks(self) -> int:
        """Ticks re-scored by worker recovery at the last (re)spawn."""
        return sum(
            h.ticks_replayed for h in self._shards.values()
        )

    @property
    def dead_shards(self) -> Tuple[int, ...]:
        """Shards whose worker has died, sorted."""
        return tuple(
            sorted(
                k for k, h in self._shards.items() if h.dead
            )
        )

    def shard_cursor(self, shard: int) -> int:
        """Shard ``shard``'s acknowledged lifetime message count."""
        return self._shards[shard].n_messages

    # -- routing --------------------------------------------------------

    def assign(self, device: str) -> int:
        """The shard owning ``device`` (memoized ring lookup)."""
        shard = self._assign.get(device)
        if shard is None:
            shard = self._assign[device] = self.ring.assign(device)
        return shard

    def partition(
        self, feed: Sequence[SyslogMessage]
    ) -> Dict[int, List[SyslogMessage]]:
        """Split a feed into per-shard sub-feeds, order preserved."""
        parts: Dict[int, List[SyslogMessage]] = {
            shard: [] for shard in self.ring.shards
        }
        for message in feed:
            parts[self.assign(message.host)].append(message)
        return parts

    # -- membership -----------------------------------------------------

    def add_shard(self, shard: int) -> None:
        """Journal a join, extend the ring, spawn the new worker.

        The shard's store must be bootstrapped first (see
        :func:`bootstrap_fleet` for the cold-start equivalent).
        Devices remapped onto the new shard re-warm their score
        context there — shared-nothing shards do not migrate ring
        buffers.
        """
        if shard in self.ring:
            raise FleetError(f"shard {shard} is already in the fleet")
        _append_ring_event(
            self.config.ring_path,
            {"event": _RING_JOIN, "shard": shard},
        )
        self.ring.add(shard)
        self._assign.clear()
        handle = self._spawn(shard)
        self._await_hello(handle)
        telemetry.gauge("fleet.shards").set(
            sum(1 for h in self._shards.values() if not h.dead)
        )

    def remove_shard(self, shard: int) -> None:
        """Journal a leave, close that worker, shrink the ring."""
        if shard not in self.ring:
            raise FleetError(f"shard {shard} is not in the fleet")
        handle = self._shards[shard]
        if not handle.dead:
            self._close_worker(handle)
        _append_ring_event(
            self.config.ring_path,
            {"event": _RING_LEAVE, "shard": shard},
        )
        self.ring.remove(shard)
        self._assign.clear()
        del self._shards[shard]
        telemetry.gauge("fleet.shards").set(
            sum(1 for h in self._shards.values() if not h.dead)
        )

    def restart_shard(self, shard: int) -> int:
        """Respawn a dead shard's worker; returns its replayed ticks.

        The fresh worker recovers from the shard's checkpoint + WAL
        (bitwise-identical re-scores land in its CSV) and reports its
        restored message cursor, so the next :meth:`drain` resumes its
        sub-feed exactly where the acknowledged history ends.
        """
        handle = self._shards.get(shard)
        if handle is None:
            raise FleetError(f"shard {shard} is not in the fleet")
        if not handle.dead:
            raise FleetError(
                f"shard {shard} is alive; only dead shards restart"
            )
        handle.process.join(timeout=self.config.poll_timeout)
        # The drill hook never re-arms on restart: a restarted shard
        # recovers and serves, it does not crash again.
        fresh = self._spawn(shard, allow_kill=False)
        self._await_hello(fresh)
        telemetry.gauge("fleet.shards").set(
            sum(1 for h in self._shards.values() if not h.dead)
        )
        return fresh.ticks_replayed

    # -- ingest ---------------------------------------------------------

    def _send_tick(
        self, handle: _ShardHandle, batch: Sequence[SyslogMessage]
    ) -> bool:
        """Route one tick to a worker; ``False`` if it died mid-send."""
        try:
            handle.conn.send_bytes(self._encoder.encode(batch))
        except (BrokenPipeError, OSError):
            self._mark_dead(handle)
            return False
        handle.inflight += 1
        return True

    def drain(
        self,
        feed: Sequence[SyslogMessage],
        tick_size: int = 256,
        adaptive: bool = False,
        max_ticks: Optional[int] = None,
    ) -> FleetDrainReport:
        """Route a feed through the fleet until every shard is done.

        The feed is partitioned by the ring and each shard's sub-feed
        resumes at that shard's acknowledged message cursor, so a
        reopened fleet never re-sends applied work.  Up to
        ``config.max_inflight`` ticks ride each pipe unacknowledged;
        under ``adaptive`` sizing a per-shard
        :class:`~repro.core.online.AdaptiveTicker` is fed the shard's
        remaining backlog after every ack.  A worker death never
        stalls the survivors: the dead shard keeps its backlog (see
        :meth:`restart_shard`) and is reported in the result.
        ``max_ticks`` caps the ticks *sent* fleet-wide (drill runs).
        """
        if tick_size < 1:
            raise ValueError("tick_size must be >= 1")
        if self._closed:
            raise FleetError("fleet is closed")
        parts = self.partition(feed)
        offsets: Dict[int, int] = {}
        tickers: Dict[int, Optional[AdaptiveTicker]] = {}
        start_messages: Dict[int, int] = {}
        sent: Dict[int, int] = {}
        acked: Dict[int, int] = {}
        warnings: Dict[int, int] = {}
        incidents: Dict[int, int] = {}
        for shard in self.ring.shards:
            handle = self._shards[shard]
            offsets[shard] = min(
                handle.n_messages, len(parts[shard])
            )
            start_messages[shard] = handle.n_messages
            sent[shard] = acked[shard] = warnings[shard] = 0
            incidents[shard] = 0
            tickers[shard] = (
                AdaptiveTicker(
                    initial=tick_size,
                    min_size=min(64, tick_size),
                    max_size=max(8192, tick_size),
                )
                if adaptive
                else None
            )
        total_sent = 0
        started = time.perf_counter()

        def _more(shard: int) -> bool:
            return (
                offsets[shard] < len(parts[shard])
                and (max_ticks is None or total_sent < max_ticks)
            )

        while True:
            for shard in self.ring.shards:
                handle = self._shards[shard]
                while (
                    not handle.dead
                    and handle.inflight < self.config.max_inflight
                    and _more(shard)
                ):
                    ticker = tickers[shard]
                    size = (
                        ticker.size if ticker is not None else tick_size
                    )
                    offset = offsets[shard]
                    batch = parts[shard][offset:offset + size]
                    if not self._send_tick(handle, batch):
                        break
                    offsets[shard] = offset + len(batch)
                    sent[shard] += 1
                    total_sent += 1
            waiting = [
                h
                for h in self._shards.values()
                if not h.dead and h.inflight > 0
            ]
            if not waiting:
                if not any(
                    not self._shards[s].dead and _more(s)
                    for s in self.ring.shards
                ):
                    break
                continue
            ready = connection.wait(
                [h.conn for h in waiting],
                timeout=self.config.poll_timeout,
            )
            if not ready:
                died = False
                for handle in waiting:
                    if handle.process.exitcode is not None:
                        self._mark_dead(handle)
                        died = True
                if not died:
                    raise FleetError(
                        "no shard acknowledged within "
                        f"{self.config.poll_timeout}s; fleet is wedged"
                    )
                continue
            by_conn = {h.conn: h for h in waiting}
            for conn in ready:
                handle = by_conn[conn]
                try:
                    raw = handle.conn.recv_bytes()
                except (EOFError, OSError):
                    self._mark_dead(handle)
                    continue
                ack = json.loads(raw.decode())
                if ack.get("kind") != "ack":
                    raise FleetError(
                        f"shard {handle.shard} sent unexpected "
                        f"{ack.get('kind')!r} frame mid-drain"
                    )
                handle.inflight -= 1
                handle.n_messages = int(ack["n_messages"])
                shard = handle.shard
                acked[shard] += 1
                warnings[shard] += int(ack["n_warnings"])
                incidents[shard] += int(ack.get("n_incidents", 0))
                backlog = len(parts[shard]) - offsets[shard]
                ticker = tickers[shard]
                if ticker is not None:
                    ticker.update(backlog)
                telemetry.gauge(  # repro: noqa[RPR301]
                    f"fleet.shard{shard:02d}.backlog"
                ).set(backlog)
        seconds = time.perf_counter() - started
        per_shard = {}
        total_messages = total_ticks = total_warnings = 0
        total_incidents = 0
        for shard in self.ring.shards:
            handle = self._shards[shard]
            messages = handle.n_messages - start_messages[shard]
            per_shard[shard] = ShardDrain(
                shard=shard,
                sent_ticks=sent[shard],
                acked_ticks=acked[shard],
                messages=messages,
                warnings=warnings[shard],
                backlog=len(parts[shard]) - offsets[shard],
                dead=handle.dead,
                incidents=incidents[shard],
            )
            total_messages += messages
            total_ticks += acked[shard]
            total_warnings += warnings[shard]
            total_incidents += incidents[shard]
        rate = total_messages / seconds if seconds > 0 else 0.0
        registry = telemetry.default_registry()
        registry.counter("fleet.ticks_routed").inc(total_ticks)
        registry.counter("fleet.messages_routed").inc(total_messages)
        registry.gauge("fleet.aggregate_msgs_per_s").set(rate)
        return FleetDrainReport(
            ticks=total_ticks,
            messages=total_messages,
            warnings=total_warnings,
            seconds=seconds,
            msgs_per_s=rate,
            dead_shards=self.dead_shards,
            per_shard=per_shard,
            incidents=total_incidents,
        )

    # -- shutdown -------------------------------------------------------

    def _close_worker(self, handle: _ShardHandle) -> Optional[Dict]:
        """Gracefully stop one worker; returns its closed frame."""
        try:
            handle.conn.send_bytes(
                json.dumps(
                    {"kind": "close"}, separators=(",", ":")
                ).encode()
            )
        except (BrokenPipeError, OSError):
            self._mark_dead(handle)
            return None
        while True:
            message = self._recv(handle)
            if message is None:
                return None
            if message.get("kind") == "closed":
                break
            # Late acks for in-flight ticks drain ahead of the close.
            if message.get("kind") == "ack":
                handle.inflight -= 1
                handle.n_messages = int(message["n_messages"])
                continue
            raise FleetError(
                f"shard {handle.shard} sent unexpected "
                f"{message.get('kind')!r} frame during close"
            )
        handle.process.join(timeout=self.config.poll_timeout)
        handle.exitcode = handle.process.exitcode
        handle.conn.close()
        return message

    def close(self) -> Dict[int, Dict]:
        """Graceful shutdown: close workers, merge their telemetry.

        Live workers checkpoint and report a final telemetry snapshot;
        the snapshots are folded into the *current default registry*
        (counters sum across shards, so ``runtime.ticks`` et al.
        become fleet totals).  Dead workers are only joined — their
        journals stay replayable.  Returns each closed shard's final
        frame (``n_ticks``, ``n_messages``, ``telemetry``).
        """
        if self._closed:
            return {}
        self._closed = True
        summaries: Dict[int, Dict] = {}
        snapshots: List[Dict] = []
        try:
            for shard in self.ring.shards:
                handle = self._shards[shard]
                if handle.dead:
                    continue
                message = self._close_worker(handle)
                if message is not None:
                    summaries[shard] = message
                    snapshots.append(message["telemetry"])
            for handle in self._shards.values():
                if handle.process.is_alive():
                    handle.process.join(timeout=self.config.poll_timeout)
            telemetry.default_registry().merge(snapshots)
        finally:
            self._lock.release()
        return summaries

    def __enter__(self) -> "FleetCoordinator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        if not self._closed:
            self.close()


__all__ = [
    "FleetConfig",
    "FleetCoordinator",
    "FleetDrainReport",
    "FleetError",
    "ShardDrain",
    "bootstrap_fleet",
    "fleet_has_state",
    "load_ring",
]
