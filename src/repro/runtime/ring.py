"""Consistent-hash ring mapping devices to fleet shards.

The fleet coordinator (:mod:`repro.runtime.fleet`) is shared-nothing:
each shard's worker process owns the ring buffers, WAL and checkpoints
for *its* devices only, so the device→shard assignment must be

* **deterministic** — the same device string maps to the same shard in
  every process and every run (the routing is part of the replay
  contract), which rules out Python's builtin ``hash`` (salted per
  process via ``PYTHONHASHSEED``); points come from BLAKE2b instead;
* **balanced** — with a few dozen virtual nodes per shard the busiest
  shard carries only a bounded multiple of the idlest one's devices;
* **stable under membership change** — adding or removing one shard
  remaps only ~1/N of the devices (the classic consistent-hashing
  property), so a rebalance does not re-warm the whole fleet.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Sequence, Tuple

#: Virtual nodes per shard.  64 points keeps the max/min device-load
#: ratio under ~2 for small fleets while the ring stays tiny.
DEFAULT_REPLICAS = 64


def _point(key: str) -> int:
    """A stable 64-bit ring position for ``key``."""
    digest = hashlib.blake2b(key.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """A consistent-hash ring over integer shard ids.

    Attributes:
        replicas: virtual nodes placed on the ring per shard.
    """

    def __init__(
        self,
        shards: Iterable[int] = (),
        replicas: int = DEFAULT_REPLICAS,
    ) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = int(replicas)
        self._points: List[Tuple[int, int]] = []
        self._shards: "set[int]" = set()
        for shard in shards:
            self.add(shard)

    @property
    def shards(self) -> Tuple[int, ...]:
        """The current shard membership, sorted."""
        return tuple(sorted(self._shards))

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard: int) -> bool:
        return int(shard) in self._shards

    def add(self, shard: int) -> None:
        """Place ``shard``'s virtual nodes on the ring."""
        shard = int(shard)
        if shard in self._shards:
            raise ValueError(f"shard {shard} is already on the ring")
        self._shards.add(shard)
        for replica in range(self.replicas):
            point = _point(f"shard:{shard}:{replica}")
            # Ties between shards at one point are broken by shard id
            # (the tuple ordering) so insertion order never matters.
            bisect.insort(self._points, (point, shard))

    def remove(self, shard: int) -> None:
        """Remove ``shard``'s virtual nodes from the ring."""
        shard = int(shard)
        if shard not in self._shards:
            raise ValueError(f"shard {shard} is not on the ring")
        self._shards.discard(shard)
        self._points = [p for p in self._points if p[1] != shard]

    def assign(self, device: str) -> int:
        """The shard owning ``device``: first point at/after its hash."""
        if not self._points:
            raise ValueError("cannot assign on an empty ring")
        index = bisect.bisect_left(self._points, (_point(device), -1))
        if index == len(self._points):
            index = 0  # wrap around the ring
        return self._points[index][1]

    def table(self, devices: Sequence[str]) -> Dict[str, int]:
        """Assignments for a batch of devices (one dict lookup later)."""
        return {device: self.assign(device) for device in devices}


__all__ = ["DEFAULT_REPLICAS", "HashRing"]
