"""Exclusive owner lockfiles for service data directories.

Two :class:`~repro.runtime.service.MonitorService` instances appending
to one WAL would interleave sequences and corrupt the journal's total
order, so every data directory is guarded by a pid-stamped lockfile:

* acquisition is atomic (``O_CREAT | O_EXCL``) — there is no window
  where two processes both think they created the file;
* a lock whose owner pid is dead is *stale* (the owner crashed before
  releasing); recovery removes it and retries, so a crash never
  requires manual cleanup;
* re-acquisition by the owning pid succeeds — a process that lost its
  service object to a simulated crash may reopen the same directory.
"""

from __future__ import annotations

import os
import pathlib
from typing import Union

from repro import telemetry

#: Lockfile name inside a guarded data directory.
LOCK_FILENAME = "LOCK"


class LockHeldError(RuntimeError):
    """The directory is owned by another *live* process."""


def pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a process we could signal.

    ``kill(pid, 0)`` delivers nothing but performs the existence and
    permission checks; a pid we cannot signal but which exists
    (``EPERM``) is conservatively treated as alive.
    """
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


class OwnerLock:
    """A pid-stamped exclusive lock on one directory.

    Attributes:
        path: the lockfile path.
        held: whether this object currently holds the lock.
    """

    def __init__(self, path: Union[str, pathlib.Path]) -> None:
        self.path = pathlib.Path(path)
        self.held = False

    def _read_owner(self) -> int:
        """The pid recorded in the lockfile (0 if unreadable)."""
        try:
            return int(self.path.read_text().strip() or 0)
        except (OSError, ValueError):
            return 0

    def acquire(self) -> None:
        """Take the lock, cleaning a stale (dead-owner) lockfile.

        Raises:
            LockHeldError: a different, live process owns the lock.
        """
        if self.held:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        for _ in range(8):
            try:
                fd = os.open(
                    self.path,
                    os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                )
            except FileExistsError:
                owner = self._read_owner()
                if owner == os.getpid():
                    # Same process reopening after an in-process crash
                    # of the previous service object: already ours.
                    self.held = True
                    return
                if pid_alive(owner):
                    raise LockHeldError(
                        f"{self.path} is held by live pid {owner}; "
                        "refusing to share a service data directory"
                    )
                # Stale lock from a crashed owner: clean and retry.
                # A concurrent cleaner may win the unlink/create race,
                # in which case the next round sees its live pid.
                try:
                    self.path.unlink()
                except FileNotFoundError:
                    pass
                # Stale cleanups are rare one-off events (the retry
                # loop is bounded at 8), not a per-item hot path.
                telemetry.counter(  # repro: noqa[RPR301]
                    "runtime.lock.stale_cleaned"
                ).inc()
                continue
            with os.fdopen(fd, "w") as handle:
                handle.write(f"{os.getpid()}\n")
            self.held = True
            return
        raise LockHeldError(
            f"could not acquire {self.path}: lost the creation race "
            "repeatedly"
        )

    def release(self) -> None:
        """Drop the lock (a no-op when not held)."""
        if not self.held:
            return
        self.held = False
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "OwnerLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


__all__ = ["LOCK_FILENAME", "LockHeldError", "OwnerLock", "pid_alive"]
