"""Durable monitoring runtime: WAL, artifact store, checkpoints, swap.

The paper's system monitors 38 vPEs continuously for 18 months — it
must survive restarts, software updates and model refreshes without
losing warning state.  This package is that service shell around the
in-memory streaming engine:

* :mod:`repro.runtime.wal` — append-only, segment-rotated,
  CRC-protected journal of ingested ticks;
* :mod:`repro.runtime.store` — versioned, content-addressed artifact
  store (weights + templates + thresholds as one atomic release,
  with rollback);
* :mod:`repro.runtime.checkpoint` — atomic snapshot/restore of the
  scorer ring buffers, monitor warning state and tick cursor;
* :mod:`repro.runtime.service` — the supervisor tying tick loop,
  WAL, checkpoint cadence, hot model swap and graceful shutdown
  together (``python -m repro serve`` drives it from the CLI);
* :mod:`repro.runtime.lock` — pid-stamped owner lockfiles so two
  processes can never append to one service's WAL;
* :mod:`repro.runtime.ring` — the deterministic consistent-hash
  ring mapping devices to shards;
* :mod:`repro.runtime.fleet` — the shared-nothing sharded fleet: a
  coordinator routing ingest to per-shard worker processes
  (``python -m repro serve --shards N``);
* :mod:`repro.runtime.adapt` — the closed-loop drift adaptation
  controller: drift watch → background fine-tune → journaled hot
  swap → probation guard with automatic rollback
  (``python -m repro serve --auto-adapt``).
"""

from repro.runtime.adapt import (
    AdaptConfig,
    AdaptationController,
    poison_detector,
)
from repro.runtime.checkpoint import (
    Checkpoint,
    read_checkpoint,
    write_checkpoint,
)
from repro.runtime.fleet import (
    FleetConfig,
    FleetCoordinator,
    FleetDrainReport,
    FleetError,
    ShardDrain,
    bootstrap_fleet,
    fleet_has_state,
)
from repro.runtime.lock import LockHeldError, OwnerLock
from repro.runtime.ring import HashRing
from repro.runtime.service import (
    MonitorService,
    ReplayReport,
    ServiceConfig,
    ServiceError,
    TickResult,
    detector_from_release,
    stage_release,
)
from repro.runtime.store import ArtifactStore, Release, StoreError
from repro.runtime.wal import (
    WalCorruptionError,
    WalRecord,
    WriteAheadLog,
)

__all__ = [
    "AdaptConfig",
    "AdaptationController",
    "ArtifactStore",
    "Checkpoint",
    "FleetConfig",
    "FleetCoordinator",
    "FleetDrainReport",
    "FleetError",
    "HashRing",
    "LockHeldError",
    "MonitorService",
    "OwnerLock",
    "Release",
    "ReplayReport",
    "ServiceConfig",
    "ServiceError",
    "ShardDrain",
    "StoreError",
    "TickResult",
    "WalCorruptionError",
    "WalRecord",
    "WriteAheadLog",
    "bootstrap_fleet",
    "detector_from_release",
    "fleet_has_state",
    "poison_detector",
    "read_checkpoint",
    "stage_release",
    "write_checkpoint",
]
